"""Counter Braids (Lu et al., SIGMETRICS 2008).

A two-layer braided counter architecture: flows hash into ``d1`` small
layer-1 counters; when a layer-1 counter overflows, the excess is carried
into layer-2 counters hashed from the layer-1 counter index.  Given the set
of flow keys observed in the epoch, an iterative message-passing decoder
recovers (near-)exact per-flow counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.sketches.base import KeyLike, Sketch, encode_key, row_hashes


class CounterBraids(Sketch):
    """Two-layer Counter Braids with min-sum decoding.

    ``layer1_width`` counters of ``layer1_bits`` bits (mod-counted, with the
    overflow count braided into layer 2), ``layer2_width`` full-width
    counters.  :meth:`decode` needs the flow key list, which in deployment
    comes from the control plane (e.g. NetFlow key log) -- the sketch itself
    never stores keys.
    """

    def __init__(
        self,
        layer1_width: int,
        layer2_width: int,
        layer1_bits: int = 4,
        depth: int = 3,
        layer2_depth: int = 2,
        seed: int = 0x77,
    ) -> None:
        if layer1_width <= 0 or layer2_width <= 0:
            raise ValueError("layer widths must be positive")
        self.layer1_bits = layer1_bits
        self.layer1_mod = 1 << layer1_bits
        self.depth = depth
        self.layer2_depth = layer2_depth
        self.layer1 = np.zeros(layer1_width, dtype=np.int64)
        self.overflows = np.zeros(layer1_width, dtype=np.int64)
        self.layer2 = np.zeros(layer2_width, dtype=np.int64)
        self._h1 = row_hashes(depth, seed)
        self._h2 = row_hashes(layer2_depth, seed + 0x1000)

    def _l1_indices(self, data: bytes) -> List[int]:
        return [fn.hash_bytes(data) % len(self.layer1) for fn in self._h1]

    def _l2_indices(self, l1_index: int) -> List[int]:
        return [fn.hash_int(l1_index, 32) % len(self.layer2) for fn in self._h2]

    def update(self, key: KeyLike, weight: int = 1) -> None:
        data = encode_key(key)
        for idx in self._l1_indices(data):
            value = int(self.layer1[idx]) + weight
            carry = value >> self.layer1_bits
            self.layer1[idx] = value & (self.layer1_mod - 1)
            if carry:
                self.overflows[idx] += carry
                for l2 in self._l2_indices(idx):
                    self.layer2[l2] += carry

    # -- decoding ------------------------------------------------------------

    def _reconstructed_layer1(self) -> np.ndarray:
        """Layer-1 counter totals after decoding the braided carries.

        Layer-2 counters are themselves a (depth ``layer2_depth``) braid over
        layer-1 indices; one round of min-decoding recovers each layer-1
        counter's carry, which is exact when layer 2 is lightly loaded.
        """
        totals = self.layer1.astype(np.float64).copy()
        overflowed = np.nonzero(self.overflows)[0]
        carries: Dict[int, int] = {}
        for idx in overflowed:
            carries[int(idx)] = min(
                int(self.layer2[l2]) for l2 in self._l2_indices(int(idx))
            )
        # One refinement pass: subtract the decoded carries of the *other*
        # layer-1 counters sharing each layer-2 cell.
        contrib = np.zeros(len(self.layer2), dtype=np.int64)
        for idx, carry in carries.items():
            for l2 in self._l2_indices(idx):
                contrib[l2] += carry
        for idx, carry in carries.items():
            refined = min(
                int(self.layer2[l2]) - (int(contrib[l2]) - carry)
                for l2 in self._l2_indices(idx)
            )
            if 0 <= refined < carry:
                carry = refined
            totals[idx] += carry * self.layer1_mod
        return totals

    def decode(self, keys: Iterable[KeyLike], iterations: int = 20) -> Dict:
        """Min-sum decoding of per-flow counts for the given key set."""
        key_list = list(keys)
        encoded = [encode_key(k) for k in key_list]
        indices = [self._l1_indices(d) for d in encoded]
        counters = self._reconstructed_layer1()

        # Bucket -> flows incidence for message passing.
        bucket_flows: Dict[int, List[int]] = {}
        for flow_i, idxs in enumerate(indices):
            for b in idxs:
                bucket_flows.setdefault(b, []).append(flow_i)

        est = np.zeros(len(key_list), dtype=np.float64)
        # Initialize with the CMS-style min, then iterate min-sum.
        for flow_i, idxs in enumerate(indices):
            est[flow_i] = min(counters[b] for b in idxs)
        for _ in range(iterations):
            new_est = est.copy()
            for flow_i, idxs in enumerate(indices):
                candidates = []
                for b in idxs:
                    others = sum(est[f] for f in bucket_flows[b]) - est[flow_i]
                    candidates.append(counters[b] - others)
                new_est[flow_i] = max(0.0, min(candidates))
            if np.allclose(new_est, est):
                est = new_est
                break
            est = new_est
        return {key_list[i]: int(round(est[i])) for i in range(len(key_list))}

    @property
    def memory_bytes(self) -> int:
        return (len(self.layer1) * self.layer1_bits + len(self.layer2) * 32) // 8
