"""SuMax (LightGuardian, NSDI 2021): sum and max sketchlets.

SuMax(Sum) is a CMS variant with *approximate conservative update*: a row's
counter is only incremented while it does not exceed the running minimum of
the rows updated so far, which removes much of CMS's overestimation.
SuMax(Max) keeps a per-bucket maximum (for queue length / delay attributes);
the query is the minimum over rows, again an overestimate of the true
per-flow max only through collisions.
"""

from __future__ import annotations

import numpy as np

from repro.sketches.base import KeyLike, Sketch, encode_key, row_hashes


class SuMaxSum(Sketch):
    """Frequency sketch with approximate conservative update."""

    def __init__(self, width: int, depth: int = 3, counter_bits: int = 32, seed: int = 0x55) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self._max_value = (1 << counter_bits) - 1
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self._hashes = row_hashes(depth, seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        data = encode_key(key)
        running_min = None
        for row, fn in enumerate(self._hashes):
            col = fn.hash_bytes(data) % self.width
            current = int(self.counters[row, col])
            # Approximate conservative update: only rows at or below the
            # running minimum of earlier rows receive the increment.
            if running_min is None or current < running_min:
                new = min(self._max_value, current + weight)
                self.counters[row, col] = new
                current = new
            running_min = current if running_min is None else min(running_min, current)

    def query(self, key: KeyLike) -> int:
        data = encode_key(key)
        return int(
            min(
                self.counters[row, fn.hash_bytes(data) % self.width]
                for row, fn in enumerate(self._hashes)
            )
        )

    @property
    def memory_bytes(self) -> int:
        return self.depth * self.width * self.counter_bits // 8


class SuMaxMax(Sketch):
    """Per-flow maximum of a metadata parameter (queue length, delay, ...)."""

    def __init__(self, width: int, depth: int = 3, counter_bits: int = 32, seed: int = 0x56) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self._max_value = (1 << counter_bits) - 1
        self.cells = np.zeros((depth, width), dtype=np.int64)
        self._hashes = row_hashes(depth, seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        """``weight`` carries the observed parameter value."""
        data = encode_key(key)
        value = min(weight, self._max_value)
        for row, fn in enumerate(self._hashes):
            col = fn.hash_bytes(data) % self.width
            if value > self.cells[row, col]:
                self.cells[row, col] = value

    def query(self, key: KeyLike) -> int:
        data = encode_key(key)
        return int(
            min(
                self.cells[row, fn.hash_bytes(data) % self.width]
                for row, fn in enumerate(self._hashes)
            )
        )

    @property
    def memory_bytes(self) -> int:
        return self.depth * self.width * self.counter_bits // 8
