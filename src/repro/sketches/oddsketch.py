"""Odd Sketch (Mitzenmacher et al., WWW 2014): set-difference estimation.

Each distinct item flips one random bit of an ``m``-bit array (parity
insert), so items appearing an even number of times cancel out.  The XOR of
two odd sketches is the odd sketch of the sets' symmetric difference, whose
size is estimated from the number of set bits -- the §6 expansion FlyMon
enables by loading XOR into the reserved SALU action slot.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dataplane.hashing import HashFunction
from repro.sketches.base import KeyLike, Sketch, encode_key


def symmetric_difference_estimate(odd_bits: int, num_bits: int) -> float:
    """Invert ``E[Z] = (m/2)(1 - e^{-2d/m})`` for the difference size ``d``."""
    if num_bits <= 0:
        return 0.0
    ratio = 2.0 * odd_bits / num_bits
    if ratio >= 1.0:
        # Saturated parity array: the estimator diverges; report the bound.
        return float(num_bits)
    return -num_bits / 2.0 * math.log(1.0 - ratio)


def jaccard_from_difference(size_a: float, size_b: float, difference: float) -> float:
    """Jaccard similarity from set sizes and symmetric-difference size."""
    union = (size_a + size_b + difference) / 2.0
    if union <= 0:
        return 1.0
    intersection = (size_a + size_b - difference) / 2.0
    return max(0.0, min(1.0, intersection / union))


class OddSketch(Sketch):
    """An ``m``-bit parity array over distinct keys."""

    def __init__(self, num_bits: int, seed: int = 0xCC) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.num_bits = num_bits
        self.bits = np.zeros(num_bits, dtype=bool)
        self._hash = HashFunction(seed)
        self._seed = seed

    def update(self, key: KeyLike, weight: int = 1) -> None:
        if weight % 2 == 0:
            return  # even multiplicities cancel
        self.bits[self._hash.hash_bytes(encode_key(key)) % self.num_bits] ^= True

    def odd_bit_count(self) -> int:
        return int(self.bits.sum())

    def estimate_size(self) -> float:
        """Estimated number of distinct items inserted an odd number of
        times (for a duplicate-free stream: the set size)."""
        return symmetric_difference_estimate(self.odd_bit_count(), self.num_bits)

    def symmetric_difference(self, other: "OddSketch") -> float:
        """Estimated ``|A xor B|`` from the XOR of the two parity arrays."""
        self._check_compatible(other)
        odd = int(np.logical_xor(self.bits, other.bits).sum())
        return symmetric_difference_estimate(odd, self.num_bits)

    def jaccard(self, other: "OddSketch", size_a: float, size_b: float) -> float:
        """Jaccard similarity given (estimates of) the two set sizes."""
        return jaccard_from_difference(
            size_a, size_b, self.symmetric_difference(other)
        )

    def _check_compatible(self, other: "OddSketch") -> None:
        if other.num_bits != self.num_bits or other._seed != self._seed:
            raise ValueError("odd sketches must share size and hash seed")

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8
