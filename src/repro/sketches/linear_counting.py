"""Linear Counting (Whang et al., 1990): cardinality from a bitmap."""

from __future__ import annotations

import math

import numpy as np

from repro.dataplane.hashing import HashFunction
from repro.sketches.base import KeyLike, Sketch, encode_key


class LinearCounting(Sketch):
    """Hash keys into an ``m``-bit bitmap; estimate ``n = -m ln(V)`` where
    ``V`` is the fraction of zero bits.  Accurate while the bitmap is not
    saturated (load factor up to ~10 with growing variance)."""

    def __init__(self, num_bits: int, seed: int = 0x44) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.num_bits = num_bits
        self.bits = np.zeros(num_bits, dtype=bool)
        self._hash = HashFunction(seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        self.bits[self._hash.hash_bytes(encode_key(key)) % self.num_bits] = True

    def estimate(self) -> float:
        zeros = int(np.count_nonzero(~self.bits))
        if zeros == 0:
            # Saturated: the estimator diverges; report the upper bound.
            return float(self.num_bits * math.log(self.num_bits))
        return -self.num_bits * math.log(zeros / self.num_bits)

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8
