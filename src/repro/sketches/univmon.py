"""UnivMon (Liu et al., SIGCOMM 2016): universal streaming.

``L`` levels of sampled substreams (level ``l`` keeps keys whose first ``l``
hash bits are zero), each summarized by a Count Sketch plus a heavy-hitter
set.  Any function ``sum_i g(f_i)`` of the per-flow frequencies is estimated
by the recursive universal estimator, which gives entropy (``g = x ln x``),
cardinality (``g = 1``), and heavy hitters from a single data structure.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Set

import numpy as np

from repro.dataplane.hashing import HashFunction
from repro.sketches.base import KeyLike, Sketch, encode_key, row_hashes


class CountSketch(Sketch):
    """Count Sketch: unbiased frequency estimator (median of signed rows)."""

    def __init__(self, width: int, depth: int = 5, seed: int = 0xAA) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self._index_hashes = row_hashes(depth, seed)
        self._sign_hashes = row_hashes(depth, seed + 0x5151)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        data = encode_key(key)
        for row in range(self.depth):
            col = self._index_hashes[row].hash_bytes(data) % self.width
            sign = 1 if self._sign_hashes[row].hash_bytes(data) & 1 else -1
            self.counters[row, col] += sign * weight

    def query(self, key: KeyLike) -> int:
        data = encode_key(key)
        values = []
        for row in range(self.depth):
            col = self._index_hashes[row].hash_bytes(data) % self.width
            sign = 1 if self._sign_hashes[row].hash_bytes(data) & 1 else -1
            values.append(sign * int(self.counters[row, col]))
        return int(np.median(values))

    @property
    def memory_bytes(self) -> int:
        return self.depth * self.width * 4


class _Level:
    """One sampled substream: Count Sketch + top-k heavy hitter tracking."""

    def __init__(self, width: int, depth: int, top_k: int, seed: int) -> None:
        self.sketch = CountSketch(width, depth, seed)
        self.top_k = top_k
        self.keys: Set[bytes] = set()
        self.raw_keys: Dict[bytes, KeyLike] = {}

    def update(self, key: KeyLike, key_bytes: bytes, weight: int) -> None:
        self.sketch.update(key_bytes, weight)
        if key_bytes not in self.keys:
            if len(self.keys) < 4 * self.top_k:
                self.keys.add(key_bytes)
                self.raw_keys[key_bytes] = key

    def heavy_hitters(self) -> List:
        """Top-k tracked keys by estimated frequency."""
        scored = [(self.sketch.query(kb), kb) for kb in self.keys]
        top = heapq.nlargest(self.top_k, scored)
        return [(est, self.raw_keys[kb]) for est, kb in top]


class UnivMon(Sketch):
    """Universal sketch over ``levels`` sampled substreams."""

    def __init__(
        self,
        width: int,
        depth: int = 5,
        levels: int = 14,
        top_k: int = 32,
        seed: int = 0xBB,
    ) -> None:
        if levels <= 0:
            raise ValueError("levels must be positive")
        self.levels = [
            _Level(width, depth, top_k, seed + 0x101 * i) for i in range(levels)
        ]
        self._sample_hash = HashFunction(seed + 0xFEED)
        self.total_packets = 0

    def _sample_level(self, key_bytes: bytes) -> int:
        """Number of leading sampling stages the key passes (0..levels)."""
        h = self._sample_hash.hash_bytes(key_bytes)
        passes = 0
        while passes < len(self.levels) - 1 and (h >> passes) & 1:
            passes += 1
        return passes

    def update(self, key: KeyLike, weight: int = 1) -> None:
        key_bytes = encode_key(key)
        self.total_packets += weight
        max_level = self._sample_level(key_bytes)
        for level in range(max_level + 1):
            self.levels[level].update(key, key_bytes, weight)

    # -- universal estimation ---------------------------------------------------

    def g_sum(self, g: Callable[[float], float]) -> float:
        """Recursive estimator of ``sum_flows g(frequency)``."""
        estimate = 0.0
        bottom = len(self.levels) - 1
        for level in range(bottom, -1, -1):
            hh = self.levels[level].heavy_hitters()
            if level == bottom:
                estimate = sum(g(max(1.0, est)) for est, _ in hh)
                continue
            carried = 2.0 * estimate
            correction = 0.0
            for est, key in hh:
                key_bytes = encode_key(key)
                sampled_next = self._sample_level(key_bytes) >= level + 1
                correction += g(max(1.0, est)) * (1.0 - 2.0 * (1.0 if sampled_next else 0.0))
            estimate = carried + correction
        return max(0.0, estimate)

    def estimate_entropy(self) -> float:
        """Flow entropy ``H = ln(N) - (1/N) sum f ln f`` via ``g = x ln x``."""
        n = max(1, self.total_packets)
        y = self.g_sum(lambda x: x * math.log(x))
        return max(0.0, math.log(n) - y / n)

    def estimate_cardinality(self) -> float:
        return self.g_sum(lambda x: 1.0)

    def heavy_hitters(self, threshold: int) -> Set:
        """Keys at level 0 whose estimated frequency reaches ``threshold``."""
        return {key for est, key in self.levels[0].heavy_hitters() if est >= threshold}

    @property
    def memory_bytes(self) -> int:
        return sum(level.sketch.memory_bytes for level in self.levels)
