"""TowerSketch (SketchINT, ICNP 2021): stacked arrays of shrinking counters.

Rows use progressively smaller bit-width counters but proportionally more of
them, so the many mice flows land in cheap counters while elephants survive
in the wide rows.  A row's counter that saturates is treated as +infinity at
query time; the estimate is the minimum over non-saturated rows.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.sketches.base import KeyLike, Sketch, encode_key, row_hashes

#: Default tower shape: (bit_width, relative_width_multiplier) per row.
DEFAULT_LAYOUT = ((2, 4), (4, 2), (8, 1))


class TowerSketch(Sketch):
    """Frequency sketch adapted to skewed traffic.

    ``base_width`` is the number of counters in the *widest-counter* row;
    each row ``(bits, mult)`` in ``layout`` holds ``base_width * mult``
    counters of ``bits`` bits.
    """

    def __init__(
        self,
        base_width: int,
        layout: Sequence[Tuple[int, int]] = DEFAULT_LAYOUT,
        seed: int = 0x66,
    ) -> None:
        if base_width <= 0:
            raise ValueError("base_width must be positive")
        self.layout = tuple(layout)
        self.rows = []
        for bits, mult in self.layout:
            width = base_width * mult
            self.rows.append(
                {
                    "bits": bits,
                    "width": width,
                    "sat": (1 << bits) - 1,
                    "cells": np.zeros(width, dtype=np.int64),
                }
            )
        self._hashes = row_hashes(len(self.rows), seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        data = encode_key(key)
        for row, fn in zip(self.rows, self._hashes):
            col = fn.hash_bytes(data) % row["width"]
            row["cells"][col] = min(row["sat"], int(row["cells"][col]) + weight)

    def query(self, key: KeyLike) -> int:
        data = encode_key(key)
        best = None
        for row, fn in zip(self.rows, self._hashes):
            value = int(row["cells"][fn.hash_bytes(data) % row["width"]])
            if value >= row["sat"]:
                continue  # saturated counter: +infinity
            best = value if best is None else min(best, value)
        if best is None:
            # All rows saturated: report the largest representable value.
            best = max(row["sat"] for row in self.rows)
        return best

    @property
    def memory_bytes(self) -> int:
        return sum(row["width"] * row["bits"] for row in self.rows) // 8
