"""Count-Min Sketch (Cormode & Muthukrishnan, 2005).

``d`` rows of ``w`` counters; each update adds the weight to one counter per
row; the point query is the minimum over rows (always an overestimate).
"""

from __future__ import annotations

import numpy as np

from repro.sketches.base import KeyLike, Sketch, encode_key, row_hashes


class CountMinSketch(Sketch):
    """Frequency sketch with one-sided (over-)estimation error.

    With ``w = e / epsilon`` and ``d = ln(1/delta)`` the estimate exceeds the
    true count by more than ``epsilon * N`` with probability at most
    ``delta``.
    """

    def __init__(self, width: int, depth: int = 3, counter_bits: int = 32, seed: int = 0x11) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self._max_value = (1 << counter_bits) - 1
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self._hashes = row_hashes(depth, seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        data = encode_key(key)
        for row, fn in enumerate(self._hashes):
            col = fn.hash_bytes(data) % self.width
            self.counters[row, col] = min(
                self._max_value, int(self.counters[row, col]) + weight
            )

    def query(self, key: KeyLike) -> int:
        data = encode_key(key)
        return int(
            min(
                self.counters[row, fn.hash_bytes(data) % self.width]
                for row, fn in enumerate(self._hashes)
            )
        )

    def heavy_hitters(self, candidate_keys, threshold: int) -> set:
        """Candidates whose estimated frequency meets ``threshold``."""
        return {k for k in candidate_keys if self.query(k) >= threshold}

    @property
    def memory_bytes(self) -> int:
        return self.depth * self.width * self.counter_bits // 8
