"""HyperLogLog (Flajolet et al., 2007): cardinality estimation.

``m = 2^b`` registers each track the maximum "rho" (position of the leftmost
1-bit) seen among keys routed to them by their first ``b`` hash bits; the
cardinality estimate is the bias-corrected harmonic mean with the standard
small-range (linear counting) and large-range corrections, computed by
:func:`repro.analysis.estimators.hll_estimate`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.estimators import hll_estimate, rho32
from repro.dataplane.hashing import HashFunction
from repro.sketches.base import KeyLike, Sketch, encode_key


class HyperLogLog(Sketch):
    """Standard HLL over ``2**precision_bits`` 8-bit registers."""

    def __init__(self, precision_bits: int = 10, seed: int = 0x33) -> None:
        if not 4 <= precision_bits <= 18:
            raise ValueError("precision_bits must be in [4, 18]")
        self.b = precision_bits
        self.m = 1 << precision_bits
        self.registers = np.zeros(self.m, dtype=np.int64)
        self._hash = HashFunction(seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        h = self._hash.hash_bytes(encode_key(key))
        bucket = h & (self.m - 1)
        rho = rho32(h >> self.b, skip_bits=self.b)
        if rho > self.registers[bucket]:
            self.registers[bucket] = rho

    def estimate(self) -> float:
        """Bias-corrected cardinality estimate with range corrections."""
        return hll_estimate(self.registers)

    def merge(self, other: "HyperLogLog") -> None:
        if other.m != self.m:
            raise ValueError("cannot merge HLLs of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)

    @property
    def memory_bytes(self) -> int:
        return self.m  # one byte per register
