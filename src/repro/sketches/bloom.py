"""Bloom Filter (Bloom, 1970): set membership with one-sided error."""

from __future__ import annotations

import numpy as np

from repro.sketches.base import KeyLike, Sketch, encode_key, row_hashes


class BloomFilter(Sketch):
    """``k`` hash functions over a bit array of ``num_bits`` bits.

    No false negatives; the false-positive rate after ``n`` inserts is
    approximately ``(1 - e^{-k n / m})^k``.
    """

    def __init__(self, num_bits: int, num_hashes: int = 3, seed: int = 0x22) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = np.zeros(num_bits, dtype=bool)
        self._hashes = row_hashes(num_hashes, seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        data = encode_key(key)
        for fn in self._hashes:
            self.bits[fn.hash_bytes(data) % self.num_bits] = True

    add = update

    def __contains__(self, key: KeyLike) -> bool:
        data = encode_key(key)
        return all(self.bits[fn.hash_bytes(data) % self.num_bits] for fn in self._hashes)

    def query(self, key: KeyLike) -> bool:
        return key in self

    def expected_false_positive_rate(self, num_inserted: int) -> float:
        k, m, n = self.num_hashes, self.num_bits, num_inserted
        return float((1.0 - np.exp(-k * n / m)) ** k)

    @property
    def fill_fraction(self) -> float:
        return float(self.bits.mean())

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8
