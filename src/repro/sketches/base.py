"""Shared sketch plumbing: key encoding and the common interface."""

from __future__ import annotations

import struct
from typing import Iterable, Tuple, Union

from repro.dataplane.hashing import HashFunction, hash_family

KeyLike = Union[int, bytes, str, Tuple]


def encode_key(key: KeyLike) -> bytes:
    """Canonical byte encoding of a flow key.

    Accepts raw bytes, ints, strings, or (nested) tuples of those; the same
    logical key always encodes to the same bytes, so every sketch and ground
    truth agrees on key identity.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        length = max(1, (key.bit_length() + 8) // 8)
        return key.to_bytes(length, "little", signed=True)
    if isinstance(key, tuple):
        parts = []
        for item in key:
            enc = encode_key(item)
            parts.append(struct.pack("<H", len(enc)))
            parts.append(enc)
        return b"".join(parts)
    raise TypeError(f"cannot encode key of type {type(key).__name__}")


class Sketch:
    """Base class: a summary built by one pass over (key, weight) updates."""

    def update(self, key: KeyLike, weight: int = 1) -> None:
        raise NotImplementedError

    def update_many(self, keys: Iterable[KeyLike]) -> None:
        for key in keys:
            self.update(key)

    @property
    def memory_bytes(self) -> int:
        """Data-plane stateful memory footprint of the summary."""
        raise NotImplementedError


def row_hashes(rows: int, seed: int) -> list:
    """Independent per-row hash functions."""
    return hash_family(rows, base_seed=seed)
