"""BeauCoup (Chen et al., SIGCOMM 2020): coupon-collector distinct counting.

One memory update per packet: each packet draws (at most) one of ``m``
coupons from its attribute value's hash; a key is reported once all of its
coupons have been collected.  The coupon probability is tuned so the expected
number of *distinct* attribute values needed to collect every coupon matches
the query threshold.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.estimators import (
    coupon_collector_inversion,
    harmonic,
    tune_coupon_probability,
)
from repro.dataplane.hashing import HashFunction
from repro.sketches.base import KeyLike, Sketch, encode_key


class CouponTable:
    """Key -> coupon-bitmap store with bounded slots and key checksums.

    Mirrors BeauCoup's data-plane layout: ``slots`` hash-indexed entries,
    each holding a key checksum and an ``m``-bit coupon bitmap.  A slot is
    claimed by the first key hashing to it; other keys colliding on the slot
    but not the checksum are dropped (no eviction).
    """

    def __init__(self, slots: int, num_coupons: int, seed: int) -> None:
        self.slots = slots
        self.num_coupons = num_coupons
        self.full_mask = (1 << num_coupons) - 1
        self._index_hash = HashFunction(seed)
        self._checksum_hash = HashFunction(seed + 7)
        self._bitmaps: List[int] = [0] * slots
        self._checksums: List[Optional[int]] = [None] * slots
        self._keys: List[Optional[bytes]] = [None] * slots

    def collect(self, key_bytes: bytes, coupon: int) -> bool:
        """OR the coupon into the key's bitmap; True if the bitmap is now full."""
        slot = self._index_hash.hash_bytes(key_bytes) % self.slots
        checksum = self._checksum_hash.hash_bytes(key_bytes) & 0xFFFF
        if self._checksums[slot] is None:
            self._checksums[slot] = checksum
            self._keys[slot] = key_bytes
        elif self._checksums[slot] != checksum:
            return False  # collision with a different key: drop
        self._bitmaps[slot] |= 1 << coupon
        return self._bitmaps[slot] == self.full_mask

    def bitmap_for(self, key_bytes: bytes) -> int:
        slot = self._index_hash.hash_bytes(key_bytes) % self.slots
        checksum = self._checksum_hash.hash_bytes(key_bytes) & 0xFFFF
        if self._checksums[slot] == checksum:
            return self._bitmaps[slot]
        return 0

    def full_keys(self) -> Set[bytes]:
        return {
            self._keys[i]
            for i in range(self.slots)
            if self._keys[i] is not None and self._bitmaps[i] == self.full_mask
        }


class BeauCoup(Sketch):
    """The original BeauCoup algorithm for one distinct-counting query.

    ``depth`` independent coupon tables reduce the impact of slot collisions:
    a key is reported when its coupons are complete in *every* table (the
    d>1 variant Figure 14c evaluates).
    """

    def __init__(
        self,
        slots: int,
        threshold: int,
        num_coupons: int = 16,
        depth: int = 1,
        seed: int = 0x99,
    ) -> None:
        if slots <= 0 or depth <= 0:
            raise ValueError("slots and depth must be positive")
        if not 1 <= num_coupons <= 32:
            raise ValueError("num_coupons must be in [1, 32]")
        self.num_coupons = num_coupons
        self.threshold = threshold
        self.depth = depth
        self.coupon_prob = tune_coupon_probability(num_coupons, threshold)
        self._coupon_hash = HashFunction(seed + 99)
        self.tables = [
            CouponTable(slots, num_coupons, seed + 31 * i) for i in range(depth)
        ]
        self._alarms: Set[bytes] = set()
        self._key_cache: Dict[bytes, KeyLike] = {}

    def draw_coupon(self, attribute_value: KeyLike) -> Optional[int]:
        """The coupon this attribute value activates, or None (no draw).

        Deterministic per value, as in the paper: the value's hash selects
        at most one coupon, so duplicate values never make progress.
        """
        x = self._coupon_hash.hash_bytes(encode_key(attribute_value)) / 2.0**32
        idx = int(x / self.coupon_prob)
        return idx if idx < self.num_coupons else None

    def update(self, key: KeyLike, attribute_value: KeyLike = None, weight: int = 1) -> None:
        coupon = self.draw_coupon(attribute_value if attribute_value is not None else key)
        if coupon is None:
            return
        key_bytes = encode_key(key)
        self._key_cache.setdefault(key_bytes, key)
        for table in self.tables:
            table.collect(key_bytes, coupon)
        if all(
            table.bitmap_for(key_bytes) == table.full_mask for table in self.tables
        ):
            self._alarms.add(key_bytes)

    def alarms(self) -> Set[KeyLike]:
        """Keys whose distinct count crossed the threshold."""
        return {self._key_cache[kb] for kb in self._alarms}

    def estimate_distinct(self, key: KeyLike) -> float:
        """Coupon-collector inversion: distinct-count estimate for one key."""
        key_bytes = encode_key(key)
        estimates = [
            coupon_collector_inversion(
                bin(table.bitmap_for(key_bytes)).count("1"),
                self.num_coupons,
                self.coupon_prob,
            )
            for table in self.tables
        ]
        return float(sorted(estimates)[len(estimates) // 2]) if estimates else 0.0

    @property
    def memory_bytes(self) -> int:
        # Per slot: 16-bit checksum + m-bit coupon bitmap (the stored key is
        # control-plane metadata in our model, as BeauCoup keeps it off the
        # critical data-plane word).
        slot_bits = 16 + self.num_coupons
        return self.depth * self.tables[0].slots * slot_bits // 8
