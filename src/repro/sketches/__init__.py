"""Standalone baseline sketching algorithms.

These are the comparison points of the paper's evaluation (Figure 14) and the
reference semantics FlyMon's CMU-hosted implementations are checked against:

* frequency: :class:`~repro.sketches.cms.CountMinSketch`,
  :class:`~repro.sketches.sumax.SuMaxSum`,
  :class:`~repro.sketches.tower.TowerSketch`,
  :class:`~repro.sketches.counter_braids.CounterBraids`,
  :class:`~repro.sketches.mrac.Mrac`,
* distinct: :class:`~repro.sketches.hll.HyperLogLog`,
  :class:`~repro.sketches.linear_counting.LinearCounting`,
  :class:`~repro.sketches.beaucoup.BeauCoup`,
* existence: :class:`~repro.sketches.bloom.BloomFilter`,
* max: :class:`~repro.sketches.sumax.SuMaxMax`,
* multi-attribute: :class:`~repro.sketches.univmon.UnivMon`.

All sketches share the key-encoding helpers in :mod:`repro.sketches.base` so
a flow key is hashed identically everywhere.
"""

from repro.sketches.base import encode_key
from repro.sketches.beaucoup import BeauCoup
from repro.sketches.bloom import BloomFilter
from repro.sketches.cms import CountMinSketch
from repro.sketches.counter_braids import CounterBraids
from repro.sketches.hll import HyperLogLog
from repro.sketches.linear_counting import LinearCounting
from repro.sketches.mrac import Mrac
from repro.sketches.oddsketch import OddSketch
from repro.sketches.sumax import SuMaxMax, SuMaxSum
from repro.sketches.tower import TowerSketch
from repro.sketches.univmon import UnivMon

__all__ = [
    "BeauCoup",
    "BloomFilter",
    "CountMinSketch",
    "CounterBraids",
    "HyperLogLog",
    "LinearCounting",
    "Mrac",
    "OddSketch",
    "SuMaxMax",
    "SuMaxSum",
    "TowerSketch",
    "UnivMon",
    "encode_key",
]
