"""MRAC (Kumar et al., SIGMETRICS 2004): flow size distribution estimation.

The data plane is a single array of counters, each flow hashed to exactly one
counter.  The control plane runs the expectation-maximization inversion in
:func:`repro.analysis.estimators.mrac_em` to recover the flow-size
distribution, from which flow entropy and flow counts follow.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.entropy import entropy_from_distribution
from repro.analysis.estimators import mrac_em
from repro.dataplane.hashing import HashFunction
from repro.sketches.base import KeyLike, Sketch, encode_key


class Mrac(Sketch):
    """Counter array + EM estimator of the flow-size distribution."""

    def __init__(self, width: int, counter_bits: int = 32, seed: int = 0x88) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.counter_bits = counter_bits
        self.counters = np.zeros(width, dtype=np.int64)
        self._hash = HashFunction(seed)

    def update(self, key: KeyLike, weight: int = 1) -> None:
        self.counters[self._hash.hash_bytes(encode_key(key)) % self.width] += weight

    def estimate_distribution(self, iterations: int = 50, max_size: int = 512) -> Dict[int, float]:
        """EM estimate of ``{flow_size: number_of_flows}``."""
        return mrac_em(self.counters, self.width, iterations=iterations, max_size=max_size)

    def estimate_entropy(self, **kwargs) -> float:
        """Flow entropy from the estimated flow-size distribution."""
        return entropy_from_distribution(self.estimate_distribution(**kwargs))

    def estimate_flow_count(self, **kwargs) -> float:
        return float(sum(self.estimate_distribution(**kwargs).values()))

    @property
    def memory_bytes(self) -> int:
        return self.width * self.counter_bits // 8
