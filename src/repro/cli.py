"""Command-line interface: explore algorithms and regenerate experiments.

Usage::

    python -m repro list-algorithms
    python -m repro list-experiments
    python -m repro run <experiment> [--full] [--telemetry PATH]
    python -m repro stats [--experiment NAME | --input PATH] [--format FMT]
    python -m repro profile [--workers N] [--trace-out PATH]
    python -m repro top [--workers N]
    python -m repro bench-compare [--update-baseline]
    python -m repro demo

``run`` accepts the experiment names printed by ``list-experiments``
(e.g. ``fig13`` or ``table3``) and prints the paper-style rows.  With
``--telemetry PATH`` the run executes with telemetry enabled and dumps the
full control-plane event log plus a metrics snapshot to ``PATH`` as JSON.
``stats`` renders such an artifact (or produces a fresh one by running an
experiment) as a summary, Prometheus text, or JSON.
"""

from __future__ import annotations

import argparse
import importlib
import os
import signal
import sys
from typing import List, Optional


class GracefulShutdown(Exception):
    """Raised by the ``repro serve`` SIGTERM handler to unwind ingestion.

    Riding an exception through the ingest loop funnels the signal into the
    same cleanup path as a completed trace: wall-clock sealers stop, the
    ragged tail window seals, the WAL flushes through its close-time
    reattach, and the shard pool shuts down -- instead of the default
    handler killing the process mid-epoch.
    """

#: Experiment name -> harness module (each exposes run()/format_result()).
EXPERIMENTS = {
    "fig02": "repro.experiments.fig02_footprint",
    "fig08": "repro.experiments.fig08_stage_usage",
    "table3": "repro.experiments.table3_deployment",
    "fig11": "repro.experiments.fig11_address_translation",
    "fig12a": "repro.experiments.fig12a_forwarding",
    "fig12b": "repro.experiments.fig12b_accuracy",
    "fig13": "repro.experiments.fig13_resources",
    "fig14a": "repro.experiments.fig14a_heavy_hitter",
    "fig14b": "repro.experiments.fig14b_probabilistic",
    "fig14c": "repro.experiments.fig14c_ddos",
    "fig14d": "repro.experiments.fig14d_cardinality",
    "fig14e": "repro.experiments.fig14e_entropy",
    "fig14f": "repro.experiments.fig14f_interarrival",
    "fig14g": "repro.experiments.fig14g_existence",
    "appendix-b": "repro.experiments.appendix_b_collisions",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlyMon reproduction: on-the-fly network measurement.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-algorithms", help="show the built-in CMU algorithms")
    sub.add_parser("list-experiments", help="show the paper tables/figures")

    run = sub.add_parser("run", help="regenerate one paper table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--full",
        action="store_true",
        help="paper-like workload scale (slower) instead of the quick scale",
    )
    run.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="enable telemetry and dump the event log + metrics snapshot "
        "to PATH as JSON after the run",
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="datapath batch size for trace replays (0 forces the scalar "
        "reference path; default: the engine's built-in size). Both paths "
        "are bit-identical -- this only trades speed",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard trace replays over N parallel datapath workers "
        "(default: FLYMON_WORKERS or 1). Worker register state is merged "
        "exactly, so results stay bit-identical to a sequential replay",
    )
    run.add_argument(
        "--shard-runtime",
        choices=("ephemeral", "persistent"),
        default=None,
        help="sharded-replay runtime: ephemeral forks fresh workers per "
        "call, persistent keeps a resident worker pool fed over shared "
        "memory (default: FLYMON_SHARD_RUNTIME or ephemeral)",
    )

    stats = sub.add_parser(
        "stats", help="telemetry snapshot: events, metrics, utilization"
    )
    stats.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS),
        default="table3",
        help="experiment to run under telemetry (default: table3)",
    )
    stats.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="render an existing --telemetry artifact instead of running",
    )
    stats.add_argument(
        "--format",
        choices=("summary", "prometheus", "json"),
        default="summary",
        help="output format (default: summary)",
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a combined report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="path of the markdown report"
    )
    report.add_argument(
        "--fast-only",
        action="store_true",
        help="only the sub-second harnesses (resource/latency models)",
    )

    verify = sub.add_parser(
        "verify",
        help="audit control-plane invariants: deployment integrity, "
        "fault-injection rollback atomicity, checkpoint round-trip",
    )
    verify.add_argument(
        "--rounds",
        type=int,
        default=None,
        metavar="N",
        help="randomized fault-injection rounds (default: the 'rounds' "
        "option of FLYMON_FAULTS, else 10)",
    )
    verify.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="fault-schedule seed (default: the 'seed' option of "
        "FLYMON_FAULTS, else 2026)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the continuous measurement service over a trace: "
        "streaming epochs, watchers, queryable checkpoint artifact",
    )
    source = serve.add_mutually_exclusive_group()
    source.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="replay a .npz trace written by Trace.save",
    )
    source.add_argument(
        "--generator",
        choices=("zipf", "uniform", "ddos", "superspreader", "portscan"),
        default="zipf",
        help="synthesize the input trace (default: zipf)",
    )
    serve.add_argument("--packets", type=int, default=100_000, metavar="N")
    serve.add_argument("--flows", type=int, default=5_000, metavar="N")
    serve.add_argument("--seed", type=int, default=1, metavar="N")
    rotation = serve.add_mutually_exclusive_group()
    rotation.add_argument(
        "--epoch-size",
        type=int,
        default=None,
        metavar="N",
        help="rotate epochs every N packets (default: packets/20)",
    )
    rotation.add_argument(
        "--epoch-us",
        type=int,
        default=None,
        metavar="US",
        help="rotate epochs every US microseconds of packet time",
    )
    rotation.add_argument(
        "--epoch-wall-ms",
        type=float,
        default=None,
        metavar="MS",
        help="rotate epochs every MS milliseconds of wall-clock time "
        "(a background thread seals while ingestion continues)",
    )
    serve.add_argument(
        "--retain", type=int, default=16, metavar="N",
        help="sealed epochs kept in the ring (default: 16)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard ingestion over N parallel datapath workers",
    )
    serve.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="vectorized-engine chunk size (0 forces the scalar path)",
    )
    serve.add_argument(
        "--shard-runtime",
        choices=("ephemeral", "persistent"),
        default=None,
        help="sharded-ingest runtime (persistent keeps workers resident "
        "across windows and epoch rotations; default: "
        "FLYMON_SHARD_RUNTIME or ephemeral)",
    )
    serve.add_argument(
        "--chunk", type=int, default=32_768, metavar="N",
        help="ingest the trace in chunks of N packets (default: 32768)",
    )
    serve.add_argument(
        "--tasks",
        default="hh,card",
        metavar="LIST",
        help="comma list of task presets: hh, card, entropy, existence, "
        "interarrival (default: hh,card)",
    )
    serve.add_argument(
        "--threshold", type=int, default=100, metavar="N",
        help="heavy-hitter alarm threshold for the hh preset (default: 100)",
    )
    serve.add_argument(
        "--watch-fill",
        type=float,
        default=None,
        metavar="F",
        help="watcher: when the hh task's fill factor exceeds F at a seal, "
        "double its memory through a transactional resize",
    )
    serve.add_argument(
        "--watch-cardinality",
        type=float,
        default=None,
        metavar="N",
        help="watcher: flag epochs whose cardinality estimate exceeds N",
    )
    serve.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write the queryable service artifact (JSON) for `repro query`",
    )
    serve.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="enable telemetry and dump the event log + metrics to PATH",
    )
    serve.add_argument(
        "--wal",
        metavar="PATH",
        default=None,
        help="append a crash-consistent write-ahead log (JSON lines) that "
        "`repro recover` replays after a crash; a directory (with "
        "--wal-segment-seals/--wal-segment-bytes) enables segmentation",
    )
    serve.add_argument(
        "--wal-policy",
        choices=("fail", "degrade"),
        default="fail",
        help="on a WAL write failure: fail stops ingest cleanly (sealed "
        "epochs stay intact); degrade keeps serving with wal_state="
        "degraded and bounded-backoff reattach attempts (default: fail)",
    )
    serve.add_argument(
        "--wal-segment-seals",
        type=int,
        default=None,
        metavar="N",
        help="roll the WAL to a new segment after N seal records (treats "
        "--wal as a directory of wal-NNNNNN.jsonl segments)",
    )
    serve.add_argument(
        "--wal-segment-bytes",
        type=int,
        default=None,
        metavar="B",
        help="roll the WAL to a new segment once it exceeds B bytes",
    )
    serve.add_argument(
        "--wal-force",
        action="store_true",
        help="resume into a WAL path that already holds records (starts a "
        "fresh segment, or rotates a single file to PATH.prev); without "
        "this, attaching to a non-empty WAL is refused",
    )
    serve.add_argument(
        "--max-stall-ms",
        type=float,
        default=None,
        metavar="MS",
        help="overload guard: shed whole ingest windows (with exact "
        "dropped_packets/dropped_windows accounting) instead of waiting "
        "more than MS ms for the ingest lock",
    )
    serve.add_argument(
        "--health-out",
        metavar="PATH",
        default=None,
        help="write a service.health() JSON heartbeat to PATH (atomically, "
        "after every chunk and at exit)",
    )

    profile = sub.add_parser(
        "profile",
        help="run a workload under the flight recorder and print the "
        "phase-attribution tree (where the time went)",
    )
    profile.add_argument(
        "--workload",
        choices=("stream", "batch"),
        default="stream",
        help="stream: the continuous service with epoch rotation; "
        "batch: one sharded trace replay (default: stream)",
    )
    psource = profile.add_mutually_exclusive_group()
    psource.add_argument(
        "--input", metavar="PATH", default=None,
        help="replay a .npz trace written by Trace.save",
    )
    psource.add_argument(
        "--generator",
        choices=("zipf", "uniform", "ddos", "superspreader", "portscan"),
        default="zipf",
    )
    profile.add_argument("--packets", type=int, default=100_000, metavar="N")
    profile.add_argument("--flows", type=int, default=5_000, metavar="N")
    profile.add_argument("--seed", type=int, default=1, metavar="N")
    profile.add_argument(
        "--epoch-size", type=int, default=None, metavar="N",
        help="stream workload: rotate every N packets (default: packets/20)",
    )
    profile.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the datapath over N parallel workers",
    )
    profile.add_argument(
        "--batch-size", type=int, default=None, metavar="N"
    )
    profile.add_argument(
        "--shard-runtime",
        choices=("ephemeral", "persistent"),
        default=None,
        help="sharded-datapath runtime (default: FLYMON_SHARD_RUNTIME "
        "or ephemeral)",
    )
    profile.add_argument(
        "--chunk", type=int, default=32_768, metavar="N",
        help="stream workload: ingest chunk size (default: 32768)",
    )
    profile.add_argument(
        "--tasks", default="hh,card", metavar="LIST",
        help="task presets, as for `repro serve` (default: hh,card)",
    )
    profile.add_argument("--threshold", type=int, default=100, metavar="N")
    profile.add_argument(
        "--min-pct", type=float, default=0.05, metavar="F",
        help="fold phases under F%% of total into (unattributed)",
    )
    profile.add_argument(
        "--capacity", type=int, default=None, metavar="N",
        help="flight-recorder ring capacity (default: 8192 spans)",
    )
    profile.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write Chrome trace_event JSON (open in Perfetto or "
        "chrome://tracing)",
    )
    profile.add_argument(
        "--json", dest="json_out", metavar="PATH", default=None,
        help="also write the raw span records as JSON",
    )

    top = sub.add_parser(
        "top",
        help="run the streaming service with a live refreshing dashboard: "
        "pps, epoch seal ms, shard utilization, watcher fires",
    )
    tsource = top.add_mutually_exclusive_group()
    tsource.add_argument("--input", metavar="PATH", default=None)
    tsource.add_argument(
        "--generator",
        choices=("zipf", "uniform", "ddos", "superspreader", "portscan"),
        default="zipf",
    )
    top.add_argument("--packets", type=int, default=200_000, metavar="N")
    top.add_argument("--flows", type=int, default=5_000, metavar="N")
    top.add_argument("--seed", type=int, default=1, metavar="N")
    top.add_argument("--epoch-size", type=int, default=None, metavar="N")
    top.add_argument("--workers", type=int, default=1, metavar="N")
    top.add_argument("--batch-size", type=int, default=None, metavar="N")
    top.add_argument(
        "--shard-runtime",
        choices=("ephemeral", "persistent"),
        default=None,
        help="sharded-ingest runtime (default: FLYMON_SHARD_RUNTIME "
        "or ephemeral)",
    )
    top.add_argument(
        "--chunk", type=int, default=16_384, metavar="N",
        help="dashboard refresh granularity in packets (default: 16384)",
    )
    top.add_argument("--tasks", default="hh,card", metavar="LIST")
    top.add_argument("--threshold", type=int, default=100, metavar="N")
    top.add_argument(
        "--watch-fill", type=float, default=None, metavar="F",
        help="fill-factor watcher, as for `repro serve`",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of redrawing in place (for logs/pipes)",
    )

    bench_compare = sub.add_parser(
        "bench-compare",
        help="diff benchmarks/results/BENCH_*.json against the committed "
        "baseline and flag perf regressions",
    )
    bench_compare.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="directory of BENCH_*.json files "
        "(default: benchmarks/results, honoring FLYMON_BENCH_DIR)",
    )
    bench_compare.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: benchmarks/baseline.json)",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=None, metavar="F",
        help="allowed relative slip before a metric regresses "
        "(default: 0.25 = 25%%)",
    )
    bench_compare.add_argument(
        "--update-baseline", action="store_true",
        help="snapshot the current results as the new baseline and exit",
    )
    bench_compare.add_argument(
        "--record-history", metavar="PATH", default=None,
        help="also append this run's results to a JSONL history ledger",
    )
    bench_compare.add_argument("--verbose", action="store_true")

    query = sub.add_parser(
        "query",
        help="answer typed measurement queries against a `repro serve` "
        "checkpoint artifact, offline",
    )
    query.add_argument("--input", metavar="PATH", required=True)
    query.add_argument(
        "--list", action="store_true", help="show epochs, tasks, and series"
    )
    query.add_argument(
        "--epoch", type=int, default=None, metavar="N",
        help="epoch index to query (default: latest retained)",
    )
    query.add_argument(
        "--task", type=int, default=0, metavar="INDEX",
        help="task index from --list (default: 0)",
    )
    query.add_argument(
        "--query",
        dest="query_kind",
        choices=(
            "cardinality",
            "entropy",
            "heavy-hitters",
            "frequency",
            "existence",
            "interarrival",
            "series",
        ),
        default=None,
    )
    query.add_argument(
        "--flow",
        default=None,
        metavar="KEY",
        help="flow key for point queries: comma-separated fields, each a "
        "dotted quad or integer (e.g. 10.0.0.7 or 10.0.0.7,443)",
    )
    query.add_argument("--threshold", type=int, default=None, metavar="N")
    query.add_argument("--series", default=None, metavar="NAME")

    recover = sub.add_parser(
        "recover",
        help="replay a `repro serve --wal` log (e.g. after a crash) into a "
        "queryable checkpoint artifact",
    )
    recover.add_argument(
        "--wal",
        metavar="PATH",
        required=True,
        help="the write-ahead log: a single file, or a segment directory "
        "(recovers from the newest segment with an intact base)",
    )
    recover.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the recovered artifact here (for `repro query --input`)",
    )

    fabric = sub.add_parser(
        "fabric",
        help="federated measurement over a simulated switch fabric: "
        "per-switch services, epoch barrier, law-based merging",
    )
    fsub = fabric.add_subparsers(dest="fabric_command", required=True)

    def fabric_common(p):
        topo = p.add_mutually_exclusive_group()
        topo.add_argument(
            "--topology",
            metavar="PATH",
            default=None,
            help="JSON topology spec (see docs/FABRIC.md)",
        )
        topo.add_argument(
            "--switches",
            type=int,
            default=4,
            metavar="N",
            help="preset: N edge switches + one core spine (default: 4)",
        )
        p.add_argument(
            "--tasks",
            default="hh,card",
            metavar="LIST",
            help="comma list of task presets: hh, card, entropy, existence, "
            "interarrival (default: hh,card)",
        )
        p.add_argument("--threshold", type=int, default=100, metavar="N")

    def fabric_traffic(p):
        p.add_argument(
            "--input", metavar="PATH", default=None,
            help="replay a .npz trace (default: synthesize per-edge zipf)",
        )
        p.add_argument("--packets", type=int, default=40_000, metavar="N")
        p.add_argument("--flows", type=int, default=2_000, metavar="N")
        p.add_argument("--seed", type=int, default=1, metavar="N")
        p.add_argument(
            "--epoch-size", type=int, default=None, metavar="N",
            help="fabric barrier every N packets (default: packets/8)",
        )
        p.add_argument("--chunk", type=int, default=16_384, metavar="N")

    fserve = fsub.add_parser(
        "serve", help="stream a trace through the fabric, printing each "
        "merged fabric epoch",
    )
    fabric_common(fserve)
    fabric_traffic(fserve)
    fserve.add_argument(
        "--status-out", metavar="PATH", default=None,
        help="write the final fabric status() JSON here",
    )
    fserve.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="record fabric.dispatch/barrier/merge spans to PATH",
    )

    fquery = fsub.add_parser(
        "query", help="one-shot: drive the fabric over a trace, then answer "
        "a typed query against a merged fabric epoch",
    )
    fabric_common(fquery)
    fabric_traffic(fquery)
    fquery.add_argument(
        "--query",
        dest="query_kind",
        choices=("frequency", "cardinality", "entropy", "existence",
                 "heavy-hitters"),
        required=True,
    )
    fquery.add_argument("--flow", default=None, metavar="KEY")
    fquery.add_argument("--epoch", type=int, default=None, metavar="N")

    fstatus = fsub.add_parser(
        "status", help="dry-run: show the topology and where collaborative "
        "placement would host each task",
    )
    fabric_common(fstatus)
    fstatus.add_argument(
        "--json", action="store_true", help="emit machine-readable status"
    )

    sub.add_parser("demo", help="run the quickstart scenario")
    return parser


def cmd_list_algorithms() -> int:
    from repro.core.algorithms import ALGORITHM_REGISTRY
    from repro.core.task import MeasurementTask, AttributeSpec
    from repro.traffic.flows import KEY_SRC_IP

    print(f"{'name':<18} {'attribute':<12} {'rows':<5} groups")
    print("-" * 48)
    for name in sorted(ALGORITHM_REGISTRY):
        cls = ALGORITHM_REGISTRY[name]
        # Probe the shape with a representative task.
        kwargs = dict(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
            algorithm=name,
        )
        if name in ("beaucoup",):
            kwargs["attribute"] = AttributeSpec.distinct(KEY_SRC_IP)
            kwargs["threshold"] = 512
        elif name in ("hll", "linear_counting", "odd_sketch"):
            kwargs["attribute"] = AttributeSpec.distinct(KEY_SRC_IP)
        elif name in ("sumax_max", "max_interarrival"):
            kwargs["attribute"] = AttributeSpec.maximum("queue_length")
        elif name in ("bloom", "bloom_naive"):
            kwargs["attribute"] = AttributeSpec.existence()
        try:
            algo = cls(MeasurementTask(**kwargs))
            attribute = kwargs["attribute"].kind.value
            print(
                f"{name:<18} {attribute:<12} {algo.num_rows():<5} "
                f"{algo.groups_needed()}"
            )
        except Exception as exc:  # pragma: no cover - defensive listing
            print(f"{name:<18} <unavailable: {exc}>")
    return 0


def cmd_list_experiments() -> int:
    print(f"{'name':<12} module")
    print("-" * 60)
    for name, module in sorted(EXPERIMENTS.items()):
        print(f"{name:<12} {module}")
    return 0


def _datapath_probe(num_packets: int = 512) -> None:
    """Drive a small deployment + trace so a telemetry dump always carries
    datapath signals (pipeline/stage/register counters, sampled spans,
    utilization gauges) even for control-plane-only experiments."""
    from repro.core.controller import FlyMonController
    from repro.core.task import AttributeSpec, MeasurementTask
    from repro.traffic import KEY_SRC_IP, zipf_trace

    controller = FlyMonController(num_groups=3)
    handle = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
        )
    )
    trace = zipf_trace(num_flows=128, num_packets=num_packets, seed=7)
    controller.process_trace(trace)
    controller.record_telemetry()
    controller.remove_task(handle)


def _run_with_telemetry(experiment: str, full: bool, path: str):
    """Run an experiment instrumented; dump the artifact to ``path``."""
    from repro import telemetry

    module = importlib.import_module(EXPERIMENTS[experiment])
    telemetry.reset()
    telemetry.enable()
    try:
        result = module.run(quick=not full)
        _datapath_probe()
        snapshot = telemetry.write_artifact(
            path,
            meta={
                "experiment": experiment,
                "scale": "full" if full else "quick",
                "sample_interval": telemetry.TELEMETRY.tracer.sample_interval,
                "datapath_probe": True,
            },
        )
    finally:
        telemetry.disable()
    return module, result, snapshot


def cmd_run(
    experiment: str,
    full: bool,
    telemetry_path: Optional[str] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> int:
    if batch_size is not None:
        # Experiment drivers read FLYMON_BATCH_SIZE via
        # repro.experiments.common.default_batch_size.
        os.environ["FLYMON_BATCH_SIZE"] = str(batch_size)
    if workers is not None:
        # Experiment drivers read FLYMON_WORKERS via
        # repro.experiments.common.default_workers.
        os.environ["FLYMON_WORKERS"] = str(workers)
    if telemetry_path is not None:
        parent = os.path.dirname(telemetry_path) or "."
        if not os.path.isdir(parent):
            print(
                f"error: telemetry path directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
        module, result, snapshot = _run_with_telemetry(
            experiment, full, telemetry_path
        )
        print(module.format_result(result))
        events = len(snapshot["events"])
        print(f"telemetry: {events} events -> {telemetry_path}")
        return 0
    module = importlib.import_module(EXPERIMENTS[experiment])
    result = module.run(quick=not full)
    print(module.format_result(result))
    return 0


def cmd_stats(experiment: str, input_path: Optional[str], format: str) -> int:
    import json

    from repro import telemetry

    if input_path is not None:
        try:
            snapshot = telemetry.load_artifact(input_path)
        except FileNotFoundError:
            print(f"error: no telemetry artifact at {input_path}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {input_path} is not valid JSON: {exc}", file=sys.stderr)
            return 2
    else:
        module = importlib.import_module(EXPERIMENTS[experiment])
        telemetry.reset()
        telemetry.enable()
        try:
            module.run(quick=True)
            _datapath_probe()
            snapshot = telemetry.build_snapshot(
                meta={"experiment": experiment, "scale": "quick"}
            )
        finally:
            telemetry.disable()
    if format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
    elif format == "prometheus":
        print(telemetry.to_prometheus(snapshot["metrics"]), end="")
    else:
        print(telemetry.summarize(snapshot))
    return 0


#: Harnesses cheap enough for --fast-only reports.
FAST_EXPERIMENTS = ("fig02", "fig08", "fig11", "fig12a", "fig13", "appendix-b", "table3")


def cmd_report(output: str, fast_only: bool) -> int:
    names = FAST_EXPERIMENTS if fast_only else tuple(sorted(EXPERIMENTS))
    sections = []
    for name in names:
        module = importlib.import_module(EXPERIMENTS[name])
        print(f"running {name} ...", flush=True)
        result = module.run(quick=True)
        sections.append(f"## {name}\n\n```\n{module.format_result(result)}\n```\n")
    with open(output, "w") as fh:
        fh.write("# FlyMon reproduction report\n\n")
        fh.write(
            "Generated by `python -m repro report`. Quick-scale workloads; "
            "see EXPERIMENTS.md for paper-vs-measured discussion.\n\n"
        )
        fh.write("\n".join(sections))
    print(f"wrote {output} ({len(sections)} sections)")
    return 0


def cmd_verify(rounds: Optional[int] = None, seed: Optional[int] = None) -> int:
    """Audit the control plane's robustness invariants.

    Three phases: (1) deploy every Table 3 algorithm and run the integrity
    auditor; (2) randomized fault-injection rounds asserting every aborted
    reconfiguration rolls back to bit-identical state; (3) a checkpoint /
    restore round-trip.  ``FLYMON_FAULTS="seed=...,rounds=..."`` (options
    only, no armed sites) parameterizes the schedule; flags override.
    """
    import random

    from repro.core.controller import FlyMonController
    from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
    from repro.experiments.table3_deployment import CASES
    from repro.faults import (
        FAULTS,
        FaultSpecError,
        SITE_ALLOC_EXHAUSTED,
        SITE_KEY_DENIED,
        SITE_RULE_APPLY,
        parse_spec,
    )
    from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP

    options = {}
    env_spec = os.environ.get("FLYMON_FAULTS", "")
    if env_spec:
        try:
            _, options = parse_spec(env_spec)
        except FaultSpecError as exc:
            print(f"error: bad FLYMON_FAULTS: {exc}", file=sys.stderr)
            return 2
    try:
        if seed is None:
            seed = int(options.get("seed", 2026))
        if rounds is None:
            rounds = int(options.get("rounds", 10))
    except ValueError as exc:
        print(f"error: bad FLYMON_FAULTS option: {exc}", file=sys.stderr)
        return 2

    problems: List[str] = []
    # The audit owns the injector: env-armed sites would make phase 1 fail
    # by design, so start from a clean slate and restore nothing after.
    FAULTS.reset()

    # Phase 1 -- Table 3 deployment integrity. ------------------------------
    print("phase 1: Table 3 deployment integrity")
    for name, _attribute, kwargs in CASES:
        controller = FlyMonController(
            num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
        )
        task_kwargs = dict(key=KEY_SRC_IP, memory=16_384, algorithm=name)
        task_kwargs.update(kwargs)
        controller.add_task(MeasurementTask(**task_kwargs))
        report = controller.verify_integrity()
        status = "ok" if report.ok else "FAIL"
        print(f"  {name:<16} {report.checks:>3} checks  {status}")
        if not report.ok:
            problems.extend(f"{name}: {p}" for p in report.problems)

    # Phase 2 -- fault-injection rollback atomicity. ------------------------
    print(f"phase 2: rollback atomicity ({rounds} rounds, seed {seed})")
    rng = random.Random(seed)
    controller = FlyMonController(
        num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
    )
    base_attrs = {
        "cms": AttributeSpec.frequency(),
        "bloom": AttributeSpec.existence(),
        "tower": AttributeSpec.frequency(),
    }
    for i, algorithm in enumerate(("cms", "bloom", "tower")):
        controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=base_attrs[algorithm],
                memory=8192,
                algorithm=algorithm,
                filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
            )
        )
    sites = (
        (SITE_RULE_APPLY, 8),
        (SITE_ALLOC_EXHAUSTED, 3),
        (SITE_KEY_DENIED, 1),
    )
    fired = aborted = 0
    for n in range(rounds):
        site, max_hit = sites[rng.randrange(len(sites))]
        hit = rng.randint(1, max_hit)
        before_digest = controller.control_digest()
        before_free = controller.free_buckets()
        FAULTS.reset()  # hit counters are cumulative; each round starts at 0
        before_fired = len(FAULTS.fired())
        FAULTS.arm(site, hit=hit)
        probe = MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            algorithm="cms",
            filter=TaskFilter.of(src_ip=((100 + n) << 24, 8)),
        )
        try:
            handle = controller.add_task(probe)
        except Exception:
            aborted += 1
            if len(FAULTS.fired()) == before_fired:
                problems.append(
                    f"round {n}: add_task failed without an injected fault"
                )
            if controller.control_digest() != before_digest:
                problems.append(f"round {n}: {site}@{hit} left a dirty digest")
            if controller.free_buckets() != before_free:
                problems.append(f"round {n}: {site}@{hit} leaked buckets")
        else:
            # The arm outlived the call (fewer hits than the index) or the
            # injected denial was survivable; undo the probe either way.
            if len(FAULTS.fired()) > before_fired:
                fired += 1
            controller.remove_task(handle)
        FAULTS.disarm()
        report = controller.verify_integrity()
        if not report.ok:
            problems.extend(f"round {n}: {p}" for p in report.problems)
    fired += aborted
    print(f"  {rounds} rounds: {fired} faults fired, {aborted} aborts, "
          f"{rounds - fired} no-fire")

    # Mid-batch filter update: fail on a later rule, expect full revert.
    victim = controller.tasks[0]
    old_filter = victim.task.filter
    before_digest = controller.control_digest()
    FAULTS.reset()
    FAULTS.arm(SITE_RULE_APPLY, hit=2)
    try:
        controller.update_task_filter(
            victim, TaskFilter.of(src_ip=(0xC0000000, 8))
        )
    except Exception:
        if controller.control_digest() != before_digest:
            problems.append("mid-batch filter update left a dirty digest")
        if victim.task.filter != old_filter:
            problems.append("mid-batch filter update left a stale handle")
        print("  mid-batch filter-update abort: state reverted")
    else:
        problems.append("injected mid-batch rule failure did not abort")
    FAULTS.disarm()

    # Phase 3 -- checkpoint round-trip. -------------------------------------
    print("phase 3: checkpoint round-trip")
    state = controller.checkpoint()
    restored = FlyMonController.from_checkpoint(state)
    report = restored.verify_integrity()
    if not report.ok:
        problems.extend(f"restore: {p}" for p in report.problems)
    if restored.free_buckets() != controller.free_buckets():
        problems.append("restore: free-bucket map differs from the original")
    if len(restored.tasks) != len(controller.tasks):
        problems.append("restore: task count differs from the original")
    print(f"  {len(restored.tasks)} tasks restored, {report.checks} checks "
          f"{'ok' if report.ok else 'FAIL'}")

    FAULTS.reset()
    if problems:
        print(f"verify: {len(problems)} problem(s)", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("verify: all invariants hold")
    return 0


def _serve_tasks(names: List[str], threshold: int):
    """Instantiate the ``repro serve`` task presets, in request order."""
    from repro.core.task import AttributeSpec, MeasurementTask
    from repro.traffic.flows import KEY_5TUPLE, KEY_SRC_IP

    presets = {
        "hh": lambda: MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
            threshold=threshold,
        ),
        "card": lambda: MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.distinct(KEY_5TUPLE),
            memory=1024,
            depth=1,
            algorithm="hll",
        ),
        "entropy": lambda: MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.frequency(),
            memory=2048,
            depth=1,
            algorithm="mrac",
        ),
        "existence": lambda: MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.existence(),
            memory=4096,
            depth=3,
            algorithm="bloom",
        ),
        "interarrival": lambda: MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.maximum("packet_interval"),
            memory=2048,
            depth=2,
            algorithm="max_interarrival",
        ),
    }
    out = []
    for name in names:
        if name not in presets:
            raise ValueError(
                f"unknown task preset {name!r} (choose from {sorted(presets)})"
            )
        out.append((name, presets[name]()))
    return out


def _load_serve_trace(args):
    from repro.traffic import (
        ddos_trace,
        portscan_trace,
        superspreader_trace,
        uniform_trace,
        zipf_trace,
    )
    from repro.traffic.trace import Trace

    if args.input is not None:
        return Trace.load(args.input)
    generators = {
        "zipf": lambda: zipf_trace(
            num_flows=args.flows, num_packets=args.packets, seed=args.seed
        ),
        "uniform": lambda: uniform_trace(
            num_flows=args.flows, num_packets=args.packets, seed=args.seed
        ),
        "ddos": lambda: ddos_trace(num_packets=args.packets, seed=args.seed),
        "superspreader": lambda: superspreader_trace(
            num_packets=args.packets, seed=args.seed
        ),
        "portscan": lambda: portscan_trace(
            num_packets=args.packets, seed=args.seed
        ),
    }
    return generators[args.generator]()


def cmd_serve(args) -> int:
    import json
    import time

    from repro import telemetry
    from repro.core.controller import FlyMonController
    from repro.service import (
        CardinalityQuery,
        EntropyQuery,
        HeavyHitterQuery,
        MeasurementService,
        TaskRef,
        Watcher,
        cardinality_metric,
        fill_factor_metric,
        resize_action,
        service_checkpoint,
    )

    try:
        trace = _load_serve_trace(args)
    except FileNotFoundError:
        print(f"error: no trace at {args.input}", file=sys.stderr)
        return 2
    epoch_packets = args.epoch_size
    epoch_duration_us = args.epoch_us
    epoch_wall_ms = args.epoch_wall_ms
    if epoch_packets is None and epoch_duration_us is None and epoch_wall_ms is None:
        epoch_packets = max(1, len(trace) // 20)

    if args.telemetry is not None:
        telemetry.reset()
        telemetry.enable()
    controller = None
    try:
        controller = FlyMonController(num_groups=3)
        try:
            named = _serve_tasks(
                [n.strip() for n in args.tasks.split(",") if n.strip()],
                args.threshold,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from repro.core.controller import PlacementError

        try:
            refs = {
                name: TaskRef(controller.add_task(task)) for name, task in named
            }
        except PlacementError as exc:
            print(
                f"error: cannot place the requested task mix "
                f"({args.tasks}): {exc}",
                file=sys.stderr,
            )
            return 2
        service = MeasurementService(
            controller,
            epoch_packets=epoch_packets,
            epoch_duration_us=epoch_duration_us,
            epoch_wall_ms=epoch_wall_ms,
            retain=args.retain,
            workers=args.workers,
            batch_size=args.batch_size,
            runtime=getattr(args, "shard_runtime", None),
            max_stall_ms=getattr(args, "max_stall_ms", None),
        )
        if "hh" in refs:
            service.register_series("heavy_hitters", HeavyHitterQuery(refs["hh"]))
        if "card" in refs:
            service.register_series("cardinality", CardinalityQuery(refs["card"]))
        if "entropy" in refs:
            service.register_series("entropy", EntropyQuery(refs["entropy"]))
        if args.watch_fill is not None:
            if "hh" not in refs:
                print("error: --watch-fill needs the hh task", file=sys.stderr)
                return 2
            service.add_watcher(
                Watcher(
                    "fill_factor",
                    fill_factor_metric(refs["hh"]),
                    above=args.watch_fill,
                    action=resize_action(refs["hh"]),
                    cooldown_epochs=1,
                )
            )
        if args.watch_cardinality is not None:
            if "card" not in refs:
                print(
                    "error: --watch-cardinality needs the card task",
                    file=sys.stderr,
                )
                return 2
            service.add_watcher(
                Watcher(
                    "cardinality_spike",
                    cardinality_metric(refs["card"]),
                    above=args.watch_cardinality,
                )
            )

        wal = None
        if args.wal is not None:
            from repro.service.wal import ServiceWal, WalError

            try:
                wal = ServiceWal(
                    args.wal,
                    segment_seals=getattr(args, "wal_segment_seals", None),
                    segment_bytes=getattr(args, "wal_segment_bytes", None),
                    policy=getattr(args, "wal_policy", "fail"),
                    resume=bool(getattr(args, "wal_force", False)),
                ).attach(service)
            except WalError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

        health_out = getattr(args, "health_out", None)

        def write_health() -> None:
            if health_out is None:
                return
            payload = service.health()
            payload["time"] = time.time()
            if wal is not None:
                payload["wal"] = wal.status()
            tmp = health_out + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, health_out)

        def print_epoch(sealed) -> None:
            fired = [e for e in sealed.watcher_events if e.fired]
            line = (
                f"epoch {sealed.index:>3}: {sealed.packets:>7} pkts "
                f"sealed in {sealed.seal_ms:6.2f} ms"
            )
            for name in sorted(sealed.outputs):
                value = sealed.outputs[name]
                if isinstance(value, float):
                    line += f"  {name}={value:.1f}"
                elif isinstance(value, (set, frozenset, list)):
                    line += f"  {name}={len(value)}"
                else:
                    line += f"  {name}={value}"
            if fired:
                line += "  [" + ", ".join(
                    f"{e.watcher}->{e.outcome or 'fired'}" for e in fired
                ) + "]"
            print(line, flush=True)

        from repro.traffic.packet import PACKET_FIELDS
        from repro.traffic.trace import Trace

        from repro.service.wal import WalWriteError

        last_printed = -1
        halted = None
        terminated = False

        def _on_sigterm(signum, frame):
            raise GracefulShutdown()

        try:
            prev_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # not the main thread (embedded use)
            prev_sigterm = None
        if epoch_wall_ms is not None:
            service.start()
        try:
            chunk = max(1, args.chunk)
            for start in range(0, len(trace), chunk):
                piece = Trace(
                    {f: trace.columns[f][start : start + chunk] for f in PACKET_FIELDS}
                )
                for sealed in service.ingest(piece):
                    # Bump before printing so a SIGTERM landing inside the
                    # print cannot double-report the epoch from the
                    # shutdown catch-up loop below.
                    last_printed = sealed.index
                    print_epoch(sealed)
                # Wall-clock epochs seal on the background thread; report
                # any that landed while this chunk was processing.
                for sealed in list(service.epochs):
                    if sealed.index > last_printed:
                        last_printed = sealed.index
                        print_epoch(sealed)
                write_health()
        except WalWriteError as exc:
            # --wal-policy fail: storage refused a write.  Stop ingest
            # cleanly -- every epoch sealed so far is intact and durable.
            halted = exc
        except GracefulShutdown:
            # SIGTERM: stop ingesting, but run the full shutdown path --
            # seal the tail, flush the WAL, close the shard pool.
            terminated = True
        finally:
            if prev_sigterm is not None:
                signal.signal(signal.SIGTERM, prev_sigterm)
            if epoch_wall_ms is not None:
                service.stop(seal_tail=halted is None)
            elif service._epoch_fill and halted is None:
                service.rotate()  # seal the ragged tail window
            for sealed in list(service.epochs):
                if sealed.index > last_printed:
                    print_epoch(sealed)
                    last_printed = sealed.index
            write_health()

        if halted is not None:
            stats = service.stats()
            print(
                f"error: {halted}\n"
                f"served {stats['packets_total']} packets across "
                f"{stats['epoch']} epochs before the WAL failure; the log "
                "is recoverable up to the last sealed epoch",
                file=sys.stderr,
            )
            if wal is not None:
                wal.close()
            return 1

        stats = service.stats()
        if terminated:
            print(
                "sigterm: sealed the open window and flushed state before "
                "exit", flush=True
            )
        print(
            f"served {stats['packets_total']} packets across {stats['epoch']} "
            f"epochs ({stats['sealed_epochs']} retained), workers={args.workers}"
        )
        if args.checkpoint is not None:
            artifact = service_checkpoint(service)
            with open(args.checkpoint, "w") as fh:
                json.dump(artifact, fh)
            print(f"checkpoint: {len(artifact['epochs'])} epochs -> {args.checkpoint}")
        if wal is not None:
            wal.close()  # may flush cached epochs via a final reattach
            status = wal.status()
            line = f"wal: {wal.records_written} records"
            if status["mode"] == "segmented":
                line += f", segment {status['segment']} ({status['rolls']} roll(s))"
            if status["state"] != "ok":
                line += f", state={status['state']}"
            if status["lost_seals"]:
                line += f", LOST {status['lost_seals']} sealed epoch(s)"
            print(line + f" -> {args.wal}")
            write_health()  # reflect the close-time reattach outcome
        if args.telemetry is not None:
            snapshot = telemetry.write_artifact(
                args.telemetry, meta={"command": "serve"}
            )
            print(
                f"telemetry: {len(snapshot['events'])} events -> {args.telemetry}"
            )
    finally:
        if controller is not None:
            controller.close_shard_pool()
        if args.telemetry is not None:
            telemetry.disable()
    return 0


def _build_stream_workload(args):
    """Controller + service + trace for the profile/top stream workloads."""
    from repro.core.controller import FlyMonController, PlacementError
    from repro.service import (
        CardinalityQuery,
        HeavyHitterQuery,
        MeasurementService,
        TaskRef,
    )

    trace = _load_serve_trace(args)
    controller = FlyMonController(num_groups=3)
    named = _serve_tasks(
        [n.strip() for n in args.tasks.split(",") if n.strip()], args.threshold
    )
    try:
        refs = {
            name: TaskRef(controller.add_task(task)) for name, task in named
        }
    except PlacementError as exc:
        raise ValueError(f"cannot place the task mix ({args.tasks}): {exc}")
    epoch_packets = args.epoch_size
    if epoch_packets is None:
        epoch_packets = max(1, len(trace) // 20)
    service = MeasurementService(
        controller,
        epoch_packets=epoch_packets,
        retain=16,
        workers=args.workers,
        batch_size=args.batch_size,
        runtime=getattr(args, "shard_runtime", None),
    )
    if "hh" in refs:
        service.register_series("heavy_hitters", HeavyHitterQuery(refs["hh"]))
    if "card" in refs:
        service.register_series("cardinality", CardinalityQuery(refs["card"]))
    return trace, controller, service, refs


def _iter_chunks(trace, chunk: int):
    from repro.traffic.packet import PACKET_FIELDS
    from repro.traffic.trace import Trace

    for start in range(0, len(trace), chunk):
        yield Trace(
            {f: trace.columns[f][start : start + chunk] for f in PACKET_FIELDS}
        )


def cmd_profile(args) -> int:
    import json
    import time

    from repro import telemetry

    recorder = telemetry.RECORDER
    recorder.clear()
    telemetry.enable_recorder(capacity=args.capacity)
    try:
        if args.workload == "batch":
            from repro.core.controller import FlyMonController, PlacementError

            trace = _load_serve_trace(args)
            controller = FlyMonController(num_groups=3)
            try:
                for _name, task in _serve_tasks(
                    [n.strip() for n in args.tasks.split(",") if n.strip()],
                    args.threshold,
                ):
                    controller.add_task(task)
            except (ValueError, PlacementError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            t0 = time.perf_counter()
            report = controller.process_trace_sharded(
                trace,
                max(1, args.workers),
                batch_size=args.batch_size,
                runtime=getattr(args, "shard_runtime", None),
            )
            controller.close_shard_pool()
            wall_ms = (time.perf_counter() - t0) * 1e3
            backend = report.backend
            runtime_label = report.runtime
        else:
            try:
                trace, _controller, service, _refs = _build_stream_workload(args)
            except (ValueError, FileNotFoundError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            t0 = time.perf_counter()
            for piece in _iter_chunks(trace, max(1, args.chunk)):
                service.ingest(piece)
            if service._epoch_fill:
                service.rotate()  # seal the ragged tail window
            wall_ms = (time.perf_counter() - t0) * 1e3
            report = service.last_shard_report
            backend = report.backend if report is not None else "batched"
            runtime_label = (
                report.runtime if report is not None else "in-process"
            )
            _controller.close_shard_pool()
    finally:
        telemetry.disable_recorder()

    spans = recorder.spans
    root = telemetry.aggregate_spans(spans)
    print(
        f"workload={args.workload} packets={len(trace)} "
        f"workers={args.workers} backend={backend} "
        f"runtime={runtime_label} spans={len(spans)}"
    )
    print()
    print(telemetry.format_phase_tree(root, min_pct=args.min_pct))
    coverage = 100.0 * root.wall_ms / wall_ms if wall_ms > 0 else 0.0
    print()
    print(
        f"measured wall: {wall_ms:.2f} ms; recorded phases cover "
        f"{coverage:.1f}% of it"
    )
    if args.trace_out is not None:
        telemetry.write_chrome_trace(
            args.trace_out,
            spans,
            meta={
                "workload": args.workload,
                "packets": len(trace),
                "workers": args.workers,
                "wall_ms": wall_ms,
            },
        )
        print(
            f"chrome trace: {len(spans)} events -> {args.trace_out} "
            "(open in Perfetto or chrome://tracing)"
        )
    if args.json_out is not None:
        with open(args.json_out, "w") as fh:
            json.dump(
                {"wall_ms": wall_ms, "spans": recorder.to_dicts()},
                fh,
                indent=1,
                default=str,
            )
        print(f"span json: {len(spans)} spans -> {args.json_out}")
    return 0


def _top_frame(args, service, done: int, total: int, elapsed_s: float) -> str:
    """One rendering of the `repro top` dashboard."""
    stats = service.stats()
    pps = done / elapsed_s if elapsed_s > 0 else 0.0
    seal_times = [s.seal_ms for s in service.epochs]
    lines = [
        "repro top -- streaming measurement service",
        (
            f"packets  {done:>12,} / {total:,}"
            f"   elapsed {elapsed_s:7.2f} s   rate {pps / 1e3:8.1f} kpps"
        ),
    ]
    if seal_times:
        lines.append(
            f"epochs   {stats['epoch']:>5} sealed"
            f"   last seal {seal_times[-1]:7.2f} ms"
            f"   mean {sum(seal_times) / len(seal_times):7.2f} ms"
            f"   max {max(seal_times):7.2f} ms"
        )
    else:
        lines.append(f"epochs   {stats['epoch']:>5} sealed")
    lines.append(
        f"watchers {stats['watchers']:>5} registered"
        f"   fired {stats['watchers_fired']}"
    )
    health = service.health()
    health_line = f"health   {health['status']:>5}"
    if health["wal_state"] is not None:
        health_line += f"   wal={health['wal_state']}"
    if health["dropped_windows"]:
        health_line += (
            f"   shed {health['dropped_windows']} window(s)"
            f" / {health['dropped_packets']} pkts"
        )
    if health["sealer_restarts"]:
        health_line += f"   sealer restarts={health['sealer_restarts']}"
    if health["reasons"]:
        health_line += "   [" + "; ".join(health["reasons"]) + "]"
    lines.append(health_line)
    report = service.last_shard_report
    if report is not None and report.shard_timings:
        lines.append(
            f"shards   backend={report.backend} runtime={report.runtime}"
            f" workers={report.workers}"
            f"   retries={report.retries} timeouts={report.timeouts}"
        )
        for timing in report.shard_timings:
            dispatch = timing["dispatch_ms"] or 0.0
            busy = (
                100.0 * timing["compute_ms"] / dispatch if dispatch > 0 else 0.0
            )
            bar = "#" * max(0, min(20, int(busy / 5.0)))
            lines.append(
                f"  shard {timing['shard']}: busy {busy:5.1f}% [{bar:<20}] "
                f"compute {timing['compute_ms']:6.2f} ms  "
                f"build {timing['build_ms']:5.2f} ms  "
                f"transport {timing['transport_ms']:6.2f} ms"
                + ("  RETRIED" if timing["retried"] else "")
            )
    else:
        lines.append(f"shards   (single pipeline, workers={stats['workers']})")
    return "\n".join(lines)


def cmd_top(args) -> int:
    import time

    from repro.service import Watcher, fill_factor_metric, resize_action

    try:
        trace, _controller, service, refs = _build_stream_workload(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.watch_fill is not None:
        if "hh" not in refs:
            print("error: --watch-fill needs the hh task", file=sys.stderr)
            return 2
        service.add_watcher(
            Watcher(
                "fill_factor",
                fill_factor_metric(refs["hh"]),
                above=args.watch_fill,
                action=resize_action(refs["hh"]),
                cooldown_epochs=1,
            )
        )

    clear = not args.no_clear and sys.stdout.isatty()
    total = len(trace)
    done = 0
    t0 = time.perf_counter()
    for piece in _iter_chunks(trace, max(1, args.chunk)):
        service.ingest(piece)
        done += len(piece)
        frame = _top_frame(args, service, done, total, time.perf_counter() - t0)
        if clear:
            print("\x1b[2J\x1b[H" + frame, flush=True)
        else:
            print(frame + "\n", flush=True)
    if service._epoch_fill:
        service.rotate()
    frame = _top_frame(args, service, done, total, time.perf_counter() - t0)
    if clear:
        print("\x1b[2J\x1b[H" + frame, flush=True)
    else:
        print(frame, flush=True)
    stats = service.stats()
    print(
        f"\nserved {stats['packets_total']:,} packets across "
        f"{stats['epoch']} epochs; datapath time "
        f"{stats['ingest_ms_total'] / 1e3:.2f} s"
    )
    _controller.close_shard_pool()
    return 0


def cmd_bench_compare(args) -> int:
    from pathlib import Path

    from repro import bench_history

    root = Path(__file__).resolve().parents[2]
    results_dir = args.results_dir or os.environ.get("FLYMON_BENCH_DIR") or (
        root / "benchmarks" / "results"
    )
    baseline_path = args.baseline or (root / "benchmarks" / "baseline.json")

    if args.update_baseline:
        entry = bench_history.write_baseline(results_dir, baseline_path)
        print(
            f"baseline with {len(entry['benches'])} bench(es) -> "
            f"{baseline_path}"
        )
        return 0

    results = bench_history.load_results(results_dir)
    if not results:
        print(f"error: no BENCH_*.json under {results_dir}", file=sys.stderr)
        return 2
    if args.record_history is not None:
        bench_history.record_history(results_dir, args.record_history)
        print(f"history: recorded {len(results)} bench(es) -> {args.record_history}")
    baseline = bench_history.load_baseline(baseline_path)
    if baseline is None:
        print(f"no baseline at {baseline_path}; nothing to compare against")
        return 0
    threshold = (
        args.threshold
        if args.threshold is not None
        else bench_history.DEFAULT_THRESHOLD
    )
    report = bench_history.compare(results, baseline, threshold=threshold)
    print(bench_history.format_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def _parse_flow(spec: str) -> tuple:
    def part(p: str) -> int:
        p = p.strip()
        if p.count(".") == 3:
            a, b, c, d = (int(x) for x in p.split("."))
            return (a << 24) | (b << 16) | (c << 8) | d
        return int(p, 0)

    return tuple(part(p) for p in spec.split(","))


def _format_flow(flow) -> str:
    def fmt(v: int) -> str:
        if v > 0xFFFF:  # render plausible addresses as dotted quads
            return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"
        return str(v)

    return ",".join(fmt(int(v)) for v in flow)


def cmd_query(args) -> int:
    import json

    from repro.service import (
        CardinalityQuery,
        EntropyQuery,
        ExistenceQuery,
        FrequencyQuery,
        HeavyHitterQuery,
        InterArrivalQuery,
        StaleEpochError,
        UnsupportedQueryError,
        load_service_state,
    )

    try:
        with open(args.input) as fh:
            artifact = json.load(fh)
    except FileNotFoundError:
        print(f"error: no artifact at {args.input}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.input} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        restored = load_service_state(artifact)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list or args.query_kind is None:
        print(f"{'index':<6} {'algorithm':<18} key")
        for index, info in enumerate(restored.task_info):
            key = "+".join(name for name, _bits in info["key"])
            print(f"{index:<6} {info['algorithm']:<18} {key}")
        epochs = ", ".join(
            f"{s.index}({s.packets}p)" for s in restored.epochs
        )
        print(f"epochs: {epochs or '(none)'}")
        print(f"series: {', '.join(restored.series_names) or '(none)'}")
        if restored.watcher_log:
            fired = sum(1 for e in restored.watcher_log if e.get("fired"))
            print(f"watcher events: {len(restored.watcher_log)} ({fired} fired)")
        return 0

    if args.query_kind == "series":
        name = args.series
        if name is None:
            print("error: --query series needs --series NAME", file=sys.stderr)
            return 2
        try:
            for index, value in restored.series(name):
                print(f"{index:>4}  {value}")
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0

    try:
        handle = restored.tasks[args.task]
    except IndexError:
        print(
            f"error: no task index {args.task} (artifact has "
            f"{len(restored.tasks)})",
            file=sys.stderr,
        )
        return 2
    needs_flow = args.query_kind in ("frequency", "existence", "interarrival")
    flow = None
    if needs_flow:
        if args.flow is None:
            print(
                f"error: --query {args.query_kind} needs --flow",
                file=sys.stderr,
            )
            return 2
        flow = _parse_flow(args.flow)
    queries = {
        "cardinality": lambda: CardinalityQuery(handle),
        "entropy": lambda: EntropyQuery(handle),
        "heavy-hitters": lambda: HeavyHitterQuery(handle, threshold=args.threshold),
        "frequency": lambda: FrequencyQuery(handle, flow),
        "existence": lambda: ExistenceQuery(handle, flow),
        "interarrival": lambda: InterArrivalQuery(handle, flow),
    }
    try:
        result = restored.query(queries[args.query_kind](), epoch=args.epoch)
    except (StaleEpochError, UnsupportedQueryError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    if isinstance(result, (set, frozenset)):
        print(f"{len(result)} heavy hitter(s)")
        for item in sorted(result):
            print(f"  {_format_flow(item)}")
    else:
        print(result)
    return 0


def cmd_recover(args) -> int:
    import json

    from repro.service.wal import WalError, recover_service_artifact

    try:
        artifact = recover_service_artifact(args.wal)
    except FileNotFoundError:
        print(f"error: no WAL at {args.wal}", file=sys.stderr)
        return 2
    except WalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = artifact["stats"]
    print(
        f"recovered {stats['epochs_recovered']} epoch(s) from "
        f"{stats['wal_seals']} seal record(s) and {stats['wal_ops']} op "
        f"record(s) in {args.wal}"
    )
    if "wal_segments" in stats:
        print(
            f"segmented WAL: recovered from segment {stats['wal_segment']} "
            f"({stats['wal_segments']} segment(s) on disk, "
            f"{stats.get('wal_compacted', 0)} compacted epoch(s) in its base)"
        )
    if artifact["epochs"]:
        last = artifact["epochs"][-1]
        print(
            f"last sealed epoch: index {last['index']} "
            f"({last['packets']} pkts, {len(last['tasks'])} task(s))"
        )
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump(artifact, fh)
        print(f"artifact -> {args.output}")
    return 0


def _fabric_topology(args):
    from repro.fabric import FabricTopology

    if getattr(args, "topology", None):
        return FabricTopology.load(args.topology)
    return FabricTopology.preset(args.switches)


def _fabric_trace(args, topology):
    """The fabric's input trace: replayed, or per-edge zipf slices.

    The synthesized default places each block's hosts under a /8 whose top
    ``partition_bits`` bits equal the block id, so every edge switch sees
    its own share of the traffic.
    """
    from repro.traffic import Trace, zipf_trace

    if args.input is not None:
        return Trace.load(args.input)
    bits = topology.partition_bits
    blocks = topology.num_blocks
    per_block = max(1, args.packets // blocks)
    flows = max(1, args.flows // blocks)
    parts = []
    for b in range(blocks):
        # Top `bits` bits carry the block; set a low bit of the /8 so
        # addresses stay out of reserved 0.0.0.0/8 regardless of block.
        prefix_byte = (b << (8 - bits)) | 1 if bits < 8 else b
        parts.append(
            zipf_trace(
                num_flows=flows,
                num_packets=per_block,
                seed=args.seed + b,
                src_prefix=prefix_byte << 24,
            )
        )
    return Trace.concatenate(parts).sorted_by_time()


def _fabric_build(args):
    """Topology + fabric service + deployed task presets."""
    from repro.fabric import FabricPlacementError, FabricService

    topology = _fabric_topology(args)
    epoch_size = getattr(args, "epoch_size", None)
    if epoch_size is None:
        epoch_size = max(1, getattr(args, "packets", 40_000) // 8)
    fabric = FabricService(topology, epoch_packets=epoch_size)
    named = _serve_tasks(
        [n.strip() for n in args.tasks.split(",") if n.strip()],
        args.threshold,
    )
    handles = {}
    for name, task in named:
        try:
            handles[name] = fabric.deploy(task)
        except FabricPlacementError as exc:
            print(f"error: cannot place {name!r}: {exc}", file=sys.stderr)
            raise
    return topology, fabric, handles


def _print_placements(handles) -> None:
    for name, fh in handles.items():
        merge = "mergeable" if fh.mergeable else "single-host"
        print(
            f"  {name}: task {fh.task_id} -> {', '.join(fh.hosts)} "
            f"({fh.layer} layer, {merge})"
        )


def cmd_fabric(args) -> int:
    import json

    from repro import telemetry
    from repro.service import (
        CardinalityQuery,
        EntropyQuery,
        ExistenceQuery,
        FrequencyQuery,
        HeavyHitterQuery,
    )
    from repro.traffic.packet import PACKET_FIELDS
    from repro.traffic.trace import Trace

    try:
        topology, fabric, handles = _fabric_build(args)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"fabric: {topology.describe()}")
    _print_placements(handles)

    if args.fabric_command == "status":
        status = fabric.status()
        if args.json:
            print(json.dumps(status, indent=2, default=str))
        else:
            print(f"status: {status['status']}")
            for name, health in status["members"].items():
                print(f"  {name}: {health['status']}")
        fabric.stop()
        return 0

    if getattr(args, "telemetry", None) is not None:
        telemetry.reset()
        telemetry.enable()
    try:
        if args.fabric_command == "serve":
            if "hh" in handles:
                fabric.register_series(
                    "heavy_hitters", HeavyHitterQuery(handles["hh"])
                )
            if "card" in handles:
                fabric.register_series(
                    "cardinality", CardinalityQuery(handles["card"])
                )
            if "entropy" in handles:
                fabric.register_series("entropy", EntropyQuery(handles["entropy"]))

        trace = _fabric_trace(args, topology)

        def print_epoch(sealed) -> None:
            line = f"epoch {sealed.index:>3}: {sealed.packets:>7} pkts merged"
            for name in sorted(sealed.outputs):
                value = sealed.outputs[name]
                if isinstance(value, float):
                    line += f"  {name}={value:.1f}"
                elif isinstance(value, (set, frozenset, list)):
                    line += f"  {name}={len(value)}"
                else:
                    line += f"  {name}={value}"
            degraded = getattr(sealed, "degraded", None)
            if degraded:
                line += f"  [degraded: {', '.join(degraded)}]"
            print(line, flush=True)

        chunk = max(1, args.chunk)
        for start in range(0, len(trace), chunk):
            piece = Trace(
                {f: trace.columns[f][start : start + chunk] for f in PACKET_FIELDS}
            )
            for sealed in fabric.ingest(piece):
                print_epoch(sealed)
        if fabric._epoch_fill:
            print_epoch(fabric.rotate())

        if args.fabric_command == "query":
            kind = args.query_kind
            flow = _parse_flow(args.flow) if args.flow else None
            if kind in ("frequency", "existence") and flow is None:
                print(f"error: --query {kind} needs --flow", file=sys.stderr)
                return 2
            targets = {
                "frequency": ("hh", lambda h: FrequencyQuery(h, flow)),
                "heavy-hitters": ("hh", lambda h: HeavyHitterQuery(h)),
                "cardinality": ("card", CardinalityQuery),
                "entropy": ("entropy", EntropyQuery),
                "existence": ("existence", lambda h: ExistenceQuery(h, flow)),
            }
            preset, make = targets[kind]
            if preset not in handles:
                print(
                    f"error: --query {kind} needs the {preset!r} task preset "
                    f"(got --tasks {args.tasks})",
                    file=sys.stderr,
                )
                return 2
            result = fabric.query(make(handles[preset]), epoch=args.epoch)
            if isinstance(result, (set, frozenset)):
                for f in sorted(result):
                    print(f"  {_format_flow(f)}")
                print(f"{kind}: {len(result)} flows")
            else:
                print(f"{kind}: {result}")

        stats = fabric.stats()
        print(
            f"fabric served {stats['packets_total']} packets across "
            f"{stats['epoch']} epochs on {stats['switches']} switches"
        )
        if getattr(args, "status_out", None) is not None:
            tmp = args.status_out + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(fabric.status(), fh, default=str)
            os.replace(tmp, args.status_out)
            print(f"status -> {args.status_out}")
        if getattr(args, "telemetry", None) is not None:
            snapshot = telemetry.write_artifact(
                args.telemetry, meta={"command": "fabric"}
            )
            print(
                f"telemetry: {len(snapshot['events'])} events -> {args.telemetry}"
            )
    finally:
        fabric.stop()
        if getattr(args, "telemetry", None) is not None:
            telemetry.disable()
    return 0


def cmd_demo() -> int:
    import runpy
    from pathlib import Path

    quickstart = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if quickstart.exists():
        runpy.run_path(str(quickstart), run_name="__main__")
        return 0
    print("examples/quickstart.py not found next to the package", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "shard_runtime", None):
        # Every layer below (controller, service, experiment drivers)
        # resolves the runtime through repro.dataplane.shard_runtime, which
        # reads this variable when no explicit argument is given.
        os.environ["FLYMON_SHARD_RUNTIME"] = args.shard_runtime
    if args.command == "list-algorithms":
        return cmd_list_algorithms()
    if args.command == "list-experiments":
        return cmd_list_experiments()
    if args.command == "run":
        return cmd_run(
            args.experiment, args.full, args.telemetry, args.batch_size, args.workers
        )
    if args.command == "stats":
        return cmd_stats(args.experiment, args.input, args.format)
    if args.command == "report":
        return cmd_report(args.output, args.fast_only)
    if args.command == "verify":
        return cmd_verify(args.rounds, args.seed)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "bench-compare":
        return cmd_bench_compare(args)
    if args.command == "query":
        return cmd_query(args)
    if args.command == "recover":
        return cmd_recover(args)
    if args.command == "fabric":
        return cmd_fabric(args)
    if args.command == "demo":
        return cmd_demo()
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
