"""Command-line interface: explore algorithms and regenerate experiments.

Usage::

    python -m repro list-algorithms
    python -m repro list-experiments
    python -m repro run <experiment> [--full]
    python -m repro demo

``run`` accepts the experiment names printed by ``list-experiments``
(e.g. ``fig13`` or ``table3``) and prints the paper-style rows.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

#: Experiment name -> harness module (each exposes run()/format_result()).
EXPERIMENTS = {
    "fig02": "repro.experiments.fig02_footprint",
    "fig08": "repro.experiments.fig08_stage_usage",
    "table3": "repro.experiments.table3_deployment",
    "fig11": "repro.experiments.fig11_address_translation",
    "fig12a": "repro.experiments.fig12a_forwarding",
    "fig12b": "repro.experiments.fig12b_accuracy",
    "fig13": "repro.experiments.fig13_resources",
    "fig14a": "repro.experiments.fig14a_heavy_hitter",
    "fig14b": "repro.experiments.fig14b_probabilistic",
    "fig14c": "repro.experiments.fig14c_ddos",
    "fig14d": "repro.experiments.fig14d_cardinality",
    "fig14e": "repro.experiments.fig14e_entropy",
    "fig14f": "repro.experiments.fig14f_interarrival",
    "fig14g": "repro.experiments.fig14g_existence",
    "appendix-b": "repro.experiments.appendix_b_collisions",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlyMon reproduction: on-the-fly network measurement.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-algorithms", help="show the built-in CMU algorithms")
    sub.add_parser("list-experiments", help="show the paper tables/figures")

    run = sub.add_parser("run", help="regenerate one paper table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--full",
        action="store_true",
        help="paper-like workload scale (slower) instead of the quick scale",
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a combined report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="path of the markdown report"
    )
    report.add_argument(
        "--fast-only",
        action="store_true",
        help="only the sub-second harnesses (resource/latency models)",
    )

    sub.add_parser("demo", help="run the quickstart scenario")
    return parser


def cmd_list_algorithms() -> int:
    from repro.core.algorithms import ALGORITHM_REGISTRY
    from repro.core.task import MeasurementTask, AttributeSpec
    from repro.traffic.flows import KEY_SRC_IP

    print(f"{'name':<18} {'attribute':<12} {'rows':<5} groups")
    print("-" * 48)
    for name in sorted(ALGORITHM_REGISTRY):
        cls = ALGORITHM_REGISTRY[name]
        # Probe the shape with a representative task.
        kwargs = dict(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
            algorithm=name,
        )
        if name in ("beaucoup",):
            kwargs["attribute"] = AttributeSpec.distinct(KEY_SRC_IP)
            kwargs["threshold"] = 512
        elif name in ("hll", "linear_counting", "odd_sketch"):
            kwargs["attribute"] = AttributeSpec.distinct(KEY_SRC_IP)
        elif name in ("sumax_max", "max_interarrival"):
            kwargs["attribute"] = AttributeSpec.maximum("queue_length")
        elif name in ("bloom", "bloom_naive"):
            kwargs["attribute"] = AttributeSpec.existence()
        try:
            algo = cls(MeasurementTask(**kwargs))
            attribute = kwargs["attribute"].kind.value
            print(
                f"{name:<18} {attribute:<12} {algo.num_rows():<5} "
                f"{algo.groups_needed()}"
            )
        except Exception as exc:  # pragma: no cover - defensive listing
            print(f"{name:<18} <unavailable: {exc}>")
    return 0


def cmd_list_experiments() -> int:
    print(f"{'name':<12} module")
    print("-" * 60)
    for name, module in sorted(EXPERIMENTS.items()):
        print(f"{name:<12} {module}")
    return 0


def cmd_run(experiment: str, full: bool) -> int:
    module = importlib.import_module(EXPERIMENTS[experiment])
    result = module.run(quick=not full)
    print(module.format_result(result))
    return 0


#: Harnesses cheap enough for --fast-only reports.
FAST_EXPERIMENTS = ("fig02", "fig08", "fig11", "fig12a", "fig13", "appendix-b", "table3")


def cmd_report(output: str, fast_only: bool) -> int:
    names = FAST_EXPERIMENTS if fast_only else tuple(sorted(EXPERIMENTS))
    sections = []
    for name in names:
        module = importlib.import_module(EXPERIMENTS[name])
        print(f"running {name} ...", flush=True)
        result = module.run(quick=True)
        sections.append(f"## {name}\n\n```\n{module.format_result(result)}\n```\n")
    with open(output, "w") as fh:
        fh.write("# FlyMon reproduction report\n\n")
        fh.write(
            "Generated by `python -m repro report`. Quick-scale workloads; "
            "see EXPERIMENTS.md for paper-vs-measured discussion.\n\n"
        )
        fh.write("\n".join(sections))
    print(f"wrote {output} ({len(sections)} sections)")
    return 0


def cmd_demo() -> int:
    import runpy
    from pathlib import Path

    quickstart = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if quickstart.exists():
        runpy.run_path(str(quickstart), run_name="__main__")
        return 0
    print("examples/quickstart.py not found next to the package", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-algorithms":
        return cmd_list_algorithms()
    if args.command == "list-experiments":
        return cmd_list_experiments()
    if args.command == "run":
        return cmd_run(args.experiment, args.full)
    if args.command == "report":
        return cmd_report(args.output, args.fast_only)
    if args.command == "demo":
        return cmd_demo()
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
