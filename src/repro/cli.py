"""Command-line interface: explore algorithms and regenerate experiments.

Usage::

    python -m repro list-algorithms
    python -m repro list-experiments
    python -m repro run <experiment> [--full] [--telemetry PATH]
    python -m repro stats [--experiment NAME | --input PATH] [--format FMT]
    python -m repro demo

``run`` accepts the experiment names printed by ``list-experiments``
(e.g. ``fig13`` or ``table3``) and prints the paper-style rows.  With
``--telemetry PATH`` the run executes with telemetry enabled and dumps the
full control-plane event log plus a metrics snapshot to ``PATH`` as JSON.
``stats`` renders such an artifact (or produces a fresh one by running an
experiment) as a summary, Prometheus text, or JSON.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
from typing import List, Optional

#: Experiment name -> harness module (each exposes run()/format_result()).
EXPERIMENTS = {
    "fig02": "repro.experiments.fig02_footprint",
    "fig08": "repro.experiments.fig08_stage_usage",
    "table3": "repro.experiments.table3_deployment",
    "fig11": "repro.experiments.fig11_address_translation",
    "fig12a": "repro.experiments.fig12a_forwarding",
    "fig12b": "repro.experiments.fig12b_accuracy",
    "fig13": "repro.experiments.fig13_resources",
    "fig14a": "repro.experiments.fig14a_heavy_hitter",
    "fig14b": "repro.experiments.fig14b_probabilistic",
    "fig14c": "repro.experiments.fig14c_ddos",
    "fig14d": "repro.experiments.fig14d_cardinality",
    "fig14e": "repro.experiments.fig14e_entropy",
    "fig14f": "repro.experiments.fig14f_interarrival",
    "fig14g": "repro.experiments.fig14g_existence",
    "appendix-b": "repro.experiments.appendix_b_collisions",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlyMon reproduction: on-the-fly network measurement.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-algorithms", help="show the built-in CMU algorithms")
    sub.add_parser("list-experiments", help="show the paper tables/figures")

    run = sub.add_parser("run", help="regenerate one paper table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--full",
        action="store_true",
        help="paper-like workload scale (slower) instead of the quick scale",
    )
    run.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="enable telemetry and dump the event log + metrics snapshot "
        "to PATH as JSON after the run",
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="datapath batch size for trace replays (0 forces the scalar "
        "reference path; default: the engine's built-in size). Both paths "
        "are bit-identical -- this only trades speed",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard trace replays over N parallel datapath workers "
        "(default: FLYMON_WORKERS or 1). Worker register state is merged "
        "exactly, so results stay bit-identical to a sequential replay",
    )

    stats = sub.add_parser(
        "stats", help="telemetry snapshot: events, metrics, utilization"
    )
    stats.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS),
        default="table3",
        help="experiment to run under telemetry (default: table3)",
    )
    stats.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="render an existing --telemetry artifact instead of running",
    )
    stats.add_argument(
        "--format",
        choices=("summary", "prometheus", "json"),
        default="summary",
        help="output format (default: summary)",
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a combined report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="path of the markdown report"
    )
    report.add_argument(
        "--fast-only",
        action="store_true",
        help="only the sub-second harnesses (resource/latency models)",
    )

    verify = sub.add_parser(
        "verify",
        help="audit control-plane invariants: deployment integrity, "
        "fault-injection rollback atomicity, checkpoint round-trip",
    )
    verify.add_argument(
        "--rounds",
        type=int,
        default=None,
        metavar="N",
        help="randomized fault-injection rounds (default: the 'rounds' "
        "option of FLYMON_FAULTS, else 10)",
    )
    verify.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="fault-schedule seed (default: the 'seed' option of "
        "FLYMON_FAULTS, else 2026)",
    )

    sub.add_parser("demo", help="run the quickstart scenario")
    return parser


def cmd_list_algorithms() -> int:
    from repro.core.algorithms import ALGORITHM_REGISTRY
    from repro.core.task import MeasurementTask, AttributeSpec
    from repro.traffic.flows import KEY_SRC_IP

    print(f"{'name':<18} {'attribute':<12} {'rows':<5} groups")
    print("-" * 48)
    for name in sorted(ALGORITHM_REGISTRY):
        cls = ALGORITHM_REGISTRY[name]
        # Probe the shape with a representative task.
        kwargs = dict(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
            algorithm=name,
        )
        if name in ("beaucoup",):
            kwargs["attribute"] = AttributeSpec.distinct(KEY_SRC_IP)
            kwargs["threshold"] = 512
        elif name in ("hll", "linear_counting", "odd_sketch"):
            kwargs["attribute"] = AttributeSpec.distinct(KEY_SRC_IP)
        elif name in ("sumax_max", "max_interarrival"):
            kwargs["attribute"] = AttributeSpec.maximum("queue_length")
        elif name in ("bloom", "bloom_naive"):
            kwargs["attribute"] = AttributeSpec.existence()
        try:
            algo = cls(MeasurementTask(**kwargs))
            attribute = kwargs["attribute"].kind.value
            print(
                f"{name:<18} {attribute:<12} {algo.num_rows():<5} "
                f"{algo.groups_needed()}"
            )
        except Exception as exc:  # pragma: no cover - defensive listing
            print(f"{name:<18} <unavailable: {exc}>")
    return 0


def cmd_list_experiments() -> int:
    print(f"{'name':<12} module")
    print("-" * 60)
    for name, module in sorted(EXPERIMENTS.items()):
        print(f"{name:<12} {module}")
    return 0


def _datapath_probe(num_packets: int = 512) -> None:
    """Drive a small deployment + trace so a telemetry dump always carries
    datapath signals (pipeline/stage/register counters, sampled spans,
    utilization gauges) even for control-plane-only experiments."""
    from repro.core.controller import FlyMonController
    from repro.core.task import AttributeSpec, MeasurementTask
    from repro.traffic import KEY_SRC_IP, zipf_trace

    controller = FlyMonController(num_groups=3)
    handle = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
        )
    )
    trace = zipf_trace(num_flows=128, num_packets=num_packets, seed=7)
    controller.process_trace(trace)
    controller.record_telemetry()
    controller.remove_task(handle)


def _run_with_telemetry(experiment: str, full: bool, path: str):
    """Run an experiment instrumented; dump the artifact to ``path``."""
    from repro import telemetry

    module = importlib.import_module(EXPERIMENTS[experiment])
    telemetry.reset()
    telemetry.enable()
    try:
        result = module.run(quick=not full)
        _datapath_probe()
        snapshot = telemetry.write_artifact(
            path,
            meta={
                "experiment": experiment,
                "scale": "full" if full else "quick",
                "sample_interval": telemetry.TELEMETRY.tracer.sample_interval,
                "datapath_probe": True,
            },
        )
    finally:
        telemetry.disable()
    return module, result, snapshot


def cmd_run(
    experiment: str,
    full: bool,
    telemetry_path: Optional[str] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> int:
    if batch_size is not None:
        # Experiment drivers read FLYMON_BATCH_SIZE via
        # repro.experiments.common.default_batch_size.
        os.environ["FLYMON_BATCH_SIZE"] = str(batch_size)
    if workers is not None:
        # Experiment drivers read FLYMON_WORKERS via
        # repro.experiments.common.default_workers.
        os.environ["FLYMON_WORKERS"] = str(workers)
    if telemetry_path is not None:
        parent = os.path.dirname(telemetry_path) or "."
        if not os.path.isdir(parent):
            print(
                f"error: telemetry path directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
        module, result, snapshot = _run_with_telemetry(
            experiment, full, telemetry_path
        )
        print(module.format_result(result))
        events = len(snapshot["events"])
        print(f"telemetry: {events} events -> {telemetry_path}")
        return 0
    module = importlib.import_module(EXPERIMENTS[experiment])
    result = module.run(quick=not full)
    print(module.format_result(result))
    return 0


def cmd_stats(experiment: str, input_path: Optional[str], format: str) -> int:
    import json

    from repro import telemetry

    if input_path is not None:
        try:
            snapshot = telemetry.load_artifact(input_path)
        except FileNotFoundError:
            print(f"error: no telemetry artifact at {input_path}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {input_path} is not valid JSON: {exc}", file=sys.stderr)
            return 2
    else:
        module = importlib.import_module(EXPERIMENTS[experiment])
        telemetry.reset()
        telemetry.enable()
        try:
            module.run(quick=True)
            _datapath_probe()
            snapshot = telemetry.build_snapshot(
                meta={"experiment": experiment, "scale": "quick"}
            )
        finally:
            telemetry.disable()
    if format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
    elif format == "prometheus":
        print(telemetry.to_prometheus(snapshot["metrics"]), end="")
    else:
        print(telemetry.summarize(snapshot))
    return 0


#: Harnesses cheap enough for --fast-only reports.
FAST_EXPERIMENTS = ("fig02", "fig08", "fig11", "fig12a", "fig13", "appendix-b", "table3")


def cmd_report(output: str, fast_only: bool) -> int:
    names = FAST_EXPERIMENTS if fast_only else tuple(sorted(EXPERIMENTS))
    sections = []
    for name in names:
        module = importlib.import_module(EXPERIMENTS[name])
        print(f"running {name} ...", flush=True)
        result = module.run(quick=True)
        sections.append(f"## {name}\n\n```\n{module.format_result(result)}\n```\n")
    with open(output, "w") as fh:
        fh.write("# FlyMon reproduction report\n\n")
        fh.write(
            "Generated by `python -m repro report`. Quick-scale workloads; "
            "see EXPERIMENTS.md for paper-vs-measured discussion.\n\n"
        )
        fh.write("\n".join(sections))
    print(f"wrote {output} ({len(sections)} sections)")
    return 0


def cmd_verify(rounds: Optional[int] = None, seed: Optional[int] = None) -> int:
    """Audit the control plane's robustness invariants.

    Three phases: (1) deploy every Table 3 algorithm and run the integrity
    auditor; (2) randomized fault-injection rounds asserting every aborted
    reconfiguration rolls back to bit-identical state; (3) a checkpoint /
    restore round-trip.  ``FLYMON_FAULTS="seed=...,rounds=..."`` (options
    only, no armed sites) parameterizes the schedule; flags override.
    """
    import random

    from repro.core.controller import FlyMonController
    from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
    from repro.experiments.table3_deployment import CASES
    from repro.faults import (
        FAULTS,
        FaultSpecError,
        SITE_ALLOC_EXHAUSTED,
        SITE_KEY_DENIED,
        SITE_RULE_APPLY,
        parse_spec,
    )
    from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP

    options = {}
    env_spec = os.environ.get("FLYMON_FAULTS", "")
    if env_spec:
        try:
            _, options = parse_spec(env_spec)
        except FaultSpecError as exc:
            print(f"error: bad FLYMON_FAULTS: {exc}", file=sys.stderr)
            return 2
    try:
        if seed is None:
            seed = int(options.get("seed", 2026))
        if rounds is None:
            rounds = int(options.get("rounds", 10))
    except ValueError as exc:
        print(f"error: bad FLYMON_FAULTS option: {exc}", file=sys.stderr)
        return 2

    problems: List[str] = []
    # The audit owns the injector: env-armed sites would make phase 1 fail
    # by design, so start from a clean slate and restore nothing after.
    FAULTS.reset()

    # Phase 1 -- Table 3 deployment integrity. ------------------------------
    print("phase 1: Table 3 deployment integrity")
    for name, _attribute, kwargs in CASES:
        controller = FlyMonController(
            num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
        )
        task_kwargs = dict(key=KEY_SRC_IP, memory=16_384, algorithm=name)
        task_kwargs.update(kwargs)
        controller.add_task(MeasurementTask(**task_kwargs))
        report = controller.verify_integrity()
        status = "ok" if report.ok else "FAIL"
        print(f"  {name:<16} {report.checks:>3} checks  {status}")
        if not report.ok:
            problems.extend(f"{name}: {p}" for p in report.problems)

    # Phase 2 -- fault-injection rollback atomicity. ------------------------
    print(f"phase 2: rollback atomicity ({rounds} rounds, seed {seed})")
    rng = random.Random(seed)
    controller = FlyMonController(
        num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
    )
    base_attrs = {
        "cms": AttributeSpec.frequency(),
        "bloom": AttributeSpec.existence(),
        "tower": AttributeSpec.frequency(),
    }
    for i, algorithm in enumerate(("cms", "bloom", "tower")):
        controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=base_attrs[algorithm],
                memory=8192,
                algorithm=algorithm,
                filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
            )
        )
    sites = (
        (SITE_RULE_APPLY, 8),
        (SITE_ALLOC_EXHAUSTED, 3),
        (SITE_KEY_DENIED, 1),
    )
    fired = aborted = 0
    for n in range(rounds):
        site, max_hit = sites[rng.randrange(len(sites))]
        hit = rng.randint(1, max_hit)
        before_digest = controller.control_digest()
        before_free = controller.free_buckets()
        FAULTS.reset()  # hit counters are cumulative; each round starts at 0
        before_fired = len(FAULTS.fired())
        FAULTS.arm(site, hit=hit)
        probe = MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            algorithm="cms",
            filter=TaskFilter.of(src_ip=((100 + n) << 24, 8)),
        )
        try:
            handle = controller.add_task(probe)
        except Exception:
            aborted += 1
            if len(FAULTS.fired()) == before_fired:
                problems.append(
                    f"round {n}: add_task failed without an injected fault"
                )
            if controller.control_digest() != before_digest:
                problems.append(f"round {n}: {site}@{hit} left a dirty digest")
            if controller.free_buckets() != before_free:
                problems.append(f"round {n}: {site}@{hit} leaked buckets")
        else:
            # The arm outlived the call (fewer hits than the index) or the
            # injected denial was survivable; undo the probe either way.
            if len(FAULTS.fired()) > before_fired:
                fired += 1
            controller.remove_task(handle)
        FAULTS.disarm()
        report = controller.verify_integrity()
        if not report.ok:
            problems.extend(f"round {n}: {p}" for p in report.problems)
    fired += aborted
    print(f"  {rounds} rounds: {fired} faults fired, {aborted} aborts, "
          f"{rounds - fired} no-fire")

    # Mid-batch filter update: fail on a later rule, expect full revert.
    victim = controller.tasks[0]
    old_filter = victim.task.filter
    before_digest = controller.control_digest()
    FAULTS.reset()
    FAULTS.arm(SITE_RULE_APPLY, hit=2)
    try:
        controller.update_task_filter(
            victim, TaskFilter.of(src_ip=(0xC0000000, 8))
        )
    except Exception:
        if controller.control_digest() != before_digest:
            problems.append("mid-batch filter update left a dirty digest")
        if victim.task.filter != old_filter:
            problems.append("mid-batch filter update left a stale handle")
        print("  mid-batch filter-update abort: state reverted")
    else:
        problems.append("injected mid-batch rule failure did not abort")
    FAULTS.disarm()

    # Phase 3 -- checkpoint round-trip. -------------------------------------
    print("phase 3: checkpoint round-trip")
    state = controller.checkpoint()
    restored = FlyMonController.from_checkpoint(state)
    report = restored.verify_integrity()
    if not report.ok:
        problems.extend(f"restore: {p}" for p in report.problems)
    if restored.free_buckets() != controller.free_buckets():
        problems.append("restore: free-bucket map differs from the original")
    if len(restored.tasks) != len(controller.tasks):
        problems.append("restore: task count differs from the original")
    print(f"  {len(restored.tasks)} tasks restored, {report.checks} checks "
          f"{'ok' if report.ok else 'FAIL'}")

    FAULTS.reset()
    if problems:
        print(f"verify: {len(problems)} problem(s)", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("verify: all invariants hold")
    return 0


def cmd_demo() -> int:
    import runpy
    from pathlib import Path

    quickstart = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if quickstart.exists():
        runpy.run_path(str(quickstart), run_name="__main__")
        return 0
    print("examples/quickstart.py not found next to the package", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-algorithms":
        return cmd_list_algorithms()
    if args.command == "list-experiments":
        return cmd_list_experiments()
    if args.command == "run":
        return cmd_run(
            args.experiment, args.full, args.telemetry, args.batch_size, args.workers
        )
    if args.command == "stats":
        return cmd_stats(args.experiment, args.input, args.format)
    if args.command == "report":
        return cmd_report(args.output, args.fast_only)
    if args.command == "verify":
        return cmd_verify(args.rounds, args.seed)
    if args.command == "demo":
        return cmd_demo()
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
