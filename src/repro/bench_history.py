"""Bench regression ledger: record BENCH_*.json results, compare runs.

The benchmarks under ``benchmarks/`` each persist a machine-readable
``BENCH_<name>.json`` (see ``benchmarks/conftest.py``).  This module turns
those one-shot artifacts into a trackable performance history:

* :func:`machine_info` stamps the environment (cpu count, python, git SHA)
  every result carries, so numbers from different machines are never
  compared as if they were the same box;
* :func:`record_history` appends one ledger line per run to a JSONL
  history file -- the before/after record the roadmap's perf PRs diff
  against;
* :func:`compare` diffs a run against a baseline and flags regressions
  beyond a threshold.  Metrics are classified by name:

  - **direction** -- ``speedup``/``pps``/``throughput`` are
    higher-is-better; ``seconds``/``ms``/``overhead``/``latency``/``error``
    are lower-is-better; anything else is informational only;
  - **kind** -- *ratio* metrics (speedups, overhead percentages) are
    machine-independent and always compared; *absolute* metrics (seconds,
    packets/s) are only compared when the two runs' machine fingerprints
    match, so CI boxes never fail against a laptop-generated baseline.

``repro bench-compare`` (the CLI) and ``benchmarks/history.py`` (the
script form) are thin wrappers over this module.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Default allowed relative slip before a metric counts as regressed.
DEFAULT_THRESHOLD = 0.25

#: Ignore changes smaller than this fraction of the baseline outright
#: (guards tiny-denominator noise on near-zero metrics).
MIN_ABS_DELTA = 1e-9

#: Payload keys that are metadata, never metrics.
_META_KEYS = {
    "name",
    "python",
    "machine",
    "recorded_at",
    "machine_info",
    "params",
    "git_sha",
}

_HIGHER_TOKENS = ("speedup", "pps", "throughput", "packets_per_s")
_LOWER_TOKENS = ("seconds", "ms", "overhead", "latency", "error", "slowdown")
_RATIO_TOKENS = ("speedup", "overhead", "ratio", "fraction", "pct", "slowdown")


def git_sha() -> Optional[str]:
    """Short git SHA of the working tree, or ``None`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha or None


def machine_info() -> Dict[str, object]:
    """The environment fingerprint stamped into every bench artifact."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "git_sha": git_sha(),
    }


def same_machine(a: Optional[Dict], b: Optional[Dict]) -> bool:
    """Whether two fingerprints describe a comparable environment.

    The git SHA is deliberately excluded -- that is the axis being
    compared, not part of the machine identity.
    """
    if not a or not b:
        return False
    keys = ("cpu_count", "python", "machine", "system")
    return all(a.get(k) == b.get(k) for k in keys)


@dataclass(frozen=True)
class MetricSpec:
    """How one metric participates in a comparison."""

    direction: str  # "higher" | "lower"
    kind: str  # "ratio" | "absolute"


def classify(metric: str) -> Optional[MetricSpec]:
    """Map a dotted metric path to its comparison semantics (or ``None``)."""
    lowered = metric.lower()
    direction = None
    if any(token in lowered for token in _HIGHER_TOKENS):
        direction = "higher"
    elif any(token in lowered for token in _LOWER_TOKENS):
        direction = "lower"
    if direction is None:
        return None
    kind = (
        "ratio"
        if any(token in lowered for token in _RATIO_TOKENS)
        else "absolute"
    )
    return MetricSpec(direction=direction, kind=kind)


def flatten_metrics(payload: Dict[str, object]) -> Dict[str, float]:
    """Numeric leaves of a bench payload as dotted paths.

    ``{"speedup": {"workers4": 2.1}, "seconds": 3.2}`` becomes
    ``{"speedup.workers4": 2.1, "seconds": 3.2}``.  Metadata keys and
    non-numeric leaves are skipped.
    """
    flat: Dict[str, float] = {}

    def walk(prefix: str, value: object) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            flat[prefix] = float(value)
            return
        if isinstance(value, dict):
            for key, sub in value.items():
                walk(f"{prefix}.{key}" if prefix else str(key), sub)

    for key, value in payload.items():
        if key in _META_KEYS:
            continue
        walk(str(key), value)
    return flat


def load_results(results_dir) -> Dict[str, Dict[str, object]]:
    """Every ``BENCH_<name>.json`` under a directory, keyed by bench name."""
    results: Dict[str, Dict[str, object]] = {}
    directory = Path(results_dir)
    if not directory.is_dir():
        return results
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        name = str(payload.get("name") or path.stem[len("BENCH_") :])
        results[name] = payload
    return results


# ---------------------------------------------------------------------------
# History ledger
# ---------------------------------------------------------------------------


def build_entry(
    results: Dict[str, Dict[str, object]],
    info: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One ledger line: machine fingerprint + every bench's flat metrics."""
    from datetime import datetime, timezone

    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine_info": info if info is not None else machine_info(),
        "benches": {name: flatten_metrics(p) for name, p in results.items()},
    }


def record_history(results_dir, history_path) -> Dict[str, object]:
    """Append this run's results to the JSONL history ledger."""
    entry = build_entry(load_results(results_dir))
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
    return entry


def load_history(history_path) -> List[Dict[str, object]]:
    path = Path(history_path)
    if not path.is_file():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            continue
    return entries


# ---------------------------------------------------------------------------
# Baseline + comparison
# ---------------------------------------------------------------------------


def write_baseline(results_dir, baseline_path) -> Dict[str, object]:
    """Snapshot the current results as the committed comparison baseline."""
    entry = build_entry(load_results(results_dir))
    path = Path(baseline_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True, default=str) + "\n")
    return entry


def load_baseline(baseline_path) -> Optional[Dict[str, object]]:
    path = Path(baseline_path)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except ValueError:
        return None


@dataclass
class Finding:
    """One metric's baseline-vs-current verdict."""

    bench: str
    metric: str
    baseline: float
    current: float
    direction: str
    kind: str
    delta_pct: float
    regressed: bool
    skipped: Optional[str] = None  # reason this metric was not judged

    def describe(self) -> str:
        arrow = "better" if self.direction == "higher" else "lower is better"
        status = "REGRESSED" if self.regressed else ("skipped" if self.skipped else "ok")
        line = (
            f"{self.bench}:{self.metric} {self.baseline:.4g} -> "
            f"{self.current:.4g} ({self.delta_pct:+.1f}%, {arrow}) [{status}]"
        )
        if self.skipped:
            line += f" ({self.skipped})"
        return line


@dataclass
class CompareReport:
    """The full diff of one run against a baseline."""

    findings: List[Finding] = field(default_factory=list)
    missing_benches: List[str] = field(default_factory=list)
    comparable_machine: bool = False

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare(
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareReport:
    """Diff current BENCH payloads against a baseline entry.

    ``threshold`` is the allowed relative slip (0.25 = 25%).  Ratio metrics
    are always judged; absolute metrics only when the machine fingerprints
    match (otherwise they appear as skipped findings, for visibility).
    """
    report = CompareReport()
    report.comparable_machine = same_machine(
        machine_info(), baseline.get("machine_info")
    )
    base_benches: Dict[str, Dict[str, float]] = baseline.get("benches", {})
    current_flat = {name: flatten_metrics(p) for name, p in current.items()}
    for bench, base_metrics in sorted(base_benches.items()):
        cur_metrics = current_flat.get(bench)
        if cur_metrics is None:
            report.missing_benches.append(bench)
            continue
        for metric, base_value in sorted(base_metrics.items()):
            if metric not in cur_metrics:
                continue
            spec = classify(metric)
            if spec is None:
                continue
            cur_value = cur_metrics[metric]
            if abs(base_value) > MIN_ABS_DELTA:
                delta_pct = 100.0 * (cur_value - base_value) / abs(base_value)
            else:
                delta_pct = 0.0
            finding = Finding(
                bench=bench,
                metric=metric,
                baseline=base_value,
                current=cur_value,
                direction=spec.direction,
                kind=spec.kind,
                delta_pct=delta_pct,
                regressed=False,
            )
            if spec.kind == "absolute" and not report.comparable_machine:
                finding.skipped = "different machine; absolute metric not judged"
            else:
                finding.regressed = _is_regression(
                    base_value, cur_value, spec.direction, threshold
                )
            report.findings.append(finding)
    return report


def _is_regression(
    base: float, cur: float, direction: str, threshold: float
) -> bool:
    if abs(base) <= MIN_ABS_DELTA:
        return False
    if direction == "higher":
        return cur < base * (1.0 - threshold)
    return cur > base * (1.0 + threshold)


def format_report(report: CompareReport, verbose: bool = False) -> str:
    """Human-readable comparison summary (regressions always shown)."""
    lines: List[str] = []
    judged = [f for f in report.findings if not f.skipped]
    skipped = [f for f in report.findings if f.skipped]
    lines.append(
        f"bench-compare: {len(judged)} metric(s) judged, "
        f"{len(skipped)} skipped, {len(report.regressions)} regression(s)"
    )
    if not report.comparable_machine:
        lines.append(
            "note: baseline was recorded on a different machine; "
            "absolute metrics (seconds, pps) were skipped"
        )
    for finding in report.regressions:
        lines.append("  !! " + finding.describe())
    if verbose:
        for finding in report.findings:
            if not finding.regressed:
                lines.append("     " + finding.describe())
    if report.missing_benches:
        lines.append(
            "  missing benches (in baseline, not in this run): "
            + ", ".join(report.missing_benches)
        )
    return "\n".join(lines)
