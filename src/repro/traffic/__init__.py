"""Traffic substrate: packets, flows, synthetic traces, and ground truth.

The paper evaluates on a WIDE 2020 backbone trace that is not redistributable;
per the reproduction's substitution rule we generate seeded synthetic traces
with the statistical properties the experiments depend on (heavy-tailed Zipf
flow sizes, configurable distinct-flow counts, attack scenarios).  Traces are
stored columnar (NumPy) so exact ground truth is vectorized.
"""

from repro.traffic.batch import PacketBatch
from repro.traffic.flows import FlowKeyDef, KEY_5TUPLE, KEY_DST_IP, KEY_IP_PAIR, KEY_SRC_IP
from repro.traffic.generators import (
    ddos_trace,
    portscan_trace,
    superspreader_trace,
    uniform_trace,
    zipf_trace,
)
from repro.traffic.packet import Packet
from repro.traffic.trace import Trace

__all__ = [
    "FlowKeyDef",
    "KEY_5TUPLE",
    "KEY_DST_IP",
    "KEY_IP_PAIR",
    "KEY_SRC_IP",
    "Packet",
    "PacketBatch",
    "Trace",
    "ddos_trace",
    "portscan_trace",
    "superspreader_trace",
    "uniform_trace",
    "zipf_trace",
]
