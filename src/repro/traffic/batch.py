"""Structure-of-arrays packet batches for the vectorized datapath.

A :class:`PacketBatch` is the columnar dual of the per-packet field dict:
one NumPy ``int64`` column per PHV field, all of equal length.  The batch
engine streams whole batches through the pipeline (compression, ternary
classification, address translation, register execution) with one NumPy
kernel per stage instead of one Python dict per packet, which is what makes
trace replays interpreter-bound no longer (see docs/BATCHING.md).

Semantics mirror the scalar datapath exactly: a field absent from a packet
dict reads as 0 via ``fields.get(name, 0)``, so :meth:`PacketBatch.get`
returns a zero column for unknown names.  Columns written by CMUs (the
``_cmu_result/...`` / ``_cmu_p1/...`` PHV exports) are created on demand
with :meth:`ensure` and behave like per-packet PHV words.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.traffic.packet import PACKET_FIELDS


class PacketBatch:
    """A fixed-length batch of packets stored column-per-field.

    Columns are ``int64`` arrays; the constructor normalizes dtypes but does
    not copy arrays that already match.  Batches are mutable in the same way
    the scalar PHV dict is: stages add or overwrite columns as the batch
    traverses the pipeline.
    """

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, np.ndarray], length: Optional[int] = None) -> None:
        self._columns: Dict[str, np.ndarray] = {}
        self._length = length
        for name, col in columns.items():
            arr = np.asarray(col, dtype=np.int64)
            if self._length is None:
                self._length = len(arr)
            elif len(arr) != self._length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {self._length}"
                )
            self._columns[name] = arr
        if self._length is None:
            self._length = 0

    # -- construction -------------------------------------------------------

    @staticmethod
    def from_fields_dicts(dicts: Sequence[Mapping[str, int]]) -> "PacketBatch":
        """Build a batch from per-packet field dicts (the scalar layout)."""
        names: List[str] = []
        seen = set()
        for fields in dicts:
            for name in fields:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        cols = {
            name: np.array([int(f.get(name, 0)) for f in dicts], dtype=np.int64)
            for name in names
        }
        return PacketBatch(cols, length=len(dicts))

    @staticmethod
    def empty() -> "PacketBatch":
        return PacketBatch({}, length=0)

    # -- column access ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def get(self, name: str) -> np.ndarray:
        """The column for ``name`` -- zeros if the field was never written
        (matching ``fields.get(name, 0)`` on the scalar path).

        The zero column is *not* stored; use :meth:`ensure` for a column the
        caller will write to.
        """
        col = self._columns.get(name)
        if col is None:
            return np.zeros(self._length, dtype=np.int64)
        return col

    def ensure(self, name: str) -> np.ndarray:
        """Get-or-create a writable zero-initialized column."""
        col = self._columns.get(name)
        if col is None:
            col = np.zeros(self._length, dtype=np.int64)
            self._columns[name] = col
        return col

    def set(self, name: str, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=np.int64)
        if len(arr) != self._length:
            raise ValueError(
                f"column {name!r} has length {len(arr)}, expected {self._length}"
            )
        self._columns[name] = arr

    # -- scalar interop -----------------------------------------------------

    def iter_fields(self) -> Iterator[Dict[str, int]]:
        """Yield one mutable per-packet dict per row (scalar-path layout).

        Only materializes fields that exist as columns, exactly like the
        scalar PHV dict only holds fields some stage wrote.
        """
        names = list(self._columns)
        cols = [self._columns[n] for n in names]
        for row in zip(*cols) if names else iter([()] * self._length):
            yield dict(zip(names, (int(v) for v in row)))

    def to_fields_dicts(self) -> List[Dict[str, int]]:
        return list(self.iter_fields())

    def select(self, indices: np.ndarray) -> "PacketBatch":
        """A new batch holding only the given rows (copies)."""
        indices = np.asarray(indices)
        return PacketBatch(
            {name: col[indices] for name, col in self._columns.items()},
            length=len(indices),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketBatch(n={self._length}, columns={len(self._columns)})"


def batches_from_columns(
    columns: Mapping[str, np.ndarray], batch_size: int
) -> Iterator[PacketBatch]:
    """Slice equal-length columns into consecutive :class:`PacketBatch`es.

    Slices are NumPy views, so building batches from a
    :class:`repro.traffic.trace.Trace` copies no packet data.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    total = len(next(iter(columns.values()))) if columns else 0
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        yield PacketBatch(
            {name: col[start:stop] for name, col in columns.items()},
            length=stop - start,
        )


def batch_from_trace_columns(columns: Mapping[str, np.ndarray]) -> PacketBatch:
    """One batch spanning a whole columnar trace (views, no copies)."""
    return PacketBatch({name: columns[name] for name in PACKET_FIELDS})
