"""Columnar packet traces with epoching and ground-truth helpers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.traffic import flows as flows_mod
from repro.traffic.flows import FlowKeyDef
from repro.traffic.packet import PACKET_FIELDS, Packet


class Trace:
    """An ordered packet trace stored as NumPy columns.

    Columns are keyed by :data:`repro.traffic.packet.PACKET_FIELDS`; every
    column has the same length.  Iteration yields per-packet field dicts
    (cheap enough for the per-packet CMU datapath) or :class:`Packet` views.
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        missing = [f for f in PACKET_FIELDS if f not in columns]
        if missing:
            raise ValueError(f"trace is missing columns: {missing}")
        lengths = {len(columns[f]) for f in PACKET_FIELDS}
        if len(lengths) != 1:
            raise ValueError(f"column length mismatch: {lengths}")
        self.columns: Dict[str, np.ndarray] = {
            f: np.asarray(columns[f], dtype=np.int64) for f in PACKET_FIELDS
        }

    # -- construction -------------------------------------------------------

    @staticmethod
    def from_packets(packets: List[Packet]) -> "Trace":
        cols = {f: np.array([getattr(p, f) for p in packets], dtype=np.int64)
                for f in PACKET_FIELDS}
        return Trace(cols)

    @staticmethod
    def empty() -> "Trace":
        return Trace({f: np.array([], dtype=np.int64) for f in PACKET_FIELDS})

    @staticmethod
    def concatenate(traces: List["Trace"]) -> "Trace":
        if not traces:
            return Trace.empty()
        cols = {
            f: np.concatenate([t.columns[f] for t in traces]) for f in PACKET_FIELDS
        }
        return Trace(cols)

    def sorted_by_time(self) -> "Trace":
        order = np.argsort(self.columns["timestamp"], kind="stable")
        return self.select(order)

    def select(self, indices: np.ndarray) -> "Trace":
        return Trace({f: self.columns[f][indices] for f in PACKET_FIELDS})

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns["timestamp"])

    def __iter__(self) -> Iterator[Dict[str, int]]:
        return self.iter_fields()

    def iter_fields(self) -> Iterator[Dict[str, int]]:
        """Yield one mutable ``{field: value}`` dict per packet, in order."""
        cols = [self.columns[f] for f in PACKET_FIELDS]
        for row in zip(*cols):
            yield dict(zip(PACKET_FIELDS, (int(v) for v in row)))

    def iter_batches(self, batch_size: int):
        """Yield consecutive :class:`repro.traffic.batch.PacketBatch` slices.

        Batches wrap column views (no packet data is copied); the batched
        datapath consumes these directly.
        """
        from repro.traffic.batch import batches_from_columns

        return batches_from_columns(self.columns, batch_size)

    def as_batch(self):
        """The whole trace as one :class:`PacketBatch` (column views)."""
        from repro.traffic.batch import batch_from_trace_columns

        return batch_from_trace_columns(self.columns)

    def iter_packets(self) -> Iterator[Packet]:
        for fields in self.iter_fields():
            yield Packet(**fields)

    def packet(self, i: int) -> Packet:
        return Packet(**{f: int(self.columns[f][i]) for f in PACKET_FIELDS})

    @property
    def duration_us(self) -> int:
        ts = self.columns["timestamp"]
        return int(ts.max() - ts.min()) if len(ts) else 0

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` archive."""
        np.savez_compressed(path, **self.columns)

    @staticmethod
    def load(path) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            return Trace({f: data[f] for f in PACKET_FIELDS})

    # -- epoching --------------------------------------------------------------

    def split_epochs(self, num_epochs: int) -> List["Trace"]:
        """Split into ``num_epochs`` equal time windows (by timestamp)."""
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        if len(self) == 0:
            return [Trace.empty() for _ in range(num_epochs)]
        ts = self.columns["timestamp"]
        lo, hi = ts.min(), ts.max() + 1
        edges = np.linspace(lo, hi, num_epochs + 1)
        out = []
        for i in range(num_epochs):
            mask = (ts >= edges[i]) & (ts < edges[i + 1])
            out.append(self.select(np.nonzero(mask)[0]))
        return out

    # -- ground truth ------------------------------------------------------------

    def flow_sizes(self, key: FlowKeyDef, by_bytes: bool = False) -> Dict[Tuple[int, ...], int]:
        weight = self.columns["pkt_bytes"] if by_bytes else None
        return flows_mod.flow_sizes(self.columns, key, weight)

    def distinct_counts(self, key: FlowKeyDef, param: FlowKeyDef) -> Dict[Tuple[int, ...], int]:
        return flows_mod.distinct_counts(self.columns, key, param)

    def max_values(self, key: FlowKeyDef, param_field: str) -> Dict[Tuple[int, ...], int]:
        return flows_mod.max_values(self.columns, key, self.columns[param_field])

    def cardinality(self, key: FlowKeyDef) -> int:
        return flows_mod.cardinality(self.columns, key)

    def heavy_hitters(self, key: FlowKeyDef, threshold: int, by_bytes: bool = False) -> set:
        return flows_mod.heavy_hitters(self.flow_sizes(key, by_bytes), threshold)

    def entropy(self, key: FlowKeyDef) -> float:
        return flows_mod.empirical_entropy(self.flow_sizes(key).values())

    def max_interarrival(self, key: FlowKeyDef) -> Dict[Tuple[int, ...], int]:
        return flows_mod.max_interarrival(self.columns, key)

    def filter_mask(self, mask: np.ndarray) -> "Trace":
        return self.select(np.nonzero(mask)[0])
