"""Packet model.

A packet carries the candidate-key header fields (5-tuple + timestamp) and
the standard metadata FlyMon exposes as CMU parameters (packet size, queue
length, queue delay).  Field names match :mod:`repro.dataplane.phv` specs so
packets can be fed straight into hash units and match tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Field order used when packing packets to/from columnar storage.
PACKET_FIELDS = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "timestamp",
    "pkt_bytes",
    "queue_length",
    "queue_delay",
)


@dataclass(frozen=True)
class Packet:
    """One packet's header fields and data-plane metadata.

    ``timestamp`` is in microseconds from the start of the trace (wraps at 32
    bits like a hardware timestamp would).  ``queue_length`` and
    ``queue_delay`` model the egress-queue metadata Tofino exposes.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6
    timestamp: int = 0
    pkt_bytes: int = 64
    queue_length: int = 0
    queue_delay: int = 0

    def fields(self) -> Dict[str, int]:
        """Mutable field mapping for pipeline traversal (fresh dict)."""
        return {
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
            "protocol": self.protocol,
            "timestamp": self.timestamp,
            "pkt_bytes": self.pkt_bytes,
            "queue_length": self.queue_length,
            "queue_delay": self.queue_delay,
        }

    def five_tuple(self) -> tuple:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)


def ip(a: int, b: int, c: int, d: int) -> int:
    """Dotted-quad helper: ``ip(10, 0, 0, 1) == 0x0A000001``."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError(f"octet {octet} out of range")
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ip(value: int) -> str:
    """Inverse of :func:`ip` for logs and examples."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
