"""Egress-queue simulation: realistic queue_length / queue_delay metadata.

The Max-attribute tasks (congestion detection, HOL blocking -- Table 1)
consume per-packet queue depth and delay, which Tofino exposes as intrinsic
metadata.  The generators fill these columns with a synthetic load pattern;
this module instead *derives* them from the packet arrival process with a
fluid single-server queue: packets drain at ``drain_bytes_per_us``, each
arrival observes the backlog ahead of it.

Use :func:`apply_queue_model` to replace a trace's queue columns with the
simulated ones -- experiments then measure congestion that is actually
caused by the traffic's burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.trace import Trace


@dataclass(frozen=True)
class QueueModel:
    """A fluid FIFO egress queue.

    ``drain_bytes_per_us`` is the service rate (e.g. 12.5 B/us = 100 Mb/s;
    1250 B/us = 10 Gb/s).  ``capacity_bytes`` bounds the backlog (tail-drop
    depth); queue length saturates there, as a real buffer would.
    """

    drain_bytes_per_us: float = 125.0  # 1 Gb/s
    capacity_bytes: int = 1 << 20

    def simulate(self, timestamps: np.ndarray, pkt_bytes: np.ndarray):
        """Per-packet ``(queue_length_bytes, queue_delay_us)`` at arrival.

        The queue length a packet records is the backlog *in front of it*;
        its queueing delay is that backlog divided by the drain rate.
        """
        if self.drain_bytes_per_us <= 0:
            raise ValueError("drain rate must be positive")
        n = len(timestamps)
        lengths = np.zeros(n, dtype=np.int64)
        delays = np.zeros(n, dtype=np.int64)
        backlog = 0.0
        last_ts = int(timestamps[0]) if n else 0
        for i in range(n):
            ts = int(timestamps[i])
            backlog = max(0.0, backlog - (ts - last_ts) * self.drain_bytes_per_us)
            last_ts = ts
            lengths[i] = int(min(backlog, self.capacity_bytes))
            delays[i] = int(lengths[i] / self.drain_bytes_per_us)
            if backlog + pkt_bytes[i] <= self.capacity_bytes:
                backlog += float(pkt_bytes[i])
            # else: tail drop -- the packet still traverses the pipeline and
            # is observed by measurement, but adds no backlog.
        return lengths, delays


def apply_queue_model(trace: Trace, model: QueueModel = QueueModel()) -> Trace:
    """A copy of ``trace`` whose queue columns come from the queue model.

    The trace must be time-sorted (generator output is).
    """
    ts = trace.columns["timestamp"]
    if len(ts) > 1 and (np.diff(ts) < 0).any():
        raise ValueError("trace must be sorted by timestamp")
    lengths, delays = model.simulate(ts, trace.columns["pkt_bytes"])
    columns = dict(trace.columns)
    columns["queue_length"] = lengths
    columns["queue_delay"] = delays
    return Trace(columns)
