"""Flow keys and exact ground truth.

A *flow key* is any combination of (prefixes of) the candidate header fields
(§2.1): ``SrcIP``, ``SrcIP/24``, ``IP-pair``, 5-tuple, ...  This module
defines the key abstraction shared by FlyMon's control plane and the ground
truth used to score accuracy, and computes exact per-key statistics over
columnar traces with vectorized NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

#: Bit widths of the candidate key fields (matches repro.dataplane.phv).
FIELD_WIDTHS = {
    "src_ip": 32,
    "dst_ip": 32,
    "src_port": 16,
    "dst_port": 16,
    "protocol": 8,
    "timestamp": 32,
}


@dataclass(frozen=True)
class FlowKeyDef:
    """A flow-key definition: ordered (field, prefix_bits) pairs.

    ``FlowKeyDef.of("src_ip")`` is per-source-IP; ``FlowKeyDef.of(("src_ip",
    24))`` is SrcIP/24; ``FlowKeyDef.of("src_ip", "dst_ip")`` is the IP pair.
    """

    parts: Tuple[Tuple[str, int], ...]

    @staticmethod
    def of(*fields) -> "FlowKeyDef":
        parts = []
        for f in fields:
            if isinstance(f, str):
                name, bits = f, FIELD_WIDTHS[f]
            else:
                name, bits = f
            width = FIELD_WIDTHS.get(name)
            if width is None:
                raise KeyError(f"unknown key field {name!r}")
            if not 0 < bits <= width:
                raise ValueError(f"prefix of {bits} bits invalid for {name!r}")
            parts.append((name, int(bits)))
        if not parts:
            raise ValueError("a flow key needs at least one field")
        return FlowKeyDef(tuple(parts))

    @property
    def total_bits(self) -> int:
        return sum(bits for _, bits in self.parts)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.parts)

    def mask_spec(self) -> Dict[str, int]:
        """``{field: prefix_bits}`` -- the hash-mask shape for this key."""
        return dict(self.parts)

    def extract(self, fields: Mapping[str, int]) -> Tuple[int, ...]:
        """The key value of one packet (tuple of masked field values)."""
        out = []
        for name, bits in self.parts:
            width = FIELD_WIDTHS[name]
            out.append((int(fields[name]) & ((1 << width) - 1)) >> (width - bits))
        return tuple(out)

    def extract_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Key values for a whole trace: shape ``(n, len(parts))`` int64."""
        cols = []
        for name, bits in self.parts:
            width = FIELD_WIDTHS[name]
            col = columns[name].astype(np.int64) & ((1 << width) - 1)
            cols.append(col >> (width - bits))
        return np.stack(cols, axis=1)

    def describe(self) -> str:
        parts = []
        for name, bits in self.parts:
            full = FIELD_WIDTHS[name]
            parts.append(name if bits == full else f"{name}/{bits}")
        return "+".join(parts)


#: Common keys used throughout the paper's examples.
KEY_SRC_IP = FlowKeyDef.of("src_ip")
KEY_DST_IP = FlowKeyDef.of("dst_ip")
KEY_IP_PAIR = FlowKeyDef.of("src_ip", "dst_ip")
KEY_5TUPLE = FlowKeyDef.of("src_ip", "dst_ip", "src_port", "dst_port", "protocol")


def _flow_ids(key_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Map per-packet key rows to dense flow ids.

    Returns ``(unique_rows, inverse)`` where ``inverse[i]`` is the flow id of
    packet ``i``.
    """
    return np.unique(key_values, axis=0, return_inverse=True)


def _keys_as_tuples(unique_rows: np.ndarray) -> list:
    return [tuple(int(v) for v in row) for row in unique_rows]


def flow_sizes(
    columns: Mapping[str, np.ndarray],
    key: FlowKeyDef,
    weight: Optional[np.ndarray] = None,
) -> Dict[Tuple[int, ...], int]:
    """Exact per-flow frequency: packet counts, or sums of ``weight``."""
    uniq, inverse = _flow_ids(key.extract_columns(columns))
    if weight is None:
        counts = np.bincount(inverse, minlength=len(uniq))
    else:
        counts = np.bincount(inverse, weights=weight.astype(np.float64), minlength=len(uniq))
    return dict(zip(_keys_as_tuples(uniq), (int(c) for c in counts)))


def distinct_counts(
    columns: Mapping[str, np.ndarray],
    key: FlowKeyDef,
    param: FlowKeyDef,
) -> Dict[Tuple[int, ...], int]:
    """Exact per-key distinct count of the parameter (e.g. DDoS victims)."""
    combined = np.concatenate(
        [key.extract_columns(columns), param.extract_columns(columns)], axis=1
    )
    pairs = np.unique(combined, axis=0)
    key_part = pairs[:, : len(key.parts)]
    uniq, inverse = _flow_ids(key_part)
    counts = np.bincount(inverse, minlength=len(uniq))
    return dict(zip(_keys_as_tuples(uniq), (int(c) for c in counts)))


def max_values(
    columns: Mapping[str, np.ndarray],
    key: FlowKeyDef,
    param: np.ndarray,
) -> Dict[Tuple[int, ...], int]:
    """Exact per-flow maximum of a metadata column (e.g. queue length)."""
    uniq, inverse = _flow_ids(key.extract_columns(columns))
    out = np.zeros(len(uniq), dtype=np.int64)
    np.maximum.at(out, inverse, param.astype(np.int64))
    return dict(zip(_keys_as_tuples(uniq), (int(v) for v in out)))


def cardinality(columns: Mapping[str, np.ndarray], key: FlowKeyDef) -> int:
    """Exact number of distinct flows."""
    return len(np.unique(key.extract_columns(columns), axis=0))


def heavy_hitters(
    sizes: Mapping[Tuple[int, ...], int], threshold: int
) -> set:
    """Flows whose frequency meets or exceeds ``threshold``."""
    return {k for k, v in sizes.items() if v >= threshold}


def flow_size_distribution(sizes: Iterable[int]) -> Dict[int, int]:
    """``{flow_size: number_of_flows}`` -- MRAC's target distribution."""
    values, counts = np.unique(np.fromiter(sizes, dtype=np.int64), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def empirical_entropy(sizes: Iterable[int]) -> float:
    """Shannon entropy of the flow-size distribution (natural log).

    ``H = -sum_i (f_i / N) * ln(f_i / N)`` over flows ``i`` -- the quantity
    Figure 14e estimates from the MRAC / UnivMon summaries.
    """
    arr = np.fromiter(sizes, dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        return 0.0
    total = arr.sum()
    p = arr / total
    return float(-(p * np.log(p)).sum())


def max_interarrival(
    columns: Mapping[str, np.ndarray],
    key: FlowKeyDef,
) -> Dict[Tuple[int, ...], int]:
    """Exact per-flow maximum packet inter-arrival time (0 for single-packet
    flows), computed from the ``timestamp`` column."""
    key_rows = key.extract_columns(columns)
    uniq, inverse = _flow_ids(key_rows)
    ts = columns["timestamp"].astype(np.int64)
    order = np.lexsort((ts, inverse))
    sorted_flow = inverse[order]
    sorted_ts = ts[order]
    gaps = np.diff(sorted_ts)
    same_flow = sorted_flow[1:] == sorted_flow[:-1]
    out = np.zeros(len(uniq), dtype=np.int64)
    if same_flow.any():
        np.maximum.at(out, sorted_flow[1:][same_flow], gaps[same_flow])
    return dict(zip(_keys_as_tuples(uniq), (int(v) for v in out)))
