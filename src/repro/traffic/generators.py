"""Seeded synthetic trace generators.

These replace the WIDE 2020 trace used by the paper (not redistributable).
The accuracy experiments depend on flow-count and skew, not trace identity, so
each generator documents the statistical property it provides:

* :func:`zipf_trace` -- heavy-tailed per-flow packet counts (Zipf ``alpha``),
  the backbone-like workload for frequency/heavy-hitter/entropy experiments.
* :func:`uniform_trace` -- equal-size flows, the adversarial case for
  counter sketches.
* :func:`ddos_trace` -- a few victim destinations contacted by many distinct
  sources (multi-key distinct counting, Fig. 14c).
* :func:`superspreader_trace` -- a few sources contacting many destinations
  (worm detection).
* :func:`portscan_trace` -- IP pairs touching many distinct destination ports.

All generators are deterministic given ``seed`` and return time-sorted
:class:`~repro.traffic.trace.Trace` objects with microsecond timestamps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.traffic.trace import Trace

_PORT_LO, _PORT_HI = 1024, 65535


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _random_hosts(rng: np.random.Generator, n: int, prefix: int = 0x0A000000) -> np.ndarray:
    """Distinct host addresses under a /8 prefix (defaults to 10.0.0.0/8)."""
    # 24 random bits under the prefix; sampling without replacement keeps
    # flows distinct.
    space = 1 << 24
    if n > space:
        raise ValueError(f"cannot draw {n} distinct hosts from a /8")
    hosts = rng.choice(space, size=n, replace=False).astype(np.int64)
    return hosts | prefix


def _zipf_sizes(rng: np.random.Generator, num_flows: int, num_packets: int, alpha: float) -> np.ndarray:
    """Per-flow packet counts: Zipf-ranked, scaled to sum ~= num_packets."""
    ranks = np.arange(1, num_flows + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    sizes = np.maximum(1, np.round(weights * num_packets)).astype(np.int64)
    rng.shuffle(sizes)
    return sizes


def _assemble(
    rng: np.random.Generator,
    src: np.ndarray,
    dst: np.ndarray,
    sport: np.ndarray,
    dport: np.ndarray,
    proto: np.ndarray,
    sizes: np.ndarray,
    duration_us: int,
    start_us: int,
) -> Trace:
    """Expand per-flow tuples into interleaved, time-stamped packets."""
    flow_ids = np.repeat(np.arange(len(sizes)), sizes)
    rng.shuffle(flow_ids)
    n = len(flow_ids)
    timestamps = np.sort(rng.integers(0, max(duration_us, 1), size=n)) + start_us
    pkt_bytes = np.clip(
        rng.lognormal(mean=6.0, sigma=0.8, size=n).astype(np.int64), 64, 1500
    )
    # Queue metadata: a slow sinusoidal load pattern plus noise, so Max
    # attributes have non-trivial per-flow answers.
    phase = 2 * np.pi * (timestamps - start_us) / max(duration_us, 1)
    queue_length = (
        2000 + 1500 * np.sin(phase) + rng.normal(0, 300, size=n)
    ).clip(0, 2**20).astype(np.int64)
    queue_delay = (queue_length * 0.64).astype(np.int64)  # ~cell drain time
    return Trace(
        {
            "src_ip": src[flow_ids],
            "dst_ip": dst[flow_ids],
            "src_port": sport[flow_ids],
            "dst_port": dport[flow_ids],
            "protocol": proto[flow_ids],
            "timestamp": timestamps.astype(np.int64),
            "pkt_bytes": pkt_bytes,
            "queue_length": queue_length,
            "queue_delay": queue_delay,
        }
    )


def zipf_trace(
    num_flows: int = 10_000,
    num_packets: int = 100_000,
    alpha: float = 1.1,
    duration_us: int = 1_000_000,
    start_us: int = 0,
    seed: Optional[int] = 0,
    src_prefix: int = 0x0A000000,
    dst_prefix: int = 0x14000000,
) -> Trace:
    """A WIDE-like trace: ``num_flows`` distinct 5-tuples, Zipf flow sizes.

    ``src_prefix``/``dst_prefix`` place hosts under specific /8s so filtered
    tasks (e.g. Fig. 12b's task A on 10.0.0.0/8) see controllable shares.
    """
    rng = _rng(seed)
    src = _random_hosts(rng, num_flows, src_prefix)
    dst = _random_hosts(rng, num_flows, dst_prefix)
    sport = rng.integers(_PORT_LO, _PORT_HI, size=num_flows).astype(np.int64)
    dport = rng.integers(_PORT_LO, _PORT_HI, size=num_flows).astype(np.int64)
    proto = rng.choice([6, 17], size=num_flows, p=[0.85, 0.15]).astype(np.int64)
    sizes = _zipf_sizes(rng, num_flows, num_packets, alpha)
    return _assemble(rng, src, dst, sport, dport, proto, sizes, duration_us, start_us)


def uniform_trace(
    num_flows: int = 10_000,
    packets_per_flow: int = 10,
    duration_us: int = 1_000_000,
    start_us: int = 0,
    seed: Optional[int] = 0,
) -> Trace:
    """Equal-size flows: the hard case for frequency sketches."""
    rng = _rng(seed)
    src = _random_hosts(rng, num_flows, 0x0A000000)
    dst = _random_hosts(rng, num_flows, 0x14000000)
    sport = rng.integers(_PORT_LO, _PORT_HI, size=num_flows).astype(np.int64)
    dport = rng.integers(_PORT_LO, _PORT_HI, size=num_flows).astype(np.int64)
    proto = np.full(num_flows, 6, dtype=np.int64)
    sizes = np.full(num_flows, packets_per_flow, dtype=np.int64)
    return _assemble(rng, src, dst, sport, dport, proto, sizes, duration_us, start_us)


def ddos_trace(
    num_victims: int = 20,
    sources_per_victim: int = 2_000,
    background_flows: int = 5_000,
    background_packets: int = 50_000,
    duration_us: int = 1_000_000,
    seed: Optional[int] = 0,
) -> Trace:
    """DDoS-victim workload: each victim DstIP sees many distinct SrcIPs.

    Victims receive one packet from each of ``sources_per_victim`` distinct
    sources; the rest is a Zipf background.  Ground truth for Fig. 14c is
    ``trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)``.
    """
    rng = _rng(seed)
    victims = _random_hosts(rng, num_victims, 0x14000000)
    attack_n = num_victims * sources_per_victim
    attack_src = _random_hosts(rng, attack_n, 0x0A000000)
    attack_dst = np.repeat(victims, sources_per_victim)
    sport = rng.integers(_PORT_LO, _PORT_HI, size=attack_n).astype(np.int64)
    dport = np.full(attack_n, 80, dtype=np.int64)
    proto = np.full(attack_n, 6, dtype=np.int64)
    sizes = np.ones(attack_n, dtype=np.int64)
    attack = _assemble(rng, attack_src, attack_dst, sport, dport, proto, sizes, duration_us, 0)
    background = zipf_trace(
        num_flows=background_flows,
        num_packets=background_packets,
        duration_us=duration_us,
        seed=None if seed is None else seed + 1,
    )
    return Trace.concatenate([attack, background]).sorted_by_time()


def superspreader_trace(
    num_spreaders: int = 10,
    contacts_per_spreader: int = 3_000,
    background_flows: int = 5_000,
    background_packets: int = 50_000,
    duration_us: int = 1_000_000,
    seed: Optional[int] = 0,
) -> Trace:
    """Worm-like workload: a few SrcIPs contact many distinct DstIPs."""
    rng = _rng(seed)
    spreaders = _random_hosts(rng, num_spreaders, 0x0A000000)
    n = num_spreaders * contacts_per_spreader
    src = np.repeat(spreaders, contacts_per_spreader)
    dst = _random_hosts(rng, n, 0x14000000)
    sport = rng.integers(_PORT_LO, _PORT_HI, size=n).astype(np.int64)
    dport = rng.integers(_PORT_LO, _PORT_HI, size=n).astype(np.int64)
    proto = np.full(n, 6, dtype=np.int64)
    sizes = np.ones(n, dtype=np.int64)
    scan = _assemble(rng, src, dst, sport, dport, proto, sizes, duration_us, 0)
    background = zipf_trace(
        num_flows=background_flows,
        num_packets=background_packets,
        duration_us=duration_us,
        seed=None if seed is None else seed + 1,
    )
    return Trace.concatenate([scan, background]).sorted_by_time()


def portscan_trace(
    num_scanners: int = 10,
    ports_per_scan: int = 1_000,
    background_flows: int = 5_000,
    background_packets: int = 50_000,
    duration_us: int = 1_000_000,
    seed: Optional[int] = 0,
) -> Trace:
    """Port-scan workload: IP pairs touching many distinct DstPorts."""
    rng = _rng(seed)
    scanners = _random_hosts(rng, num_scanners, 0x0A000000)
    targets = _random_hosts(rng, num_scanners, 0x14000000)
    n = num_scanners * ports_per_scan
    src = np.repeat(scanners, ports_per_scan)
    dst = np.repeat(targets, ports_per_scan)
    dport = np.concatenate(
        [rng.choice(65536, size=ports_per_scan, replace=False) for _ in range(num_scanners)]
    ).astype(np.int64)
    sport = rng.integers(_PORT_LO, _PORT_HI, size=n).astype(np.int64)
    proto = np.full(n, 6, dtype=np.int64)
    sizes = np.ones(n, dtype=np.int64)
    scan = _assemble(rng, src, dst, sport, dport, proto, sizes, duration_us, 0)
    background = zipf_trace(
        num_flows=background_flows,
        num_packets=background_packets,
        duration_us=duration_us,
        seed=None if seed is None else seed + 1,
    )
    return Trace.concatenate([scan, background]).sorted_by_time()
