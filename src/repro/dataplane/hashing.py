"""Hash units, including Tofino-style dynamic hashing.

Tofino exposes a limited pool of hash distribution units per MAU stage.  SDE
9.7.0 added *dynamic hashing* (``tna_dyn_hashing``): the unit's input is wired
to a fixed candidate field set at compile time, but the control plane can
install masks at runtime selecting which fields (or field prefixes)
participate in the calculation.  FlyMon's compression stage is built on this
feature, so the model reproduces it faithfully:

* :class:`HashFunction` -- one seeded 32-bit hash (a stand-in for one CRC
  polynomial configuration).
* :class:`DynamicHashUnit` -- a hash unit bound to an ordered candidate field
  set, with a runtime-reconfigurable :class:`HashMask`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.dataplane.phv import FieldSpec

HASH_WIDTH = 32
HASH_MASK = (1 << HASH_WIDTH) - 1


def _fmix32(h: int) -> int:
    """Murmur3 finalizer; breaks the linearity of CRC for independence."""
    h &= HASH_MASK
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & HASH_MASK
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & HASH_MASK
    h ^= h >> 16
    return h


class HashFunction:
    """A seeded 32-bit hash over byte strings.

    Different seeds model different CRC polynomial configurations; outputs for
    distinct seeds behave as independent hash functions for sketching
    purposes.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed) & HASH_MASK
        self._seed_bytes = struct.pack("<I", self.seed)

    def hash_bytes(self, data: bytes) -> int:
        return _fmix32(zlib.crc32(data, self.seed) ^ self.seed)

    def hash_int(self, value: int, width: int = 64) -> int:
        nbytes = max(1, (width + 7) // 8)
        return self.hash_bytes(int(value).to_bytes(nbytes, "little", signed=False))

    def __repr__(self) -> str:
        return f"HashFunction(seed={self.seed:#010x})"


def hash_family(count: int, base_seed: int = 0xF17E50) -> list:
    """A list of ``count`` independent :class:`HashFunction` objects."""
    return [HashFunction(base_seed + 0x9E3779B9 * i) for i in range(count)]


class _CrcAdapter:
    """Adapts a :class:`repro.dataplane.crc.Crc32` to the hash interface."""

    def __init__(self, crc) -> None:
        self._crc = crc
        self.seed = crc.poly

    def hash_bytes(self, data: bytes) -> int:
        return self._crc.compute(data)


@dataclass(frozen=True)
class HashMask:
    """Runtime configuration of a dynamic hash unit.

    ``field_bits`` maps field name -> number of most-significant bits of that
    field to include (``width`` for the full field, smaller values model
    prefix keys like ``SrcIP/24``).  Fields absent from the mapping do not
    participate.  An empty mask means the unit contributes nothing (used for
    unconfigured units).
    """

    field_bits: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(mapping: Mapping[str, int]) -> "HashMask":
        return HashMask(tuple(sorted(mapping.items())))

    @staticmethod
    def full_fields(names: Iterable[str], specs: Mapping[str, FieldSpec]) -> "HashMask":
        return HashMask.of({name: specs[name].width for name in names})

    def as_dict(self) -> Dict[str, int]:
        return dict(self.field_bits)

    @property
    def is_empty(self) -> bool:
        return not self.field_bits

    def describe(self) -> str:
        if self.is_empty:
            return "<empty>"
        parts = []
        for name, bits in self.field_bits:
            parts.append(f"{name}/{bits}")
        return "+".join(parts)


class DynamicHashUnit:
    """A hash distribution unit with runtime-reconfigurable input masks.

    The candidate field set is fixed at construction (the compile-time
    wiring); :meth:`set_mask` installs a new mask at runtime, exactly like a
    ``tna_dyn_hashing`` control-plane call.  :meth:`compute` hashes the masked
    candidate fields of one packet into a 32-bit compressed key.

    By default the digest is the fast seeded :class:`HashFunction`; pass a
    :class:`repro.dataplane.crc.Crc32` as ``crc`` to compute a genuine CRC
    variant instead (higher hardware fidelity, pure-Python speed).
    """

    def __init__(
        self,
        unit_id: int,
        candidate_fields: Sequence[FieldSpec],
        seed: int,
        crc=None,
    ) -> None:
        if not candidate_fields:
            raise ValueError("a hash unit needs at least one candidate field")
        self.unit_id = unit_id
        self._specs: Dict[str, FieldSpec] = {f.name: f for f in candidate_fields}
        self._order = tuple(f.name for f in candidate_fields)
        if crc is not None:
            self._fn = _CrcAdapter(crc)
        else:
            self._fn = HashFunction(seed)
        self._mask = HashMask()

    @property
    def mask(self) -> HashMask:
        return self._mask

    @property
    def candidate_field_names(self) -> Tuple[str, ...]:
        return self._order

    def set_mask(self, mask: HashMask) -> None:
        """Install a hash-mask rule (validates fields against the wiring)."""
        for name, bits in mask.field_bits:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(
                    f"field {name!r} is not in hash unit {self.unit_id}'s "
                    f"candidate set {self._order}"
                )
            if not 0 < bits <= spec.width:
                raise ValueError(
                    f"mask of {bits} bits invalid for field {name!r} "
                    f"(width {spec.width})"
                )
        self._mask = mask

    def clear_mask(self) -> None:
        self._mask = HashMask()

    def compute(self, fields: Mapping[str, int]) -> int:
        """32-bit compressed key of the masked candidate fields.

        Unconfigured units return 0, matching hardware where a zeroed hash
        configuration contributes a constant.
        """
        if self._mask.is_empty:
            return 0
        pieces = []
        for name in self._order:
            bits = dict(self._mask.field_bits).get(name)
            if bits is None:
                continue
            spec = self._specs[name]
            value = int(fields.get(name, 0)) & spec.mask
            # Keep the most-significant `bits` bits: prefix semantics.
            value >>= spec.width - bits
            pieces.append(struct.pack("<IH", value & 0xFFFFFFFF, bits))
            if value >> 32:
                pieces.append(struct.pack("<I", value >> 32))
        return self._fn.hash_bytes(b"".join(pieces))

    def __repr__(self) -> str:
        return f"DynamicHashUnit(id={self.unit_id}, mask={self._mask.describe()})"
