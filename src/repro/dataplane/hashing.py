"""Hash units, including Tofino-style dynamic hashing.

Tofino exposes a limited pool of hash distribution units per MAU stage.  SDE
9.7.0 added *dynamic hashing* (``tna_dyn_hashing``): the unit's input is wired
to a fixed candidate field set at compile time, but the control plane can
install masks at runtime selecting which fields (or field prefixes)
participate in the calculation.  FlyMon's compression stage is built on this
feature, so the model reproduces it faithfully:

* :class:`HashFunction` -- one seeded 32-bit hash (a stand-in for one CRC
  polynomial configuration).
* :class:`DynamicHashUnit` -- a hash unit bound to an ordered candidate field
  set, with a runtime-reconfigurable :class:`HashMask`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.dataplane.phv import FieldSpec

HASH_WIDTH = 32
HASH_MASK = (1 << HASH_WIDTH) - 1


def _fmix32(h: int) -> int:
    """Murmur3 finalizer; breaks the linearity of CRC for independence."""
    h &= HASH_MASK
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & HASH_MASK
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & HASH_MASK
    h ^= h >> 16
    return h


def _fmix32_batch(h: np.ndarray) -> np.ndarray:
    """:func:`_fmix32` over a uint32 array (wrap-around multiply matches the
    scalar's explicit 32-bit masking)."""
    h = h.astype(np.uint32, copy=True)
    h ^= h >> np.uint32(16)
    h *= np.uint32(0x85EBCA6B)
    h ^= h >> np.uint32(13)
    h *= np.uint32(0xC2B2AE35)
    h ^= h >> np.uint32(16)
    return h


def _zlib_crc_table() -> np.ndarray:
    """The reflected CRC-32 (IEEE/zlib) byte table as a uint32 array."""
    entries = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        entries.append(crc)
    return np.array(entries, dtype=np.uint32)


_CRC32_TABLE = _zlib_crc_table()


def crc32_batch(data: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized ``zlib.crc32(row, seed)`` over an ``(n, L)`` uint8 matrix.

    The byte loop runs over the fixed message length ``L`` (a handful of
    bytes per hash-unit input) while each step is a table lookup vectorized
    over the whole batch -- bit-identical to the scalar zlib call.
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    crc = np.full(data.shape[0], (seed ^ 0xFFFFFFFF) & 0xFFFFFFFF, dtype=np.uint32)
    for j in range(data.shape[1]):
        crc = (crc >> np.uint32(8)) ^ _CRC32_TABLE[(crc ^ data[:, j]) & np.uint32(0xFF)]
    return crc ^ np.uint32(0xFFFFFFFF)


def uint64_le_bytes(values: np.ndarray, nbytes: int = 8) -> np.ndarray:
    """Little-endian byte matrix ``(n, nbytes)`` of a uint64 array -- the
    columnar dual of ``int.to_bytes(nbytes, "little")``."""
    values = np.ascontiguousarray(values, dtype="<u8")
    return values.view(np.uint8).reshape(len(values), 8)[:, :nbytes]


class HashFunction:
    """A seeded 32-bit hash over byte strings.

    Different seeds model different CRC polynomial configurations; outputs for
    distinct seeds behave as independent hash functions for sketching
    purposes.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed) & HASH_MASK
        self._seed_bytes = struct.pack("<I", self.seed)

    def hash_bytes(self, data: bytes) -> int:
        return _fmix32(zlib.crc32(data, self.seed) ^ self.seed)

    def hash_int(self, value: int, width: int = 64) -> int:
        nbytes = max(1, (width + 7) // 8)
        return self.hash_bytes(int(value).to_bytes(nbytes, "little", signed=False))

    def hash_bytes_batch(self, data: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`hash_bytes` over an ``(n, L)`` uint8 matrix."""
        return _fmix32_batch(crc32_batch(data, self.seed) ^ np.uint32(self.seed))

    def hash_int_batch(self, values: np.ndarray, width: int = 64) -> np.ndarray:
        """Row-wise :meth:`hash_int` over a non-negative integer array
        (``width`` at most 64 -- the widths the datapath uses)."""
        if width > 64:
            raise ValueError("hash_int_batch supports widths up to 64 bits")
        nbytes = max(1, (width + 7) // 8)
        return self.hash_bytes_batch(uint64_le_bytes(values, nbytes)).astype(np.int64)

    def __repr__(self) -> str:
        return f"HashFunction(seed={self.seed:#010x})"


def hash_family(count: int, base_seed: int = 0xF17E50) -> list:
    """A list of ``count`` independent :class:`HashFunction` objects."""
    return [HashFunction(base_seed + 0x9E3779B9 * i) for i in range(count)]


class _CrcAdapter:
    """Adapts a :class:`repro.dataplane.crc.Crc32` to the hash interface."""

    def __init__(self, crc) -> None:
        self._crc = crc
        self.seed = crc.poly

    def hash_bytes(self, data: bytes) -> int:
        return self._crc.compute(data)

    def hash_bytes_batch(self, data: np.ndarray) -> np.ndarray:
        return self._crc.compute_batch(data)


@dataclass(frozen=True)
class HashMask:
    """Runtime configuration of a dynamic hash unit.

    ``field_bits`` maps field name -> number of most-significant bits of that
    field to include (``width`` for the full field, smaller values model
    prefix keys like ``SrcIP/24``).  Fields absent from the mapping do not
    participate.  An empty mask means the unit contributes nothing (used for
    unconfigured units).
    """

    field_bits: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(mapping: Mapping[str, int]) -> "HashMask":
        return HashMask(tuple(sorted(mapping.items())))

    @staticmethod
    def full_fields(names: Iterable[str], specs: Mapping[str, FieldSpec]) -> "HashMask":
        return HashMask.of({name: specs[name].width for name in names})

    def as_dict(self) -> Dict[str, int]:
        return dict(self.field_bits)

    @property
    def is_empty(self) -> bool:
        return not self.field_bits

    def describe(self) -> str:
        if self.is_empty:
            return "<empty>"
        parts = []
        for name, bits in self.field_bits:
            parts.append(f"{name}/{bits}")
        return "+".join(parts)


class DynamicHashUnit:
    """A hash distribution unit with runtime-reconfigurable input masks.

    The candidate field set is fixed at construction (the compile-time
    wiring); :meth:`set_mask` installs a new mask at runtime, exactly like a
    ``tna_dyn_hashing`` control-plane call.  :meth:`compute` hashes the masked
    candidate fields of one packet into a 32-bit compressed key.

    By default the digest is the fast seeded :class:`HashFunction`; pass a
    :class:`repro.dataplane.crc.Crc32` as ``crc`` to compute a genuine CRC
    variant instead (higher hardware fidelity, pure-Python speed).
    """

    def __init__(
        self,
        unit_id: int,
        candidate_fields: Sequence[FieldSpec],
        seed: int,
        crc=None,
    ) -> None:
        if not candidate_fields:
            raise ValueError("a hash unit needs at least one candidate field")
        self.unit_id = unit_id
        self._specs: Dict[str, FieldSpec] = {f.name: f for f in candidate_fields}
        self._order = tuple(f.name for f in candidate_fields)
        if crc is not None:
            self._fn = _CrcAdapter(crc)
        else:
            self._fn = HashFunction(seed)
        self._mask = HashMask()

    @property
    def mask(self) -> HashMask:
        return self._mask

    @property
    def candidate_field_names(self) -> Tuple[str, ...]:
        return self._order

    def set_mask(self, mask: HashMask) -> None:
        """Install a hash-mask rule (validates fields against the wiring)."""
        for name, bits in mask.field_bits:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(
                    f"field {name!r} is not in hash unit {self.unit_id}'s "
                    f"candidate set {self._order}"
                )
            if not 0 < bits <= spec.width:
                raise ValueError(
                    f"mask of {bits} bits invalid for field {name!r} "
                    f"(width {spec.width})"
                )
        self._mask = mask

    def clear_mask(self) -> None:
        self._mask = HashMask()

    def compute(self, fields: Mapping[str, int]) -> int:
        """32-bit compressed key of the masked candidate fields.

        Unconfigured units return 0, matching hardware where a zeroed hash
        configuration contributes a constant.
        """
        if self._mask.is_empty:
            return 0
        pieces = []
        for name in self._order:
            bits = dict(self._mask.field_bits).get(name)
            if bits is None:
                continue
            spec = self._specs[name]
            value = int(fields.get(name, 0)) & spec.mask
            # Keep the most-significant `bits` bits: prefix semantics.
            value >>= spec.width - bits
            pieces.append(struct.pack("<IH", value & 0xFFFFFFFF, bits))
            if value >> 32:
                pieces.append(struct.pack("<I", value >> 32))
        return self._fn.hash_bytes(b"".join(pieces))

    def compute_batch(self, batch) -> np.ndarray:
        """Columnar :meth:`compute`: one 32-bit key per packet of ``batch``.

        ``batch`` is a :class:`repro.traffic.batch.PacketBatch` (or anything
        with ``__len__`` and ``get(name) -> ndarray``).  The packed message
        per packet is the same fixed-width ``<IH``-per-field layout the
        scalar path builds, so hashes are bit-identical.
        """
        n = len(batch)
        if self._mask.is_empty:
            return np.zeros(n, dtype=np.int64)
        mask_bits = dict(self._mask.field_bits)
        parts = []  # (low 32 bits, bits, high word or None)
        for name in self._order:
            bits = mask_bits.get(name)
            if bits is None:
                continue
            spec = self._specs[name]
            if spec.width > 32:
                # Wide fields can spill a second word (the scalar path's
                # `value >> 32` branch): carry the high word alongside.
                values = (batch.get(name).astype(np.uint64) & np.uint64(spec.mask)) >> np.uint64(
                    spec.width - bits
                )
                low = (values & np.uint64(0xFFFFFFFF)).astype(np.int64)
                parts.append((low, bits, (values >> np.uint64(32)).astype(np.int64)))
            else:
                values = (batch.get(name) & spec.mask) >> (spec.width - bits)
                parts.append((values, bits, None))
        wide = [i for i, part in enumerate(parts) if part[2] is not None]
        if not wide:
            return self._hash_fixed_layout(parts, np.arange(n), ())
        # The message layout varies per packet: a wide field appends its high
        # word only when non-zero.  Partition rows by their spill signature
        # (which wide fields spill); each signature class shares one fixed
        # layout and hashes as a single vectorized call.
        sig = np.zeros(n, dtype=np.int64)
        for k, i in enumerate(wide):
            sig |= (parts[i][2] != 0).astype(np.int64) << k
        out = np.empty(n, dtype=np.int64)
        for s in np.unique(sig):
            rows = np.nonzero(sig == s)[0]
            spilled = tuple(i for k, i in enumerate(wide) if (int(s) >> k) & 1)
            out[rows] = self._hash_fixed_layout(parts, rows, spilled)
        return out

    def _hash_fixed_layout(
        self, parts, rows: np.ndarray, spilled: Tuple[int, ...]
    ) -> np.ndarray:
        """Hash the rows whose packed message shares one layout: the ``<IH``
        chunk per field, plus a 4-byte high word after each field in
        ``spilled`` (by position in ``parts``)."""
        n = len(rows)
        data = np.empty((n, 6 * len(parts) + 4 * len(spilled)), dtype=np.uint8)
        offset = 0
        for i, (values, bits, high) in enumerate(parts):
            data[:, offset : offset + 4] = (
                values[rows].astype("<u4").view(np.uint8).reshape(n, 4)
            )
            data[:, offset + 4] = bits & 0xFF
            data[:, offset + 5] = (bits >> 8) & 0xFF
            offset += 6
            if i in spilled:
                data[:, offset : offset + 4] = (
                    high[rows].astype("<u4").view(np.uint8).reshape(n, 4)
                )
                offset += 4
        return self._fn.hash_bytes_batch(data).astype(np.int64)

    def __repr__(self) -> str:
        return f"DynamicHashUnit(id={self.unit_id}, mask={self._mask.describe()})"
