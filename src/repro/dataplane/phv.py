"""Packet Header Vector (PHV) model.

The PHV is the per-packet scratch memory a packet carries through the RMT
pipeline.  Header fields are parsed into it, and match-action stages read and
write it.  FlyMon's "less-copy" optimisation is entirely about how many PHV
bits the key-selection phase must statically reserve, so the model tracks bit
budgets explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


@dataclass(frozen=True)
class FieldSpec:
    """A named PHV field with a fixed bit width."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


#: The candidate key set the paper evaluates with: 5-tuple plus timestamp.
STANDARD_HEADER_FIELDS = (
    FieldSpec("src_ip", 32),
    FieldSpec("dst_ip", 32),
    FieldSpec("src_port", 16),
    FieldSpec("dst_port", 16),
    FieldSpec("protocol", 8),
    FieldSpec("timestamp", 32),
)

#: Standard metadata attributes available as CMU parameters (Table 2 text).
STANDARD_METADATA_FIELDS = (
    FieldSpec("pkt_bytes", 16),
    FieldSpec("queue_length", 24),
    FieldSpec("queue_delay", 32),
)


class PhvLayout:
    """Static allocation of PHV fields against a bit budget.

    Raises :class:`PhvBudgetError` when an allocation would exceed the
    budget -- this is exactly the failure mode Figure 13c measures for the
    full-copy strategy.
    """

    def __init__(self, budget_bits: int) -> None:
        if budget_bits <= 0:
            raise ValueError("budget_bits must be positive")
        self.budget_bits = budget_bits
        self._fields: Dict[str, FieldSpec] = {}

    @property
    def used_bits(self) -> int:
        return sum(f.width for f in self._fields.values())

    @property
    def free_bits(self) -> int:
        return self.budget_bits - self.used_bits

    def allocate(self, spec: FieldSpec) -> FieldSpec:
        """Reserve PHV space for ``spec``; idempotent for identical specs."""
        existing = self._fields.get(spec.name)
        if existing is not None:
            if existing.width != spec.width:
                raise ValueError(
                    f"field {spec.name!r} already allocated with width "
                    f"{existing.width}, not {spec.width}"
                )
            return existing
        if spec.width > self.free_bits:
            raise PhvBudgetError(
                f"allocating {spec.name!r} ({spec.width} b) exceeds PHV budget: "
                f"{self.used_bits}/{self.budget_bits} bits used"
            )
        self._fields[spec.name] = spec
        return spec

    def allocate_all(self, specs: Iterable[FieldSpec]) -> None:
        for spec in specs:
            self.allocate(spec)

    def free(self, name: str) -> None:
        self._fields.pop(name, None)

    def has(self, name: str) -> bool:
        return name in self._fields

    def spec(self, name: str) -> FieldSpec:
        return self._fields[name]

    def field_names(self) -> list:
        return sorted(self._fields)


class PhvBudgetError(RuntimeError):
    """Raised when a PHV allocation does not fit the pipeline's bit budget."""


class Phv:
    """Per-packet field values, validated against a :class:`PhvLayout`.

    Fields not present default to 0, mirroring hardware behaviour where
    unparsed containers read as zero.
    """

    def __init__(self, layout: PhvLayout, values: Mapping[str, int] = ()) -> None:
        self._layout = layout
        self._values: Dict[str, int] = {}
        for name, value in dict(values).items():
            self[name] = value

    def __getitem__(self, name: str) -> int:
        if not self._layout.has(name):
            raise KeyError(f"field {name!r} is not allocated in the PHV layout")
        return self._values.get(name, 0)

    def __setitem__(self, name: str, value: int) -> None:
        spec = self._layout.spec(name)  # KeyError if unallocated.
        self._values[name] = int(value) & spec.mask

    def get(self, name: str, default: int = 0) -> int:
        try:
            return self[name]
        except KeyError:
            return default

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)
