"""MAU stages: resource admission control plus attached processing logic."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.dataplane.resources import STAGE_CAPACITY, ResourceVector


class StageResourceError(RuntimeError):
    """Raised when an allocation exceeds a stage's resource capacity."""


class MauStage:
    """One match-action unit stage.

    Tracks resource usage by named owner (e.g. ``"cmug0/compression"``) so
    deployments can be torn down, and holds an ordered list of processing
    hooks executed when a packet traverses the stage.
    """

    def __init__(self, index: int, capacity: ResourceVector = STAGE_CAPACITY) -> None:
        self.index = index
        self.capacity = capacity
        self._allocations: Dict[str, ResourceVector] = {}
        self._hooks: List[Callable[[Mapping[str, int]], None]] = []

    # -- resource accounting ----------------------------------------------

    @property
    def used(self) -> ResourceVector:
        total = ResourceVector.zero()
        for vec in self._allocations.values():
            total = total + vec
        return total

    def allocate(self, owner: str, demand: ResourceVector) -> None:
        if owner in self._allocations:
            raise ValueError(f"owner {owner!r} already holds an allocation in stage {self.index}")
        if not (self.used + demand).fits_within(self.capacity):
            util = (self.used + demand).utilization(self.capacity)
            over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
            raise StageResourceError(
                f"stage {self.index}: allocation for {owner!r} exceeds capacity on {over}"
            )
        self._allocations[owner] = demand

    def release(self, owner: str) -> None:
        self._allocations.pop(owner, None)

    def utilization(self) -> Dict[str, float]:
        return self.used.utilization(self.capacity)

    def owners(self) -> List[str]:
        return sorted(self._allocations)

    # -- packet processing --------------------------------------------------

    def add_hook(self, hook: Callable[[Mapping[str, int]], None]) -> None:
        """Attach per-packet logic (executed in attachment order)."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Callable[[Mapping[str, int]], None]) -> None:
        self._hooks.remove(hook)

    def process(self, fields: Mapping[str, int]) -> None:
        for hook in self._hooks:
            hook(fields)

    def __repr__(self) -> str:
        return f"MauStage(index={self.index}, owners={self.owners()})"
