"""MAU stages: resource admission control plus attached processing logic."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.dataplane.resources import STAGE_CAPACITY, ResourceVector


class StageResourceError(RuntimeError):
    """Raised when an allocation exceeds a stage's resource capacity."""


def _apply_scalar_hook(hook, batch) -> None:
    """Exact per-row fallback for hooks without a batched dual.

    Rows are materialized as dicts, run through the hook in order, and any
    fields the hook wrote are folded back into the batch's columns, so
    downstream batched hooks observe the same PHV state the scalar pipeline
    would have produced.
    """
    import numpy as np

    rows = batch.to_fields_dicts()
    names = set(batch.column_names)
    for fields in rows:
        hook(fields)
        names.update(fields)
    for name in names:
        column = np.fromiter(
            (fields.get(name, 0) for fields in rows), dtype=np.int64, count=len(rows)
        )
        batch.set(name, column)


class MauStage:
    """One match-action unit stage.

    Tracks resource usage by named owner (e.g. ``"cmug0/compression"``) so
    deployments can be torn down, and holds an ordered list of processing
    hooks executed when a packet traverses the stage.
    """

    def __init__(self, index: int, capacity: ResourceVector = STAGE_CAPACITY) -> None:
        self.index = index
        self.capacity = capacity
        self._allocations: Dict[str, ResourceVector] = {}
        self._hooks: List[Callable[[Mapping[str, int]], None]] = []
        #: Optional batched dual per scalar hook (same attachment order).
        self._batch_hooks: Dict[Callable, Callable] = {}

    # -- resource accounting ----------------------------------------------

    @property
    def used(self) -> ResourceVector:
        total = ResourceVector.zero()
        for vec in self._allocations.values():
            total = total + vec
        return total

    def allocate(self, owner: str, demand: ResourceVector) -> None:
        if owner in self._allocations:
            raise ValueError(f"owner {owner!r} already holds an allocation in stage {self.index}")
        if not (self.used + demand).fits_within(self.capacity):
            util = (self.used + demand).utilization(self.capacity)
            over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
            raise StageResourceError(
                f"stage {self.index}: allocation for {owner!r} exceeds capacity on {over}"
            )
        self._allocations[owner] = demand

    def release(self, owner: str) -> None:
        self._allocations.pop(owner, None)

    def utilization(self) -> Dict[str, float]:
        return self.used.utilization(self.capacity)

    def owners(self) -> List[str]:
        return sorted(self._allocations)

    # -- packet processing --------------------------------------------------

    def add_hook(
        self,
        hook: Callable[[Mapping[str, int]], None],
        batch_hook: Callable = None,
    ) -> None:
        """Attach per-packet logic (executed in attachment order).

        ``batch_hook`` is the optional columnar dual taking a
        :class:`~repro.traffic.batch.PacketBatch`; hooks attached without one
        fall back to exact per-row execution under :meth:`process_batch`.
        """
        self._hooks.append(hook)
        if batch_hook is not None:
            self._batch_hooks[hook] = batch_hook

    def remove_hook(self, hook: Callable[[Mapping[str, int]], None]) -> None:
        self._hooks.remove(hook)
        self._batch_hooks.pop(hook, None)

    def process(self, fields: Mapping[str, int]) -> None:
        for hook in self._hooks:
            hook(fields)

    def process_batch(self, batch) -> None:
        """Run every hook over a whole batch, in attachment order."""
        for hook in self._hooks:
            batch_hook = self._batch_hooks.get(hook)
            if batch_hook is not None:
                batch_hook(batch)
            else:
                _apply_scalar_hook(hook, batch)

    def __repr__(self) -> str:
        return f"MauStage(index={self.index}, owners={self.owners()})"
