"""MAU stages: resource admission control plus attached processing logic."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.dataplane.resources import STAGE_CAPACITY, ResourceVector


class StageResourceError(RuntimeError):
    """Raised when an allocation exceeds a stage's resource capacity."""


def _apply_scalar_hook(hook, batch) -> None:
    """Exact per-row fallback for hooks without a batched dual.

    Rows are materialized as dicts, run through the hook in order, and the
    fields the hook *actually wrote* (added, or changed in value) are folded
    back into the batch's columns, so downstream batched hooks observe the
    same PHV state the scalar pipeline would have produced.

    Fields the hook never touched are left alone: in particular, a field the
    hook wrote on no row at all never materializes as a column, so a
    downstream ``name in batch`` check agrees with the scalar path's
    ``name in fields``.  A field written on only *some* rows necessarily
    becomes a column; the unwritten rows read as 0, which is exactly the
    ``fields.get(name, 0)`` / :meth:`PacketBatch.get` absent-field contract.
    """
    import numpy as np

    rows = batch.to_fields_dicts()
    written = set()
    for fields in rows:
        before = dict(fields)
        hook(fields)
        for name, value in fields.items():
            if name not in before or before[name] != value:
                written.add(name)
    for name in written:
        column = np.fromiter(
            (fields.get(name, 0) for fields in rows), dtype=np.int64, count=len(rows)
        )
        batch.set(name, column)


class MauStage:
    """One match-action unit stage.

    Tracks resource usage by named owner (e.g. ``"cmug0/compression"``) so
    deployments can be torn down, and holds an ordered list of processing
    hooks executed when a packet traverses the stage.
    """

    def __init__(self, index: int, capacity: ResourceVector = STAGE_CAPACITY) -> None:
        self.index = index
        self.capacity = capacity
        self._allocations: Dict[str, ResourceVector] = {}
        #: Ordered ``(hook, batch_hook)`` pairs -- the batched dual travels
        #: with its scalar hook, so removing one attachment of a twice-added
        #: callable cannot strand the remaining attachment without its dual.
        self._hooks: List[Tuple[Callable, Optional[Callable]]] = []

    # -- resource accounting ----------------------------------------------

    @property
    def used(self) -> ResourceVector:
        total = ResourceVector.zero()
        for vec in self._allocations.values():
            total = total + vec
        return total

    def allocate(self, owner: str, demand: ResourceVector) -> None:
        if owner in self._allocations:
            raise ValueError(f"owner {owner!r} already holds an allocation in stage {self.index}")
        if not (self.used + demand).fits_within(self.capacity):
            util = (self.used + demand).utilization(self.capacity)
            over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
            raise StageResourceError(
                f"stage {self.index}: allocation for {owner!r} exceeds capacity on {over}"
            )
        self._allocations[owner] = demand

    def release(self, owner: str) -> None:
        self._allocations.pop(owner, None)

    def utilization(self) -> Dict[str, float]:
        return self.used.utilization(self.capacity)

    def owners(self) -> List[str]:
        return sorted(self._allocations)

    # -- packet processing --------------------------------------------------

    def add_hook(
        self,
        hook: Callable[[Mapping[str, int]], None],
        batch_hook: Callable = None,
    ) -> None:
        """Attach per-packet logic (executed in attachment order).

        ``batch_hook`` is the optional columnar dual taking a
        :class:`~repro.traffic.batch.PacketBatch`; hooks attached without one
        fall back to exact per-row execution under :meth:`process_batch`.
        """
        self._hooks.append((hook, batch_hook))

    def remove_hook(self, hook: Callable[[Mapping[str, int]], None]) -> None:
        """Detach the first attachment of ``hook`` (and its batched dual)."""
        for i, (attached, _) in enumerate(self._hooks):
            if attached == hook:
                del self._hooks[i]
                return
        raise ValueError(f"hook {hook!r} is not attached to stage {self.index}")

    def hook_entries(self) -> List[Tuple[Callable, Optional[Callable]]]:
        """The attached ``(hook, batch_hook)`` pairs, in attachment order."""
        return list(self._hooks)

    def scalar_only_hooks(self) -> List[Callable]:
        """Hooks attached without a batched dual (these force the dict
        round-trip under :meth:`process_batch`)."""
        return [hook for hook, batch_hook in self._hooks if batch_hook is None]

    def process(self, fields: Mapping[str, int]) -> None:
        for hook, _ in self._hooks:
            hook(fields)

    def process_batch(self, batch) -> None:
        """Run every hook over a whole batch, in attachment order."""
        for hook, batch_hook in self._hooks:
            if batch_hook is not None:
                batch_hook(batch)
            else:
                _apply_scalar_hook(hook, batch)

    def __repr__(self) -> str:
        return f"MauStage(index={self.index}, owners={self.owners()})"
