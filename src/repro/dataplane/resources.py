"""Per-MAU-stage hardware resource accounting.

FlyMon's headline numbers (9 CMU Groups in 12 stages, <8.3% overhead per
group, the Figure 8 per-stage percentages) are statements about how much of
each MAU stage's fixed resource budget a deployment consumes.  This module
defines the resource vector algebra those statements are computed with.

Capacities are calibrated to public Tofino figures and chosen so that the
percentages the paper publishes in the Figure 8 table fall out exactly:

* 6 hash distribution units per stage (a compression stage uses 3 -> 50%),
* 4 SALUs per stage (a CMU Group's operation stage uses 3 -> 75%),
* 32 VLIW instruction slots per stage (2 -> 6.25%, 8 -> 25%),
* 24 TCAM blocks per stage (3 -> 12.5%, 12 -> 50%),
* 80 SRAM blocks of 16 KB per stage,
* 16 logical table IDs per stage,
* 4096 PHV bits shared across the pipeline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """An amount of each MAU-stage resource.

    Instances are immutable; arithmetic returns new vectors.  All quantities
    are in natural units (units, slots, blocks, bits), not fractions.
    """

    hash_units: float = 0.0
    salus: float = 0.0
    vliw: float = 0.0
    tcam_blocks: float = 0.0
    sram_blocks: float = 0.0
    table_ids: float = 0.0
    phv_bits: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(a + b for a, b in zip(self.as_tuple(), other.as_tuple()))
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(a - b for a, b in zip(self.as_tuple(), other.as_tuple()))
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(*(a * scalar for a in self.as_tuple()))

    __rmul__ = __mul__

    def as_tuple(self) -> tuple:
        return dataclasses.astuple(self)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """Whether this demand fits in ``capacity`` on every dimension."""
        return all(a <= b + 1e-9 for a, b in zip(self.as_tuple(), capacity.as_tuple()))

    def utilization(self, capacity: "ResourceVector") -> dict:
        """Fraction of each capacity dimension consumed (0 capacity -> 0)."""
        out = {}
        for name, used in self.as_dict().items():
            cap = getattr(capacity, name)
            out[name] = used / cap if cap else 0.0
        return out

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector()


#: Resource budget of one MAU stage (see module docstring for calibration).
STAGE_CAPACITY = ResourceVector(
    hash_units=6,
    salus=4,
    vliw=32,
    tcam_blocks=24,
    sram_blocks=80,
    table_ids=16,
    phv_bits=0,  # PHV is a pipeline-wide resource, not per stage.
)

#: PHV bits shared by the whole pipeline (Tofino: 4 Kb usable header space).
PIPELINE_PHV_BITS = 4096

#: Number of MAU stages in one Tofino pipeline.
NUM_STAGES = 12

#: Bytes of stateful memory in one SRAM block.
SRAM_BLOCK_BYTES = 16 * 1024


def pipeline_capacity(num_stages: int = NUM_STAGES) -> ResourceVector:
    """Aggregate capacity of ``num_stages`` MAU stages plus pipeline PHV."""
    total = STAGE_CAPACITY * num_stages
    return dataclasses.replace(total, phv_bits=PIPELINE_PHV_BITS)


def sram_blocks_for(num_buckets: int, bucket_bits: int) -> float:
    """SRAM blocks needed to hold ``num_buckets`` counters of ``bucket_bits``."""
    if num_buckets < 0:
        raise ValueError("num_buckets must be non-negative")
    total_bytes = num_buckets * bucket_bits / 8.0
    return total_bytes / SRAM_BLOCK_BYTES
