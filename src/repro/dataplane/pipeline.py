"""The RMT pipeline: an ordered sequence of MAU stages plus pipeline PHV."""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, MutableMapping, Optional

from repro.dataplane.phv import PhvLayout
from repro.dataplane.resources import (
    NUM_STAGES,
    PIPELINE_PHV_BITS,
    ResourceVector,
    STAGE_CAPACITY,
)
from repro.dataplane.stage import MauStage
from repro.telemetry import TELEMETRY as _TELEMETRY


class Pipeline:
    """A fixed number of MAU stages sharing one PHV bit budget.

    Packets traverse stages in order; each stage runs its attached hooks over
    the packet's mutable field mapping (the simulated PHV).

    When telemetry is enabled, :meth:`process` counts packets per stage and
    records sampled timing spans (``flymon_pipeline_process_seconds``); when
    disabled, the only added cost is one flag check per packet.
    """

    def __init__(
        self,
        num_stages: int = NUM_STAGES,
        stage_capacity: ResourceVector = STAGE_CAPACITY,
        phv_budget_bits: int = PIPELINE_PHV_BITS,
    ) -> None:
        if num_stages <= 0:
            raise ValueError("num_stages must be positive")
        self.stages: List[MauStage] = [
            MauStage(i, stage_capacity) for i in range(num_stages)
        ]
        self.phv_layout = PhvLayout(phv_budget_bits)
        #: Lazily-built telemetry handles (created on the first traced packet).
        self._stage_counters: Optional[list] = None
        self._packet_counter = None
        self._span_histogram = None

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage(self, index: int) -> MauStage:
        return self.stages[index]

    def process(self, fields: MutableMapping[str, int]) -> None:
        """Run one packet through every stage in order."""
        if _TELEMETRY.enabled:
            self._process_traced(fields)
            return
        for stage in self.stages:
            stage.process(fields)

    def _process_traced(self, fields: MutableMapping[str, int]) -> None:
        if self._stage_counters is None:
            self._bind_telemetry()
        self._packet_counter.inc()
        sampled = _TELEMETRY.tracer.should_sample()
        start = perf_counter() if sampled else 0.0
        for stage, hits in zip(self.stages, self._stage_counters):
            hits.inc()
            stage.process(fields)
        if sampled:
            self._span_histogram.observe(perf_counter() - start)

    def process_batch(self, batch) -> None:
        """Run a whole :class:`~repro.traffic.batch.PacketBatch` through every
        stage in order -- the batched dual of :meth:`process`.

        Telemetry counters advance by the batch length (packets, not
        batches); timing spans cover one batch traversal.
        """
        if _TELEMETRY.enabled:
            self._process_batch_traced(batch)
            return
        for stage in self.stages:
            stage.process_batch(batch)

    def _process_batch_traced(self, batch) -> None:
        if self._stage_counters is None:
            self._bind_telemetry()
        n = len(batch)
        self._packet_counter.inc(n)
        sampled = _TELEMETRY.tracer.should_sample()
        start = perf_counter() if sampled else 0.0
        for stage, hits in zip(self.stages, self._stage_counters):
            hits.inc(n)
            stage.process_batch(batch)
        if sampled:
            self._span_histogram.observe(perf_counter() - start)

    def _bind_telemetry(self) -> None:
        registry = _TELEMETRY.registry
        self._packet_counter = registry.counter("flymon_pipeline_packets_total")
        self._stage_counters = [
            registry.counter("flymon_stage_packets_total", stage=str(stage.index))
            for stage in self.stages
        ]
        self._span_histogram = _TELEMETRY.tracer.span_histogram(
            "flymon_pipeline_process"
        )

    def scalar_fallback_hooks(self) -> List[tuple]:
        """``(stage_index, hook)`` pairs attached without a batched dual.

        A non-empty result means :meth:`process_batch` pays the exact-but-slow
        per-row dict round-trip at those stages; sharded workers require this
        to be empty (see :mod:`repro.dataplane.sharding`).
        """
        return [
            (stage.index, hook)
            for stage in self.stages
            for hook in stage.scalar_only_hooks()
        ]

    # -- aggregate accounting -----------------------------------------------

    def total_used(self) -> ResourceVector:
        total = ResourceVector.zero()
        for stage in self.stages:
            total = total + stage.used
        return total

    def total_capacity(self) -> ResourceVector:
        total = self.stages[0].capacity * self.num_stages
        return ResourceVector(
            hash_units=total.hash_units,
            salus=total.salus,
            vliw=total.vliw,
            tcam_blocks=total.tcam_blocks,
            sram_blocks=total.sram_blocks,
            table_ids=total.table_ids,
            phv_bits=self.phv_layout.budget_bits,
        )

    def utilization(self) -> Dict[str, float]:
        used = self.total_used()
        used = ResourceVector(
            hash_units=used.hash_units,
            salus=used.salus,
            vliw=used.vliw,
            tcam_blocks=used.tcam_blocks,
            sram_blocks=used.sram_blocks,
            table_ids=used.table_ids,
            phv_bits=self.phv_layout.used_bits,
        )
        return used.utilization(self.total_capacity())
