"""Persistent shard worker pool: resident replicas + shared-memory transport.

The ephemeral shard model (:mod:`repro.dataplane.sharding`) pays a full
replica rebuild and a pickle round-trip of every register array on *every*
``process_trace`` call -- the dominant cost of the parallel path and of
epoch rotation.  This module keeps a pool of long-lived ``fork`` workers
whose :class:`~repro.core.cmu_group.CmuGroup` replicas stay resident across
runs and across epoch rotations:

* **control channel** -- a pipe per worker carries *deltas only*: the pool
  mirrors the live groups as :class:`GroupReplicaSpec` tuples and, when the
  controller reports a mutation, diffs the mirror against the live state
  into ``remove`` / ``mask`` / ``install`` ops (ordered so re-installs
  never collide) that every worker applies to its resident replica.
* **data channel** -- packet columns go *into* each worker through a
  per-worker anonymous ``mmap`` window (``FLYMON_SHARD_SHM_ROWS`` rows per
  round, column-major ``int64``), and register state comes *back* through a
  per-worker output window laid out register-by-register in native dtype.
  Nothing on the hot path is pickled except journal records for
  replay-law tasks.
* **epoch rotation** -- workers are *delta machines*: every run harvests
  registers into shared memory and zeroes them in place, so a freshly
  rotated epoch needs no worker-side work at all beyond a ``seal``
  acknowledgement.

Shards are contiguous per worker (the same ranges the ephemeral model
uses), each streamed through the input window in capacity-sized rounds, so
journals, exports, and merge laws are bit-identical to the ephemeral path
and a failed worker can be re-dispatched serially through the *existing*
retry machinery (:func:`repro.dataplane.sharding._retry_serially`).  A dead
or hung worker is terminated, its shard re-run serially, and the slot
respawned from the mirror -- one bad worker never costs the run.

When ``fork`` is unavailable (spawn-only platforms, sandboxes) the pool
degrades to a thread mode with resident per-slot replicas and records the
reason, surfaced as ``ShardRunReport.degraded``; it never crashes.
"""

from __future__ import annotations

import mmap
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.sharding import (
    BACKEND_PROCESS,
    BACKEND_THREAD,
    GroupReplicaSpec,
    ShardJournal,
    ShardResult,
    ShardingError,
    _accumulate_exports,
    _execute_injection,
    _plan_injection,
    _retry_serially,
    replica_specs,
    shard_timeout,
)
from repro.telemetry import RECORDER as _RECORDER
from repro.traffic.batch import PacketBatch

#: Rows per worker the shared input window holds per round
#: (``FLYMON_SHARD_SHM_ROWS``); traces larger than ``workers * rows``
#: stream through in multiple rounds.
DEFAULT_SHM_ROWS = 1 << 16

_MIN_SHM_ROWS = 64


class ShardPoolError(ShardingError):
    """Raised for invalid persistent-pool configuration or a closed pool."""


def shm_rows() -> int:
    """Input-window capacity in rows per worker."""
    raw = os.environ.get("FLYMON_SHARD_SHM_ROWS", "").strip()
    if not raw:
        return DEFAULT_SHM_ROWS
    try:
        return max(_MIN_SHM_ROWS, int(raw))
    except ValueError:
        return DEFAULT_SHM_ROWS


def _diff_specs(
    old: Sequence[GroupReplicaSpec], new: Sequence[GroupReplicaSpec]
) -> List[Tuple]:
    """Delta ops turning replicas built from ``old`` into ``new``.

    Removes run first (freeing memory windows and filter slots), then hash
    mask updates (installs re-resolve translations against the new masks),
    then installs.  ``CmuTaskConfig`` equality ignores the cached
    translation, so an untouched task never ships.
    """
    removes: List[Tuple] = []
    masks: List[Tuple] = []
    installs: List[Tuple] = []
    for old_group, new_group in zip(old, new):
        gid = new_group.group_id
        for unit, (old_mask, new_mask) in enumerate(
            zip(old_group.unit_masks, new_group.unit_masks)
        ):
            if old_mask != new_mask:
                masks.append(("mask", gid, unit, new_mask))
        for cmu_index, (old_cfgs, new_cfgs) in enumerate(
            zip(old_group.cmu_configs, new_group.cmu_configs)
        ):
            old_by_id = {cfg.task_id: cfg for cfg in old_cfgs}
            new_by_id = {cfg.task_id: cfg for cfg in new_cfgs}
            for task_id, cfg in old_by_id.items():
                if task_id not in new_by_id:
                    removes.append(("remove", gid, cmu_index, task_id))
                elif new_by_id[task_id] != cfg:
                    removes.append(("remove", gid, cmu_index, task_id))
                    installs.append(("install", gid, cmu_index, new_by_id[task_id]))
            for task_id, cfg in new_by_id.items():
                if task_id not in old_by_id:
                    installs.append(("install", gid, cmu_index, cfg))
    return removes + masks + installs


def _apply_ops(groups_by_id: Dict[int, object], ops: Sequence[Tuple]) -> None:
    """Apply delta ops to resident replica groups (worker side)."""
    for op in ops:
        kind = op[0]
        if kind == "remove":
            _, gid, cmu_index, task_id = op
            groups_by_id[gid].cmus[cmu_index].remove_task(task_id)
        elif kind == "mask":
            _, gid, unit_index, mask = op
            unit = groups_by_id[gid].hash_units[unit_index]
            if mask.is_empty:
                unit.clear_mask()
            else:
                unit.set_mask(mask)
        elif kind == "install":
            _, gid, cmu_index, config = op
            groups_by_id[gid].cmus[cmu_index].install_task(config)
        else:  # pragma: no cover - protocol error
            raise ShardPoolError(f"unknown delta op {kind!r}")


def _scrub(groups: Sequence) -> None:
    """Zero a replica's run state after a failed run: registers, digests,
    journal hookups.  Rules and masks are never touched by packet
    processing, so the resident structure stays valid."""
    for group in groups:
        for cmu in group.cmus:
            cmu.journal = None
            cmu._digests.clear()
            if cmu.task_plans():
                cmu.register.reset()


def _pool_worker_main(
    conn,
    specs: Sequence[GroupReplicaSpec],
    fields: Sequence[str],
    cap_rows: int,
    in_buf,
    out_buf,
    layout: Dict[Tuple[int, int], Tuple[int, object, int]],
    out_stride: int,
    slot: int,
) -> None:
    """Long-lived worker loop: build replicas once, then serve commands.

    Protocol (one request, one reply, except ``begin`` which is fire and
    forget):

    * ``("sync", ops)`` -> ``("ok",)`` -- apply rule deltas.
    * ``("begin", start, stop, batch_size, tracked, collect, inject)`` --
      arm a run over global rows ``[start, stop)``.
    * ``("rows", lo, hi)`` -> ``("ok", compute_ms)`` -- process the rows the
      parent staged in the input window (global ``[lo, hi)``, a sub-range
      of the armed run).
    * ``("harvest",)`` -> ``("ok", journal_records, exports, out_ms,
      build_ms)`` -- snapshot every register into the output window, zero
      it, and ship the pickled remainder (journal + exports).
    * ``("seal", epoch)`` -> ``("ok", epoch)`` -- epoch rotation barrier.
    * ``("stop",)`` -> ``("ok",)`` and exit.
    """
    try:
        t_build = time.perf_counter()
        groups = [spec.build() for spec in specs]
        build_ms = (time.perf_counter() - t_build) * 1e3
        by_id = {group.group_id: group for group in groups}

        row_bytes = cap_rows * 8
        in_base = slot * len(fields) * row_bytes
        in_cols = {
            name: np.frombuffer(
                in_buf, dtype=np.int64, count=cap_rows, offset=in_base + j * row_bytes
            )
            for j, name in enumerate(fields)
        }
        out_views = {
            key: np.frombuffer(
                out_buf, dtype=dtype, count=size, offset=slot * out_stride + off
            )
            for key, (off, dtype, size) in layout.items()
        }

        ctx: Optional[dict] = None
        journal: Optional[ShardJournal] = None
        exports: Optional[Dict[str, np.ndarray]] = None

        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "rows":
                _, lo, hi = msg
                t0 = time.perf_counter()
                try:
                    inject = ctx.pop("inject", None)
                    if inject is not None:
                        _execute_injection(inject, ctx["start"])
                    n = hi - lo
                    batch_size = ctx["batch_size"]
                    for off in range(0, n, batch_size):
                        top = min(off + batch_size, n)
                        batch = PacketBatch(
                            {name: col[off:top] for name, col in in_cols.items()},
                            length=top - off,
                        )
                        journal.offset = lo + off
                        for group in groups:
                            group.process_batch(batch)
                        if exports is not None:
                            _accumulate_exports(
                                exports,
                                batch,
                                (lo - ctx["start"]) + off,
                                ctx["stop"] - ctx["start"],
                            )
                    conn.send(("ok", (time.perf_counter() - t0) * 1e3))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    _scrub(groups)
                    ctx = journal = exports = None
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
            elif cmd == "begin":
                _, start, stop, batch_size, tracked, collect, inject = msg
                ctx = {
                    "start": start,
                    "stop": stop,
                    "batch_size": batch_size,
                    "inject": inject,
                }
                journal = ShardJournal(tracked)
                for group in groups:
                    for cmu in group.cmus:
                        cmu.journal = journal
                exports = {} if collect else None
            elif cmd == "harvest":
                t0 = time.perf_counter()
                try:
                    for group in groups:
                        for cmu in group.cmus:
                            cmu.journal = None
                            cmu._digests.clear()
                            if cmu.task_plans():
                                key = (group.group_id, cmu.index)
                                cmu.register.snapshot_into(out_views[key])
                                cmu.register.reset()
                    out_ms = (time.perf_counter() - t0) * 1e3
                    conn.send(("ok", journal._records, exports, out_ms, build_ms))
                    build_ms = 0.0
                    ctx = journal = exports = None
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    _scrub(groups)
                    ctx = journal = exports = None
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
            elif cmd == "sync":
                try:
                    _apply_ops(by_id, msg[1])
                    conn.send(("ok",))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
            elif cmd == "seal":
                _scrub(groups)
                conn.send(("ok", msg[1]))
            elif cmd == "stop":
                conn.send(("ok",))
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return


class _WorkerFailure(Exception):
    """Internal: a pool worker failed a request."""

    def __init__(self, reason: str, dead: bool, timed_out: bool = False) -> None:
        super().__init__(reason)
        self.reason = reason
        self.dead = dead
        self.timed_out = timed_out


class _ProcWorker:
    __slots__ = ("proc", "conn", "dead")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.dead = False


class PersistentShardPool:
    """Long-lived shard workers with resident replicas (see module docs).

    ``backend`` requests ``process`` (default) or ``thread`` mode; a
    ``process`` request on a platform without ``fork`` degrades to thread
    mode with the reason kept on :attr:`degraded_reason`.  The pool mirrors
    the live ``groups`` it was built from -- callers flag mutations with
    :meth:`mark_dirty` (the controller does this from every transactional
    mutator) and the next :meth:`sync` ships the delta to every worker.
    """

    def __init__(self, groups, workers: int, backend: Optional[str] = None) -> None:
        if workers < 1:
            raise ShardPoolError("worker count must be >= 1")
        backend = backend or BACKEND_PROCESS
        if backend not in (BACKEND_PROCESS, BACKEND_THREAD):
            raise ShardPoolError(
                f"persistent pool backend must be process or thread, got {backend!r}"
            )
        self._groups = groups
        self.workers = int(workers)
        self.backend = backend
        self.closed = False
        self.degraded_reason: Optional[str] = None
        self.seals = 0
        self._dirty = False
        self._mirror: List[GroupReplicaSpec] = replica_specs(groups)
        self._fields: Tuple[str, ...] = ()
        self._executor = None
        self._slots: List[List] = []
        self._procs: List[_ProcWorker] = []

        mode = backend
        if mode == BACKEND_PROCESS:
            import multiprocessing as mp

            if "fork" not in mp.get_all_start_methods():
                mode = BACKEND_THREAD
                self.degraded_reason = (
                    "fork start method unavailable; pool degraded to threads"
                )
        if mode == BACKEND_PROCESS:
            try:
                self._start_processes()
            except (OSError, PermissionError) as exc:
                mode = BACKEND_THREAD
                self.degraded_reason = (
                    f"worker processes failed to start ({exc}); "
                    "pool degraded to threads"
                )
        if mode == BACKEND_THREAD:
            self._start_threads()
        self.mode = mode

    # -- construction --------------------------------------------------------

    def _start_processes(self) -> None:
        import multiprocessing as mp

        from repro.traffic.packet import PACKET_FIELDS

        self._ctx = mp.get_context("fork")
        self._fields = tuple(PACKET_FIELDS)
        self._cap = shm_rows()
        row_bytes = self._cap * 8
        self._in_buf = mmap.mmap(-1, self.workers * len(self._fields) * row_bytes)

        layout: Dict[Tuple[int, int], Tuple[int, object, int]] = {}
        offset = 0
        for group in self._groups:
            for cmu in group.cmus:
                dtype = cmu.register._cells.dtype
                size = cmu.register.size
                layout[(group.group_id, cmu.index)] = (offset, dtype, size)
                offset += size * dtype.itemsize
        self._layout = layout
        self._stride = offset
        self._out_buf = mmap.mmap(-1, max(1, self.workers * offset))

        self._in_views = []
        self._out_views = []
        for slot in range(self.workers):
            in_base = slot * len(self._fields) * row_bytes
            self._in_views.append(
                {
                    name: np.frombuffer(
                        self._in_buf,
                        dtype=np.int64,
                        count=self._cap,
                        offset=in_base + j * row_bytes,
                    )
                    for j, name in enumerate(self._fields)
                }
            )
            self._out_views.append(
                {
                    key: np.frombuffer(
                        self._out_buf,
                        dtype=dtype,
                        count=size,
                        offset=slot * self._stride + off,
                    )
                    for key, (off, dtype, size) in layout.items()
                }
            )
        self._procs = [None] * self.workers  # type: ignore[list-item]
        for slot in range(self.workers):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                child_conn,
                self._mirror,
                self._fields,
                self._cap,
                self._in_buf,
                self._out_buf,
                self._layout,
                self._stride,
                slot,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[slot] = _ProcWorker(proc, parent_conn)

    def _start_threads(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._slots = [
            [spec.build() for spec in self._mirror] for _ in range(self.workers)
        ]
        self._executor = ThreadPoolExecutor(max_workers=self.workers)

    # -- introspection -------------------------------------------------------

    def pids(self) -> List[Optional[int]]:
        """Worker process ids (``None`` entries in thread mode)."""
        if self.mode != BACKEND_PROCESS:
            return [None] * self.workers
        return [worker.proc.pid for worker in self._procs]

    def supports(self, trace) -> bool:
        """Whether the shared input window can carry this trace's columns."""
        if self.closed:
            return False
        if self.mode != BACKEND_PROCESS:
            return True
        return set(trace.columns) == set(self._fields)

    # -- delta sync ----------------------------------------------------------

    def mark_dirty(self) -> None:
        """Flag that the live groups mutated; the next run re-syncs."""
        self._dirty = True

    def sync(self) -> int:
        """Ship rule deltas to every worker; returns the op count.

        Always re-derives the live state rather than trusting the dirty
        flag alone: a caller-owned transaction can roll the controller back
        *after* a run synced its mutations, with no hook firing.  Spec
        comparison is a tuple-equality check, so the no-change case costs
        microseconds.
        """
        if self.closed:
            raise ShardPoolError("pool is closed")
        new_mirror = replica_specs(self._groups)
        self._dirty = False
        if new_mirror == self._mirror:
            return 0
        ops = _diff_specs(self._mirror, new_mirror)
        self._mirror = new_mirror
        if not ops:
            return 0
        if self.mode == BACKEND_THREAD:
            for slot_groups in self._slots:
                _apply_ops(
                    {group.group_id: group for group in slot_groups}, ops
                )
            return len(ops)
        acked = []
        for slot, worker in enumerate(self._procs):
            if worker.dead:
                continue
            try:
                worker.conn.send(("sync", ops))
                acked.append(slot)
            except (OSError, ValueError):
                worker.dead = True
        timeout = shard_timeout()
        for slot in acked:
            try:
                msg = self._await(slot, timeout)
                if msg[0] != "ok":
                    raise _WorkerFailure(msg[1], dead=False)
            except _WorkerFailure:
                # A replica that cannot apply the delta is inconsistent;
                # kill it and rebuild from the fresh mirror.
                self._kill(slot)
        self._respawn_dead()
        return len(ops)

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        trace,
        ranges: Sequence[Tuple[int, int]],
        batch_size: int,
        tracked: Optional[frozenset],
        collect_exports: bool,
    ) -> Tuple[List[ShardResult], str, Dict[str, object]]:
        """Run one sharded pass; drop-in for ``sharding._dispatch``.

        Returns ``(results, backend_used, stats)`` with the same stats
        contract (``retries`` / ``timeouts`` / ``events`` / ``timings``
        including ``_submit_pc``) so the caller's span grafting and report
        assembly are shared with the ephemeral path.
        """
        if self.closed:
            raise ShardPoolError("pool is closed")
        if len(ranges) > self.workers:
            raise ShardPoolError(
                f"run needs {len(ranges)} shards, pool has {self.workers} workers"
            )
        if self._dirty:
            self.sync()

        count = len(ranges)
        columns = trace.columns
        stats: Dict[str, object] = {
            "retries": 0, "timeouts": 0, "events": [], "timings": []
        }
        results: List[Optional[ShardResult]] = [None] * count

        def payload(i: int, inject: Optional[Tuple]) -> tuple:
            start, stop = ranges[i]
            return (
                self._mirror,
                {name: col[start:stop] for name, col in columns.items()},
                start,
                stop,
                batch_size,
                tracked,
                collect_exports,
                inject,
            )

        submit_pc: Dict[int, float] = {}
        dispatch_ms: Dict[int, float] = {}
        build_ms: Dict[int, float] = {}
        compute_ms: Dict[int, float] = {i: 0.0 for i in range(count)}
        transport_ms: Dict[int, float] = {i: 0.0 for i in range(count)}
        failed: Dict[int, str] = {}

        def fail(i: int, reason: str, timed_out: bool = False) -> None:
            if i in failed:
                return
            failed[i] = reason
            dispatch_ms[i] = (time.perf_counter() - submit_pc[i]) * 1e3
            if timed_out:
                stats["timeouts"] += 1

        if self.mode == BACKEND_THREAD:
            self._execute_threads(
                ranges, columns, batch_size, tracked, collect_exports,
                results, submit_pc, dispatch_ms, compute_ms, transport_ms,
                failed, stats,
            )
        else:
            self._execute_processes(
                ranges, columns, batch_size, tracked, collect_exports,
                results, submit_pc, dispatch_ms, build_ms, compute_ms,
                transport_ms, failed, fail,
            )

        for i, reason in sorted(failed.items()):
            results[i] = _retry_serially(
                lambda i=i: payload(i, _plan_injection(i)), i, reason, stats
            )
        if self.mode == BACKEND_PROCESS:
            self._respawn_dead()

        for i in range(count):
            events = [e for e in stats["events"] if e["shard"] == i]
            start, stop = ranges[i]
            result = results[i]
            stats["timings"].append(
                {
                    "shard": i,
                    "rows": stop - start,
                    "dispatch_ms": dispatch_ms.get(i, 0.0),
                    "build_ms": (
                        result.build_ms if events else build_ms.get(i, 0.0)
                    ),
                    "compute_ms": (
                        result.compute_ms if events else compute_ms.get(i, 0.0)
                    ),
                    "transport_ms": transport_ms.get(i, 0.0),
                    "retried": bool(events),
                    "retries": len(events),
                    "retry_ms": sum(e.get("elapsed_ms", 0.0) for e in events),
                    "_submit_pc": submit_pc.get(i),
                }
            )
        return results, self.mode, stats

    def _execute_processes(
        self, ranges, columns, batch_size, tracked, collect_exports,
        results, submit_pc, dispatch_ms, build_ms, compute_ms,
        transport_ms, failed, fail,
    ) -> None:
        count = len(ranges)
        timeout = shard_timeout()
        injections = [_plan_injection(i) for i in range(count)]

        for i, (start, stop) in enumerate(ranges):
            worker = self._procs[i]
            submit_pc[i] = time.perf_counter()
            if worker.dead:
                fail(i, "worker process died")
                continue
            try:
                worker.conn.send(
                    ("begin", start, stop, batch_size, tracked,
                     collect_exports, injections[i])
                )
            except (OSError, ValueError):
                worker.dead = True
                fail(i, "worker process died")

        chunk_lists = [
            [
                (lo, min(lo + self._cap, stop))
                for lo in range(start, stop, self._cap)
            ]
            for start, stop in ranges
        ]
        rounds = max(len(chunks) for chunks in chunk_lists)
        for rnd in range(rounds):
            sent = []
            with _RECORDER.span("shard.shm", cat="dataplane", round=rnd):
                for i in range(count):
                    if i in failed or rnd >= len(chunk_lists[i]):
                        continue
                    lo, hi = chunk_lists[i][rnd]
                    t0 = time.perf_counter()
                    views = self._in_views[i]
                    n = hi - lo
                    for name, col in columns.items():
                        views[name][:n] = col[lo:hi]
                    transport_ms[i] += (time.perf_counter() - t0) * 1e3
                    try:
                        self._procs[i].conn.send(("rows", lo, hi))
                        sent.append(i)
                    except (OSError, ValueError):
                        self._procs[i].dead = True
                        fail(i, "worker process died")
            for i in sent:
                try:
                    msg = self._await(i, timeout)
                except _WorkerFailure as exc:
                    fail(i, exc.reason, timed_out=exc.timed_out)
                    continue
                if msg[0] == "ok":
                    compute_ms[i] += msg[1]
                else:
                    fail(i, msg[1])

        harvested = []
        for i in range(count):
            if i in failed:
                continue
            try:
                self._procs[i].conn.send(("harvest",))
                harvested.append(i)
            except (OSError, ValueError):
                self._procs[i].dead = True
                fail(i, "worker process died")
        for i in harvested:
            try:
                msg = self._await(i, timeout)
            except _WorkerFailure as exc:
                fail(i, exc.reason, timed_out=exc.timed_out)
                continue
            if msg[0] != "ok":
                fail(i, msg[1])
                continue
            _, records, exports, out_ms, worker_build_ms = msg
            journal = ShardJournal(tracked)
            journal._records = records
            start, stop = ranges[i]
            results[i] = ShardResult(
                start, stop, self._out_views[i], journal, exports,
                build_ms=worker_build_ms, compute_ms=compute_ms[i],
            )
            build_ms[i] = worker_build_ms
            transport_ms[i] += out_ms
            dispatch_ms[i] = (time.perf_counter() - submit_pc[i]) * 1e3

    def _execute_threads(
        self, ranges, columns, batch_size, tracked, collect_exports,
        results, submit_pc, dispatch_ms, compute_ms, transport_ms,
        failed, stats,
    ) -> None:
        from concurrent.futures import TimeoutError as FuturesTimeout

        timeout = shard_timeout()
        futures = {}
        for i, (start, stop) in enumerate(ranges):
            inject = _plan_injection(i)
            submit_pc[i] = time.perf_counter()
            futures[i] = self._executor.submit(
                self._thread_run, self._slots[i], columns, start, stop,
                batch_size, tracked, collect_exports, inject,
            )
        stale = []
        for i, future in futures.items():
            try:
                results[i], compute_ms[i], transport_ms[i] = future.result(
                    timeout=timeout
                )
            except FuturesTimeout:
                stats["timeouts"] += 1
                failed[i] = "shard timed out"
                stale.append(i)
            except Exception as exc:  # noqa: BLE001 - recovered by retry
                failed[i] = f"{type(exc).__name__}: {exc}"
                stale.append(i)
            dispatch_ms[i] = (time.perf_counter() - submit_pc[i]) * 1e3
        if stale:
            # A hung thread may still own its slot's replicas; abandon the
            # executor and rebuild every stale slot from the mirror.
            self._executor.shutdown(wait=False, cancel_futures=True)
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(max_workers=self.workers)
            for i in stale:
                self._slots[i] = [spec.build() for spec in self._mirror]

    @staticmethod
    def _thread_run(
        groups, columns, start, stop, batch_size, tracked, collect_exports,
        inject,
    ):
        try:
            _execute_injection(inject, start)
            journal = ShardJournal(tracked)
            for group in groups:
                for cmu in group.cmus:
                    cmu.journal = journal
            exports: Optional[Dict[str, np.ndarray]] = (
                {} if collect_exports else None
            )
            n = stop - start
            t0 = time.perf_counter()
            for off in range(0, n, batch_size):
                hi = min(off + batch_size, n)
                batch = PacketBatch(
                    {
                        name: col[start + off : start + hi]
                        for name, col in columns.items()
                    },
                    length=hi - off,
                )
                journal.offset = start + off
                for group in groups:
                    group.process_batch(batch)
                if exports is not None:
                    _accumulate_exports(exports, batch, off, n)
            compute = (time.perf_counter() - t0) * 1e3
            t1 = time.perf_counter()
            cells: Dict[Tuple[int, int], np.ndarray] = {}
            for group in groups:
                for cmu in group.cmus:
                    cmu.journal = None
                    cmu._digests.clear()
                    if cmu.task_plans():
                        cells[(group.group_id, cmu.index)] = (
                            cmu.register.snapshot_cells()
                        )
                        cmu.register.reset()
            out_ms = (time.perf_counter() - t1) * 1e3
            result = ShardResult(
                start, stop, cells, journal, exports,
                build_ms=0.0, compute_ms=compute,
            )
            return result, compute, out_ms
        except BaseException:
            _scrub(groups)
            raise

    # -- worker lifecycle ----------------------------------------------------

    def _await(self, slot: int, timeout: Optional[float]):
        """Wait for one reply; raises :class:`_WorkerFailure` on death or
        deadline (terminating the worker so it cannot wedge the pipe).

        The deadline is per reply, mirroring the ephemeral model's
        per-shard future timeout."""
        worker = self._procs[slot]
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    return worker.conn.recv()
            except (EOFError, OSError):
                worker.dead = True
                raise _WorkerFailure("worker process died", dead=True)
            if not worker.proc.is_alive():
                # One last drain: the reply may have been written pre-exit.
                try:
                    if worker.conn.poll(0):
                        return worker.conn.recv()
                except (EOFError, OSError):
                    pass
                worker.dead = True
                raise _WorkerFailure("worker process died", dead=True)
            if deadline is not None and time.perf_counter() > deadline:
                self._kill(slot)
                raise _WorkerFailure("shard timed out", dead=True, timed_out=True)

    def _kill(self, slot: int) -> None:
        worker = self._procs[slot]
        worker.dead = True
        try:
            worker.proc.terminate()
        except Exception:  # noqa: BLE001 - already gone
            pass

    def _respawn_dead(self) -> None:
        for slot, worker in enumerate(self._procs):
            if not worker.dead:
                continue
            try:
                worker.proc.join(0.5)
            except Exception:  # noqa: BLE001 - already reaped
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            self._spawn(slot)

    # -- epoch rotation --------------------------------------------------

    def seal_epoch(self, epoch_index: int) -> None:
        """Epoch-rotation barrier: replicas confirm they are zeroed.

        Harvest already resets worker registers after every run, so this is
        a cheap round trip -- it exists so rotation has an explicit
        synchronization point and so a wedged worker is caught (and
        respawned) at the epoch boundary instead of mid-ingest.
        """
        if self.closed:
            return
        self.seals += 1
        if self.mode == BACKEND_THREAD:
            for slot_groups in self._slots:
                _scrub(slot_groups)
            return
        sealed = []
        for slot, worker in enumerate(self._procs):
            if worker.dead:
                continue
            try:
                worker.conn.send(("seal", epoch_index))
                sealed.append(slot)
            except (OSError, ValueError):
                worker.dead = True
        timeout = shard_timeout()
        for slot in sealed:
            try:
                self._await(slot, timeout)
            except _WorkerFailure:
                pass
        self._respawn_dead()

    # -- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and release the pool (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self.mode == BACKEND_THREAD:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._slots = []
            return
        for worker in self._procs:
            if worker.dead:
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._procs:
            try:
                worker.proc.join(0.5)
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join(0.2)
            except Exception:  # noqa: BLE001 - shutdown best effort
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        self._in_views = []
        self._out_views = []

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
