"""Tofino switch model: pipeline + baseline (switch.p4) footprint.

Figure 13a reports the utilization of six resources for Tofino's baseline
``switch.p4`` project alone and with 1 / 3 CMU Groups integrated.  The
baseline occupancies below are approximations of the figure's left bars; the
reproduction's claim is about the *increment* a CMU Group adds, which comes
from the resource model, not these constants.

Figure 2's static-sketch footprints are also computed here: a conventionally
deployed sketch with ``d`` rows consumes ``d`` hash units, ``d`` SALUs,
``d`` logical table IDs, and its counters' SRAM -- per flow key, which is why
four coexisting single-key sketches already strain the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.dataplane.phv import STANDARD_HEADER_FIELDS, STANDARD_METADATA_FIELDS, FieldSpec
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.resources import (
    NUM_STAGES,
    ResourceVector,
    sram_blocks_for,
)
from repro.dataplane.runtime import RuntimeApi
from repro.telemetry import TELEMETRY as _TELEMETRY, update_resource_gauges

#: Fractions of each pipeline-wide resource the switch.p4 baseline occupies.
#: Approximated from Figure 13a's left bars.
SWITCH_P4_BASELINE_UTILIZATION = {
    "hash_units": 0.30,
    "salus": 0.08,
    "vliw": 0.32,
    "tcam_blocks": 0.35,
    "sram_blocks": 0.30,
    "table_ids": 0.35,
    "phv_bits": 0.40,
}


class TofinoSwitch:
    """One pipeline of a Tofino switch plus its runtime API.

    ``with_baseline=True`` pre-charges the ``switch.p4`` footprint so CMU
    Group integration experiments (Fig. 13a) measure increments over a
    realistic starting point.
    """

    def __init__(self, num_stages: int = NUM_STAGES, with_baseline: bool = False) -> None:
        self.pipeline = Pipeline(num_stages=num_stages)
        self.runtime = RuntimeApi()
        self.candidate_fields: Sequence[FieldSpec] = STANDARD_HEADER_FIELDS
        self.metadata_fields: Sequence[FieldSpec] = STANDARD_METADATA_FIELDS
        self.with_baseline = with_baseline
        if with_baseline:
            self._charge_baseline()

    def _charge_baseline(self) -> None:
        for stage in self.pipeline.stages:
            demand = ResourceVector(
                hash_units=stage.capacity.hash_units
                * SWITCH_P4_BASELINE_UTILIZATION["hash_units"],
                salus=stage.capacity.salus * SWITCH_P4_BASELINE_UTILIZATION["salus"],
                vliw=stage.capacity.vliw * SWITCH_P4_BASELINE_UTILIZATION["vliw"],
                tcam_blocks=stage.capacity.tcam_blocks
                * SWITCH_P4_BASELINE_UTILIZATION["tcam_blocks"],
                sram_blocks=stage.capacity.sram_blocks
                * SWITCH_P4_BASELINE_UTILIZATION["sram_blocks"],
                table_ids=stage.capacity.table_ids
                * SWITCH_P4_BASELINE_UTILIZATION["table_ids"],
            )
            stage.allocate("switch.p4", demand)
        phv_baseline = int(
            self.pipeline.phv_layout.budget_bits
            * SWITCH_P4_BASELINE_UTILIZATION["phv_bits"]
        )
        self.pipeline.phv_layout.allocate(FieldSpec("switch.p4/headers", phv_baseline))

    def utilization(self) -> Dict[str, float]:
        return self.pipeline.utilization()

    def record_telemetry(self, scope: str = "switch") -> Dict[str, float]:
        """Publish the live ResourceVector utilization as telemetry gauges."""
        utilization = self.utilization()
        update_resource_gauges(utilization, _TELEMETRY.registry, scope=scope)
        return utilization

    def process_packet(self, fields: dict) -> None:
        self.pipeline.process(fields)

    def process_batch(self, batch) -> None:
        """Run a :class:`~repro.traffic.batch.PacketBatch` through the pipe."""
        self.pipeline.process_batch(batch)

    def datapath_groups(self) -> list:
        """The CMU groups placed on this pipeline, in pipeline order."""
        return datapath_groups(self.pipeline)

    def process_trace(self, trace, batch_size=None, workers=None):
        """Replay a trace through the pipeline; ``workers > 1`` shards it."""
        if workers is not None and workers > 1:
            return self.process_trace_sharded(trace, workers, batch_size=batch_size)
        if batch_size is not None:
            for batch in trace.iter_batches(batch_size):
                self.pipeline.process_batch(batch)
            return None
        for fields in trace.iter_fields():
            self.pipeline.process(fields)
        return None

    def process_trace_sharded(self, trace, workers, batch_size=None, backend=None):
        """Sharded parallel replay over the pipeline's placed CMU groups.

        Worker replicas execute the groups directly (in pipeline order, the
        same order the placement hooks fire); merged state is written back
        into this pipeline's live groups.
        """
        from repro.dataplane.sharding import run_sharded

        return run_sharded(
            datapath_groups(self.pipeline), trace, workers,
            batch_size=batch_size, backend=backend,
        )


def datapath_groups(pipeline: Pipeline) -> list:
    """Discover the CMU groups attached to a pipeline's stages.

    Placement attaches each group's ``process``/``process_batch`` bound
    methods as operation-stage hooks; walking the hook entries in stage
    order recovers the groups in the order packets traverse them.
    """
    from repro.core.cmu_group import CmuGroup

    groups = []
    seen = set()
    for stage in pipeline.stages:
        for hook, _ in stage.hook_entries():
            owner = getattr(hook, "__self__", None)
            if isinstance(owner, CmuGroup) and id(owner) not in seen:
                seen.add(id(owner))
                groups.append(owner)
    return groups


# ---------------------------------------------------------------------------
# Static (conventional) sketch deployment footprints -- Figure 2.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticSketchSpec:
    """Resource shape of a conventionally deployed sketch (one flow key)."""

    name: str
    rows: int
    buckets_per_row: int
    bucket_bits: int
    #: Extra logical tables beyond the per-row register tables (e.g. the
    #: preprocessing / result-export tables some sketches need).
    extra_tables: int = 0

    def footprint(self) -> ResourceVector:
        sram = sum(
            sram_blocks_for(self.buckets_per_row, self.bucket_bits)
            for _ in range(self.rows)
        )
        # Hardware rounds each row's register up to at least one SRAM block.
        sram = max(sram, float(self.rows))
        return ResourceVector(
            hash_units=self.rows,
            salus=self.rows,
            vliw=self.rows + self.extra_tables,
            tcam_blocks=0,
            sram_blocks=sram,
            table_ids=self.rows + self.extra_tables,
            phv_bits=104,  # the statically copied 5-tuple key
        )


#: Typical configurations of the four sketches Figure 2 profiles.
FIGURE2_SKETCHES = (
    StaticSketchSpec("BloomFilter", rows=3, buckets_per_row=2**18, bucket_bits=1),
    StaticSketchSpec("CMS", rows=3, buckets_per_row=2**16, bucket_bits=32),
    StaticSketchSpec("HLL", rows=1, buckets_per_row=2**14, bucket_bits=8, extra_tables=2),
    StaticSketchSpec("MRAC", rows=1, buckets_per_row=2**16, bucket_bits=32, extra_tables=1),
)


def static_sketch_utilization(
    specs: Iterable[StaticSketchSpec] = FIGURE2_SKETCHES,
    num_stages: int = NUM_STAGES,
) -> Dict[str, Dict[str, float]]:
    """Per-sketch and summed utilization of the four Figure 2 resources.

    Returns ``{sketch_name: {resource: fraction}}`` plus a ``"Sum"`` row,
    reporting the resources Figure 2 plots: hash units, logical table IDs,
    SALUs, and stateful memory.
    """
    pipeline = Pipeline(num_stages=num_stages)
    capacity = pipeline.total_capacity()
    out: Dict[str, Dict[str, float]] = {}
    total = ResourceVector.zero()
    for spec in specs:
        vec = spec.footprint()
        total = total + vec
        out[spec.name] = _figure2_fractions(vec, capacity)
    out["Sum"] = _figure2_fractions(total, capacity)
    return out


#: A "typical scenario" static sketch (the CocoSketch remark the paper cites):
#: three 0.5 MB counter rows per flow key.
TYPICAL_STATIC_SKETCH = StaticSketchSpec(
    "typical-CMS", rows=3, buckets_per_row=2**17, bucket_bits=32
)


def max_static_keys(
    spec: StaticSketchSpec = TYPICAL_STATIC_SKETCH, num_stages: int = NUM_STAGES
) -> int:
    """How many single-key sketch deployments fit alongside switch.p4.

    Figure 2's conclusion ("cannot support more than four single-key
    sketches in a typical scenario"): each key statically consumes one hash
    unit, one SALU, and one whole register per row on top of the baseline.
    Rows are placed greedily stage by stage; a register must fit within a
    single stage's SRAM (hardware registers cannot span stages), which is
    the binding constraint at typical row sizes.
    """
    switch = TofinoSwitch(num_stages=num_stages, with_baseline=True)
    row_demand = ResourceVector(
        hash_units=1,
        salus=1,
        vliw=1,
        sram_blocks=max(
            1.0, sram_blocks_for(spec.buckets_per_row, spec.bucket_bits)
        ),
        table_ids=1,
    )
    deployed = 0
    while deployed <= 64:
        rows_placed = 0
        for row in range(spec.rows):
            for stage in switch.pipeline.stages:
                if (stage.used + row_demand).fits_within(stage.capacity):
                    stage.allocate(f"static-{deployed}-row{row}", row_demand)
                    rows_placed += 1
                    break
        if rows_placed < spec.rows:
            return deployed
        try:
            switch.pipeline.phv_layout.allocate(
                FieldSpec(f"static-key-{deployed}", 104)
            )
        except Exception:
            return deployed
        deployed += 1
    return deployed


def _figure2_fractions(vec: ResourceVector, capacity: ResourceVector) -> Dict[str, float]:
    util = vec.utilization(capacity)
    return {
        "hash_unit": util["hash_units"],
        "logical_table_id": util["table_ids"],
        "stateful_alu": util["salus"],
        "stateful_memory": util["sram_blocks"],
    }
