"""Match-action tables: exact, ternary (TCAM), and range matching.

The preparation stage of a CMU leans on TCAM range matching (address
translation, parameter preprocessing), and Figure 11a counts TCAM entries, so
the classic prefix decomposition of ranges into ternary entries is implemented
here and reused both for matching and for resource accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TernaryField:
    """One field of a ternary match key: ``packet & mask == value & mask``."""

    value: int
    mask: int

    def matches(self, packet_value: int) -> bool:
        return (packet_value & self.mask) == (self.value & self.mask)

    @staticmethod
    def exact(value: int, width: int) -> "TernaryField":
        return TernaryField(value, (1 << width) - 1)

    @staticmethod
    def wildcard() -> "TernaryField":
        return TernaryField(0, 0)

    @staticmethod
    def prefix(value: int, prefix_len: int, width: int) -> "TernaryField":
        """LPM-style prefix match on the ``prefix_len`` high bits."""
        if not 0 <= prefix_len <= width:
            raise ValueError(f"prefix_len {prefix_len} out of range for width {width}")
        if prefix_len == 0:
            return TernaryField.wildcard()
        mask = ((1 << prefix_len) - 1) << (width - prefix_len)
        return TernaryField(value & mask, mask)


def range_to_ternary(lo: int, hi: int, width: int) -> List[TernaryField]:
    """Decompose the inclusive range ``[lo, hi]`` into ternary prefixes.

    This is the standard TCAM range-expansion algorithm; the number of
    returned entries is what a real TCAM would consume, which Figure 11a
    measures for the TCAM-based address translation.
    """
    if not 0 <= lo <= hi < (1 << width):
        raise ValueError(f"range [{lo}, {hi}] invalid for width {width}")
    entries: List[TernaryField] = []
    while lo <= hi:
        # Largest power-of-two block aligned at `lo` that fits in [lo, hi].
        max_align = lo & -lo if lo else 1 << width
        size = max_align
        while size > hi - lo + 1:
            size >>= 1
        prefix_len = width - size.bit_length() + 1
        entries.append(TernaryField.prefix(lo, prefix_len, width))
        lo += size
    return entries


@dataclass(frozen=True)
class TableEntry:
    """One installed rule: a match, an action name, and action arguments.

    Higher ``priority`` wins among ternary entries that all match.
    """

    match: Tuple[Tuple[str, TernaryField], ...]
    action: str
    args: Tuple[Tuple[str, Any], ...] = ()
    priority: int = 0

    @staticmethod
    def build(
        match: Mapping[str, TernaryField],
        action: str,
        args: Optional[Mapping[str, Any]] = None,
        priority: int = 0,
    ) -> "TableEntry":
        return TableEntry(
            match=tuple(sorted(match.items())),
            action=action,
            args=tuple(sorted((args or {}).items())),
            priority=priority,
        )

    def args_dict(self) -> Dict[str, Any]:
        return dict(self.args)

    def matches(self, fields: Mapping[str, int]) -> bool:
        return all(tf.matches(int(fields.get(name, 0))) for name, tf in self.match)


class MatchActionTable:
    """Base class: a named table holding prioritized entries."""

    def __init__(self, name: str, key_fields: Sequence[str], max_entries: int = 4096) -> None:
        self.name = name
        self.key_fields = tuple(key_fields)
        self.max_entries = max_entries
        self._entries: List[TableEntry] = []
        self.default_action: Optional[str] = None
        self.default_args: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[TableEntry, ...]:
        return tuple(self._entries)

    def set_default(self, action: str, args: Optional[Mapping[str, Any]] = None) -> None:
        self.default_action = action
        self.default_args = dict(args or {})

    def insert(self, entry: TableEntry) -> TableEntry:
        for name, _ in entry.match:
            if name not in self.key_fields:
                raise KeyError(
                    f"table {self.name!r} has no key field {name!r} "
                    f"(keys: {self.key_fields})"
                )
        if len(self._entries) >= self.max_entries:
            raise TableFullError(
                f"table {self.name!r} is full ({self.max_entries} entries)"
            )
        self._entries.append(entry)
        self._entries.sort(key=lambda e: -e.priority)
        return entry

    def remove(self, entry: TableEntry) -> None:
        self._entries.remove(entry)

    def remove_where(self, predicate: Callable[[TableEntry], bool]) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        return before - len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def lookup(self, fields: Mapping[str, int]) -> Tuple[Optional[str], Dict[str, Any]]:
        """First (highest-priority) matching entry, else the default action."""
        for entry in self._entries:
            if entry.matches(fields):
                return entry.action, entry.args_dict()
        return self.default_action, dict(self.default_args)

    def match_batch(self, batch, n: Optional[int] = None) -> np.ndarray:
        """Winning entry position per packet of a columnar batch.

        ``batch`` is a :class:`repro.traffic.batch.PacketBatch` (anything
        with ``get(name) -> ndarray`` works).  Returns an ``int64`` array
        whose element is the index into :attr:`entries` of the
        highest-priority matching entry, or ``-1`` where only the default
        action applies -- the batched dual of :meth:`lookup`, iterating the
        (few) installed entries instead of the (many) packets.
        """
        if n is None:
            n = len(batch)
        out = np.full(n, -1, dtype=np.int64)
        unassigned = np.ones(n, dtype=bool)
        for pos, entry in enumerate(self._entries):
            if not unassigned.any():
                break
            candidate = unassigned.copy()
            for name, tf in entry.match:
                column = batch.get(name)
                candidate &= (column & tf.mask) == (tf.value & tf.mask)
            out[candidate] = pos
            unassigned &= ~candidate
        return out

    def classify_batch(
        self, batch, arg: str, n: Optional[int] = None, default: int = -1
    ) -> np.ndarray:
        """Per-packet value of integer action argument ``arg``.

        The batched task-selection primitive: for a CMU's task table,
        ``classify_batch(batch, "task_id")`` yields the task-id vector.
        Packets matching no entry (or an entry/default without ``arg``) get
        ``default``.
        """
        positions = self.match_batch(batch, n)
        out = np.full(len(positions), default, dtype=np.int64)
        for pos, entry in enumerate(self._entries):
            value = entry.args_dict().get(arg)
            if value is not None:
                out[positions == pos] = int(value)
        if self.default_action is not None and arg in self.default_args:
            out[positions == -1] = int(self.default_args[arg])
        return out


class TableFullError(RuntimeError):
    """Raised when inserting beyond a table's capacity."""


class ExactMatchTable(MatchActionTable):
    """SRAM-backed exact-match table (hash table in hardware)."""

    def insert_exact(
        self,
        key: Mapping[str, int],
        widths: Mapping[str, int],
        action: str,
        args: Optional[Mapping[str, Any]] = None,
    ) -> TableEntry:
        match = {
            name: TernaryField.exact(value, widths[name]) for name, value in key.items()
        }
        return self.insert(TableEntry.build(match, action, args))


class TernaryMatchTable(MatchActionTable):
    """TCAM-backed ternary table with prefix and range helpers."""

    def insert_range(
        self,
        range_field: str,
        lo: int,
        hi: int,
        width: int,
        action: str,
        args: Optional[Mapping[str, Any]] = None,
        extra_match: Optional[Mapping[str, TernaryField]] = None,
        priority: int = 0,
    ) -> List[TableEntry]:
        """Install ``[lo, hi]`` on ``range_field`` via prefix expansion.

        Returns every physical entry installed, so callers can account for
        the true TCAM cost of a range rule.
        """
        installed = []
        for tf in range_to_ternary(lo, hi, width):
            match = dict(extra_match or {})
            match[range_field] = tf
            installed.append(self.insert(TableEntry.build(match, action, args, priority)))
        return installed

    def tcam_entry_count(self) -> int:
        return len(self._entries)
