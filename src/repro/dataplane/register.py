"""SALU-backed stateful registers.

A *register* on Tofino is a fixed-size SRAM array bound to a stateful ALU.
The hardware constraints FlyMon designs around are modeled explicitly:

* the array's size and bucket bit-width are fixed at "compile" time
  (construction) and cannot change at runtime -- dynamic memory has to be
  realized by address translation on top of this;
* one SALU supports at most :data:`MAX_REGISTER_ACTIONS` pre-loaded register
  actions (Tofino: 4), selected per packet;
* one packet can access the register once (single read-modify-write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Tofino SALUs pre-load at most four register actions.
MAX_REGISTER_ACTIONS = 4

#: Heaviest-bucket multiplicity above which execute_batch folds chains with
#: the action's chain_fn instead of iterating occurrence-rank rounds.  Below
#: this the rank loop's few tiny passes beat a full segmented scan.
_CHAIN_FOLD_THRESHOLD = 4


def segmented_cumsum(x: np.ndarray, seg_start: np.ndarray) -> np.ndarray:
    """Inclusive per-segment prefix sum over contiguous segments.

    ``seg_start`` is a boolean mask marking the first element of each
    segment; ``seg_start[0]`` must be True.
    """
    c = np.cumsum(x)
    starts = np.nonzero(seg_start)[0]
    seg_id = np.cumsum(seg_start) - 1
    base = np.where(starts > 0, c[starts - 1], 0)
    return c - base[seg_id]


def segmented_cumxor(x: np.ndarray, seg_start: np.ndarray) -> np.ndarray:
    """Inclusive per-segment prefix XOR (XOR is its own inverse, so the
    cumsum subtraction trick applies verbatim)."""
    c = np.bitwise_xor.accumulate(x)
    starts = np.nonzero(seg_start)[0]
    seg_id = np.cumsum(seg_start) - 1
    base = np.where(starts > 0, c[starts - 1], 0)
    return c ^ base[seg_id]


def segmented_cummax(x: np.ndarray, seg_start: np.ndarray) -> np.ndarray:
    """Inclusive per-segment running maximum via a Hillis-Steele doubling
    scan: ``O(log n)`` full-array passes instead of one pass per element."""
    n = len(x)
    out = np.array(x, dtype=np.int64, copy=True)
    pos = np.arange(n)
    starts = np.nonzero(seg_start)[0]
    first = starts[np.cumsum(seg_start) - 1]
    d = 1
    while d < n:
        can = pos - d >= first
        shifted = np.empty_like(out)
        shifted[d:] = out[:-d]
        out = np.where(can, np.maximum(out, shifted), out)
        d <<= 1
    return out


def segmented_compose_masks(
    A: np.ndarray, B: np.ndarray, seg_start: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Inclusive per-segment prefix composition of ``x -> (x & A) | B``.

    Mask pairs are closed under composition (``later . earlier`` is
    ``(Ae & Al, (Be & Al) | Bl)``), so a doubling scan folds an arbitrary
    AND/OR chain in ``O(log n)`` passes.
    """
    n = len(A)
    A = np.array(A, dtype=np.int64, copy=True)
    B = np.array(B, dtype=np.int64, copy=True)
    pos = np.arange(n)
    starts = np.nonzero(seg_start)[0]
    first = starts[np.cumsum(seg_start) - 1]
    d = 1
    while d < n:
        can = pos - d >= first
        Ae = np.empty_like(A)
        Be = np.empty_like(B)
        Ae[d:] = A[:-d]
        Be[d:] = B[:-d]
        A, B = (
            np.where(can, Ae & A, A),
            np.where(can, (Be & A) | B, B),
        )
        d <<= 1
    return A, B


def chain_all(ok: np.ndarray, seg_start: np.ndarray) -> np.ndarray:
    """Broadcast a per-element predicate to per-segment ALL (a chain is only
    usable as a unit -- one bad step poisons the whole bucket chain)."""
    starts = np.nonzero(seg_start)[0]
    counts = np.diff(np.append(starts, len(ok)))
    return np.repeat(np.logical_and.reduceat(ok, starts), counts)


def _occurrence_ranks(indices: np.ndarray) -> np.ndarray:
    """Per-element occurrence count of its value among earlier elements.

    ``[7, 3, 7, 7, 3] -> [0, 0, 1, 2, 1]``: the serialization order batched
    register execution must respect for duplicate buckets.
    """
    n = len(indices)
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    run_start = np.ones(n, dtype=bool)
    run_start[1:] = sorted_idx[1:] != sorted_idx[:-1]
    start_positions = np.nonzero(run_start)[0]
    run_id = np.cumsum(run_start) - 1
    ranks_sorted = np.arange(n) - start_positions[run_id]
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


@dataclass(frozen=True)
class RegisterAction:
    """A pre-loaded stateful operation.

    ``fn(stored_value, p1, p2) -> (new_value, result)`` where ``result`` is
    the value exported back to the PHV (Tofino register actions can output
    one word).  Values are treated as unsigned integers of the register's
    bucket width; the register clamps the stored value on write.

    ``batch_fn`` is the optional vectorized form used by
    :meth:`Register.execute_batch`: the same signature over equal-length
    ``int64`` arrays, returning ``(new_values, results)`` arrays.  It must be
    element-wise equivalent to ``fn``; actions without one fall back to a
    per-element scalar loop (exact, just slow).

    ``chain_fn`` optionally folds a whole duplicate-bucket chain at once:
    ``chain_fn(stored, p1, p2, seg_start, value_mask)`` over rows sorted so
    each bucket's packets are contiguous and in arrival order, with
    ``stored`` the bucket's pre-chain value repeated across its rows and
    ``seg_start`` marking chain starts.  It returns ``(new_values, results,
    ok)`` where ``new_values[i]`` is the stored value *after* row ``i``,
    ``results`` the per-row exports, and ``ok`` a per-row validity mask
    (``None`` = exact everywhere).  Chains with any invalid row are re-run
    through the rank loop, so a ``chain_fn`` may use a fast closed form that
    only holds under conditions it can check (no saturation/wrap).
    """

    name: str
    fn: Callable[[int, int, int], Tuple[int, int]]
    batch_fn: Optional[Callable] = None
    chain_fn: Optional[Callable] = None


class Register:
    """A fixed-configuration stateful array plus its SALU.

    ``size`` buckets of ``bit_width`` bits each.  Register actions are
    installed at construction time (compile-phase) via :meth:`load_action`;
    per-packet, :meth:`execute` selects one by name.
    """

    def __init__(self, size: int, bit_width: int = 16) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("register size must be a positive power of two")
        if bit_width not in (1, 8, 16, 32):
            raise ValueError("bit_width must be one of 1, 8, 16, 32")
        self.size = size
        self.bit_width = bit_width
        self.value_mask = (1 << bit_width) - 1
        dtype = np.uint8 if bit_width <= 8 else (np.uint16 if bit_width == 16 else np.uint32)
        self._cells = np.zeros(size, dtype=dtype)
        self._actions: Dict[str, RegisterAction] = {}

    # -- compile-phase configuration -------------------------------------

    def load_action(self, action: RegisterAction) -> None:
        if action.name in self._actions:
            raise ValueError(f"register action {action.name!r} already loaded")
        if len(self._actions) >= MAX_REGISTER_ACTIONS:
            raise RuntimeError(
                f"SALU supports at most {MAX_REGISTER_ACTIONS} register actions"
            )
        self._actions[action.name] = action

    @property
    def action_names(self) -> Tuple[str, ...]:
        return tuple(self._actions)

    # -- per-packet execution ---------------------------------------------

    def execute(self, action_name: str, index: int, p1: int, p2: int) -> int:
        """Run a pre-loaded action on bucket ``index``; returns its result."""
        action = self._actions.get(action_name)
        if action is None:
            raise KeyError(
                f"register action {action_name!r} not pre-loaded "
                f"(have: {self.action_names})"
            )
        idx = index & (self.size - 1)
        stored = int(self._cells[idx])
        new_value, result = action.fn(stored, p1 & self.value_mask, p2 & self.value_mask)
        self._cells[idx] = new_value & self.value_mask
        return result & self.value_mask

    def execute_batch(
        self, action_name: str, indices: np.ndarray, p1: np.ndarray, p2: np.ndarray
    ) -> np.ndarray:
        """Run a pre-loaded action on a whole batch; returns the results.

        Exactly equivalent to calling :meth:`execute` per element in order,
        including duplicate-index read-modify-write chains: packets are
        grouped by their *occurrence rank* within their bucket (first touch
        of each bucket, second touch, ...).  Ranks are processed in order;
        within one rank every bucket is distinct, so the whole rank runs as
        one vectorized gather/compute/scatter.  The number of passes equals
        the heaviest bucket's multiplicity in the batch, not the batch size.
        """
        action = self._actions.get(action_name)
        if action is None:
            raise KeyError(
                f"register action {action_name!r} not pre-loaded "
                f"(have: {self.action_names})"
            )
        idx = np.asarray(indices, dtype=np.int64) & (self.size - 1)
        n = len(idx)
        results = np.zeros(n, dtype=np.int64)
        if n == 0:
            return results
        p1 = np.asarray(p1, dtype=np.int64) & self.value_mask
        p2 = np.asarray(p2, dtype=np.int64) & self.value_mask
        if action.batch_fn is None:
            # Exact fallback for custom actions loaded without a kernel.
            for i in range(n):
                results[i] = self.execute(action_name, int(idx[i]), int(p1[i]), int(p2[i]))
            return results
        ranks = _occurrence_ranks(idx)
        max_rank = int(ranks.max())
        if max_rank == 0:
            self._apply_rank(action, np.arange(n), idx, p1, p2, results)
            return results
        if action.chain_fn is not None and max_rank >= _CHAIN_FOLD_THRESHOLD:
            self._execute_chained(action, idx, p1, p2, results)
            return results
        self._execute_ranked(action, np.arange(n), idx, p1, p2, results)
        return results

    def _execute_chained(
        self,
        action: RegisterAction,
        idx: np.ndarray,
        p1: np.ndarray,
        p2: np.ndarray,
        results: np.ndarray,
    ) -> None:
        """Fold duplicate-bucket chains with the action's ``chain_fn``.

        Rows are stably sorted by bucket so each chain is contiguous in
        arrival order; the kernel computes every row's post-state and export
        in a constant (or logarithmic) number of full-array passes.  Chains
        the kernel flags invalid fall back to the exact rank loop -- chains
        are whole buckets, so the two groups touch disjoint cells and order
        between them is immaterial.
        """
        n = len(idx)
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        seg_start = np.ones(n, dtype=bool)
        seg_start[1:] = sorted_idx[1:] != sorted_idx[:-1]
        stored = self._cells[sorted_idx].astype(np.int64)
        new_values, chain_results, ok = action.chain_fn(
            stored, p1[order], p2[order], seg_start, self.value_mask
        )
        last = np.empty(n, dtype=bool)
        last[:-1] = seg_start[1:]
        last[-1] = True
        if ok is None:
            write = last
            good = slice(None)
            bad = None
        else:
            write = last & ok
            good = ok
            bad = ~ok
        self._cells[sorted_idx[write]] = (
            new_values[write] & self.value_mask
        ).astype(self._cells.dtype)
        results[order[good]] = chain_results[good] & self.value_mask
        if bad is not None and bad.any():
            # order[] is (bucket, arrival) sorted; within each bad bucket the
            # arrival order is intact, which is all the rank loop needs.
            self._execute_ranked(action, order[bad], idx, p1, p2, results)

    def _execute_ranked(
        self,
        action: RegisterAction,
        rows: np.ndarray,
        idx: np.ndarray,
        p1: np.ndarray,
        p2: np.ndarray,
        results: np.ndarray,
    ) -> None:
        """Exact occurrence-rank rounds restricted to ``rows`` (which must
        preserve arrival order within each bucket)."""
        if len(rows) == 0:
            return
        ranks = _occurrence_ranks(idx[rows])
        max_rank = int(ranks.max())
        by_rank = np.argsort(ranks, kind="stable")
        starts = np.searchsorted(ranks[by_rank], np.arange(max_rank + 2))
        for r in range(max_rank + 1):
            sel = rows[by_rank[starts[r] : starts[r + 1]]]
            self._apply_rank(action, sel, idx, p1, p2, results)

    def _apply_rank(
        self,
        action: RegisterAction,
        rows: np.ndarray,
        idx: np.ndarray,
        p1: np.ndarray,
        p2: np.ndarray,
        results: np.ndarray,
    ) -> None:
        buckets = idx[rows]
        stored = self._cells[buckets].astype(np.int64)
        new_values, rank_results = action.batch_fn(stored, p1[rows], p2[rows])
        self._cells[buckets] = (new_values & self.value_mask).astype(self._cells.dtype)
        results[rows] = rank_results & self.value_mask

    # -- control-plane access ---------------------------------------------

    def read(self, index: int) -> int:
        return int(self._cells[index & (self.size - 1)])

    def _check_range(self, start: int, length: int) -> None:
        if length < 0:
            raise IndexError(f"negative range length {length}")
        if not 0 <= start <= self.size or start + length > self.size:
            raise IndexError(f"range [{start}, {start + length}) out of bounds")

    def read_range(self, start: int, length: int) -> np.ndarray:
        """Control-plane bulk read of ``[start, start+length)`` (copy)."""
        self._check_range(start, length)
        return self._cells[start : start + length].astype(np.int64)

    def write(self, index: int, value: int) -> None:
        self._cells[index & (self.size - 1)] = value & self.value_mask

    def reset_range(self, start: int, length: int) -> None:
        """Zero ``[start, start+length)`` -- epoch rollover / task recycle."""
        self._check_range(start, length)
        self._cells[start : start + length] = 0

    def write_range(self, start: int, values: np.ndarray) -> None:
        """Control-plane bulk write of ``[start, start+len(values))`` --
        the restore side of a rolled-back register reset."""
        values = np.asarray(values, dtype=np.int64)
        self._check_range(start, len(values))
        self._cells[start : start + len(values)] = (
            values & self.value_mask
        ).astype(self._cells.dtype)

    def snapshot_cells(self) -> np.ndarray:
        """Copy of the full cell array as ``int64`` (mergeable snapshot)."""
        return self._cells.astype(np.int64)

    def snapshot_into(self, out: np.ndarray) -> None:
        """Copy the cells into a caller-provided native-dtype view.

        The persistent shard runtime points ``out`` at a shared-memory
        window so worker register state crosses the process boundary as a
        single memcpy instead of a pickled array.
        """
        if out.shape != self._cells.shape or out.dtype != self._cells.dtype:
            raise ValueError(
                f"snapshot view is {out.dtype}[{out.shape}], register holds "
                f"{self._cells.dtype}[{self._cells.shape}]"
            )
        out[:] = self._cells

    def load_cells(self, cells: np.ndarray) -> None:
        """Overwrite the full cell array (the merge side of sharded runs)."""
        cells = np.asarray(cells, dtype=np.int64)
        if len(cells) != self.size:
            raise ValueError(
                f"cell array has length {len(cells)}, register holds {self.size}"
            )
        self._cells[:] = (cells & self.value_mask).astype(self._cells.dtype)

    def reset(self) -> None:
        self._cells[:] = 0

    @property
    def total_bits(self) -> int:
        return self.size * self.bit_width

    def __repr__(self) -> str:
        return f"Register(size={self.size}, bit_width={self.bit_width})"
