"""SALU-backed stateful registers.

A *register* on Tofino is a fixed-size SRAM array bound to a stateful ALU.
The hardware constraints FlyMon designs around are modeled explicitly:

* the array's size and bucket bit-width are fixed at "compile" time
  (construction) and cannot change at runtime -- dynamic memory has to be
  realized by address translation on top of this;
* one SALU supports at most :data:`MAX_REGISTER_ACTIONS` pre-loaded register
  actions (Tofino: 4), selected per packet;
* one packet can access the register once (single read-modify-write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

#: Tofino SALUs pre-load at most four register actions.
MAX_REGISTER_ACTIONS = 4


@dataclass(frozen=True)
class RegisterAction:
    """A pre-loaded stateful operation.

    ``fn(stored_value, p1, p2) -> (new_value, result)`` where ``result`` is
    the value exported back to the PHV (Tofino register actions can output
    one word).  Values are treated as unsigned integers of the register's
    bucket width; the register clamps the stored value on write.
    """

    name: str
    fn: Callable[[int, int, int], Tuple[int, int]]


class Register:
    """A fixed-configuration stateful array plus its SALU.

    ``size`` buckets of ``bit_width`` bits each.  Register actions are
    installed at construction time (compile-phase) via :meth:`load_action`;
    per-packet, :meth:`execute` selects one by name.
    """

    def __init__(self, size: int, bit_width: int = 16) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("register size must be a positive power of two")
        if bit_width not in (1, 8, 16, 32):
            raise ValueError("bit_width must be one of 1, 8, 16, 32")
        self.size = size
        self.bit_width = bit_width
        self.value_mask = (1 << bit_width) - 1
        dtype = np.uint8 if bit_width <= 8 else (np.uint16 if bit_width == 16 else np.uint32)
        self._cells = np.zeros(size, dtype=dtype)
        self._actions: Dict[str, RegisterAction] = {}

    # -- compile-phase configuration -------------------------------------

    def load_action(self, action: RegisterAction) -> None:
        if action.name in self._actions:
            raise ValueError(f"register action {action.name!r} already loaded")
        if len(self._actions) >= MAX_REGISTER_ACTIONS:
            raise RuntimeError(
                f"SALU supports at most {MAX_REGISTER_ACTIONS} register actions"
            )
        self._actions[action.name] = action

    @property
    def action_names(self) -> Tuple[str, ...]:
        return tuple(self._actions)

    # -- per-packet execution ---------------------------------------------

    def execute(self, action_name: str, index: int, p1: int, p2: int) -> int:
        """Run a pre-loaded action on bucket ``index``; returns its result."""
        action = self._actions.get(action_name)
        if action is None:
            raise KeyError(
                f"register action {action_name!r} not pre-loaded "
                f"(have: {self.action_names})"
            )
        idx = index & (self.size - 1)
        stored = int(self._cells[idx])
        new_value, result = action.fn(stored, p1 & self.value_mask, p2 & self.value_mask)
        self._cells[idx] = new_value & self.value_mask
        return result & self.value_mask

    # -- control-plane access ---------------------------------------------

    def read(self, index: int) -> int:
        return int(self._cells[index & (self.size - 1)])

    def read_range(self, start: int, length: int) -> np.ndarray:
        """Control-plane bulk read of ``[start, start+length)`` (copy)."""
        if not 0 <= start <= self.size or start + length > self.size:
            raise IndexError(f"range [{start}, {start + length}) out of bounds")
        return self._cells[start : start + length].astype(np.int64)

    def write(self, index: int, value: int) -> None:
        self._cells[index & (self.size - 1)] = value & self.value_mask

    def reset_range(self, start: int, length: int) -> None:
        """Zero ``[start, start+length)`` -- epoch rollover / task recycle."""
        if not 0 <= start <= self.size or start + length > self.size:
            raise IndexError(f"range [{start}, {start + length}) out of bounds")
        self._cells[start : start + length] = 0

    def reset(self) -> None:
        self._cells[:] = 0

    @property
    def total_bits(self) -> int:
        return self.size * self.bit_width

    def __repr__(self) -> str:
        return f"Register(size={self.size}, bit_width={self.bit_width})"
