"""Table-driven CRC-32 variants.

Tofino's hash distribution units compute CRCs with configurable polynomials;
this module implements the standard reflected table-driven algorithm for the
common 32-bit polynomials so different hash units can genuinely use
*different* CRC functions (not just salted copies of one).

The implementation follows the Rocksoft^tm model parameters (reflected
in/out, init ``0xFFFFFFFF``, final XOR ``0xFFFFFFFF``) used by the familiar
CRC-32 variants below.
"""

from __future__ import annotations

from typing import Dict, Tuple

MASK32 = 0xFFFFFFFF

#: Common 32-bit polynomials (normal representation).
POLY_CRC32 = 0x04C11DB7  # IEEE 802.3 / zlib
POLY_CRC32C = 0x1EDC6F41  # Castagnoli (iSCSI)
POLY_CRC32K = 0x741B8CD7  # Koopman
POLY_CRC32Q = 0x814141AB  # aviation (AIXM)

STANDARD_POLYNOMIALS: Tuple[int, ...] = (
    POLY_CRC32,
    POLY_CRC32C,
    POLY_CRC32K,
    POLY_CRC32Q,
)

_tables: Dict[int, Tuple[int, ...]] = {}


def _reflect(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def _table_for(poly: int) -> Tuple[int, ...]:
    table = _tables.get(poly)
    if table is not None:
        return table
    reflected_poly = _reflect(poly, 32)
    entries = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ reflected_poly if crc & 1 else crc >> 1
        entries.append(crc & MASK32)
    table = tuple(entries)
    _tables[poly] = table
    return table


class Crc32:
    """One CRC-32 variant (reflected, init/final-xor ``0xFFFFFFFF``)."""

    def __init__(self, poly: int = POLY_CRC32) -> None:
        if not 0 < poly <= MASK32:
            raise ValueError("polynomial must be a non-zero 32-bit value")
        self.poly = poly
        self._table = _table_for(poly)

    def compute(self, data: bytes, init: int = MASK32) -> int:
        crc = init & MASK32
        table = self._table
        for byte in data:
            crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
        return crc ^ MASK32

    def compute_batch(self, data, init: int = MASK32):
        """Vectorized :meth:`compute` over an ``(n, L)`` uint8 matrix.

        Row ``i`` of the result equals ``compute(bytes(data[i]))``; the byte
        loop runs over the (short, fixed) message length while every step is
        vectorized over the batch.
        """
        import numpy as np

        table = self._table_array()
        data = np.ascontiguousarray(data, dtype=np.uint8)
        crc = np.full(data.shape[0], init & MASK32, dtype=np.uint32)
        for j in range(data.shape[1]):
            crc = (crc >> np.uint32(8)) ^ table[(crc ^ data[:, j]) & np.uint32(0xFF)]
        return crc ^ np.uint32(MASK32)

    def _table_array(self):
        import numpy as np

        arr = getattr(self, "_table_np", None)
        if arr is None:
            arr = np.array(self._table, dtype=np.uint32)
            self._table_np = arr
        return arr

    def __repr__(self) -> str:
        return f"Crc32(poly={self.poly:#010x})"


def crc_family(count: int) -> Tuple[Crc32, ...]:
    """Up to ``len(STANDARD_POLYNOMIALS)`` genuinely distinct CRC functions,
    then additional odd polynomials derived deterministically."""
    crcs = []
    for i in range(count):
        if i < len(STANDARD_POLYNOMIALS):
            crcs.append(Crc32(STANDARD_POLYNOMIALS[i]))
        else:
            # Derive further odd (degree-32) polynomials deterministically.
            poly = (0x04C11DB7 ^ (0x9E3779B9 * (i + 1))) & MASK32 | 1
            crcs.append(Crc32(poly))
    return tuple(crcs)
