"""RMT (Tofino-like) data-plane substrate.

The modules here model the hardware the paper prototypes on, at the level of
detail FlyMon's claims depend on:

* :mod:`repro.dataplane.resources` -- per-MAU-stage resource vectors and
  capacities (hash distribution units, SALUs, VLIW, TCAM, SRAM, logical table
  IDs, PHV bits).
* :mod:`repro.dataplane.phv` -- packet header vector layout and per-packet
  field containers.
* :mod:`repro.dataplane.hashing` -- CRC-style hash functions and dynamic hash
  units with runtime-configurable field masks (the ``tna_dyn_hashing``
  feature FlyMon's compression stage relies on).
* :mod:`repro.dataplane.tables` -- exact and ternary (TCAM) match-action
  tables, including the range-to-ternary expansion used to count TCAM entries.
* :mod:`repro.dataplane.register` -- SALU-backed stateful registers with a
  bounded set of pre-loaded register actions.
* :mod:`repro.dataplane.stage` / :mod:`repro.dataplane.pipeline` -- MAU stages
  and the 12-stage pipeline with resource admission control.
* :mod:`repro.dataplane.runtime` -- a P4Runtime-like rule-installation API
  with the millisecond-scale latency model measured in the paper.
* :mod:`repro.dataplane.switch` -- a Tofino switch model, including the
  ``switch.p4`` baseline footprint used by Figure 13a.
* :mod:`repro.dataplane.sharding` -- sharded parallel execution of the
  batched datapath with exact register-state merging.
"""

from repro.dataplane.hashing import DynamicHashUnit, HashFunction
from repro.dataplane.phv import FieldSpec, Phv, PhvLayout
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.register import Register, RegisterAction
from repro.dataplane.resources import STAGE_CAPACITY, ResourceVector
from repro.dataplane.runtime import RuntimeApi
from repro.dataplane.sharding import (
    GroupReplicaSpec,
    ShardJournal,
    ShardRunReport,
    ShardingError,
    default_workers,
    run_sharded,
    shard_ranges,
)
from repro.dataplane.stage import MauStage
from repro.dataplane.switch import TofinoSwitch, datapath_groups
from repro.dataplane.tables import ExactMatchTable, TableEntry, TernaryMatchTable

__all__ = [
    "DynamicHashUnit",
    "ExactMatchTable",
    "FieldSpec",
    "GroupReplicaSpec",
    "HashFunction",
    "MauStage",
    "Phv",
    "PhvLayout",
    "Pipeline",
    "Register",
    "RegisterAction",
    "ResourceVector",
    "RuntimeApi",
    "STAGE_CAPACITY",
    "ShardJournal",
    "ShardRunReport",
    "ShardingError",
    "TableEntry",
    "TernaryMatchTable",
    "TofinoSwitch",
    "datapath_groups",
    "default_workers",
    "run_sharded",
    "shard_ranges",
]
