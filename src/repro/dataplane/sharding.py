"""Sharded parallel execution of the batched datapath.

CMU groups only couple through *forward* PHV chaining (§3.2), and row shards
of a trace only couple through the registers they share.  This module
exploits both: a :class:`~repro.traffic.trace.Trace` is split into
contiguous row shards, each shard runs through a fresh per-worker replica of
the deployed CMU groups (zeroed registers, identical rules and hash
seeding), and the worker register states are merged back into the real data
plane **exactly**:

* **sum** -- an unarmed Cond-ADD whose ``p2`` is a constant covering the
  whole bucket range never blocks an update, so each worker cell is the
  modular sum of its shard's increments and the merge is
  ``(base + sum(workers)) mod 2^w`` (CMS et al.).  Wrap-around commutes with
  the sum; only a counter parking *exactly* on the all-ones value would
  diverge, which is why the law requires >= 8-bit buckets;
* **max** -- MAX registers merge by element-wise maximum (always exact);
* **xor** -- XOR registers merge by element-wise XOR (always exact);
* **or** -- an AND-OR task whose ``p2`` is a non-zero constant only ever
  ORs, and OR-only mask composition degenerates to element-wise OR
  (Bloom/coupon inserts);
* **replay** -- everything else (finite-``p2`` Cond-ADD towers, mixed
  AND-OR, and *every* alarm-armed task): workers journal the task's
  post-sampling, post-preparation ``(row, index, p1, p2)`` stream -- which is
  state-free once chained tasks are excluded -- and the merge replays the
  concatenated journal through a scratch register seeded with the
  coordinator's pre-run cells.  Replay reproduces the exact per-packet
  results, so alarm digests are recomputed bit-identically.

Tasks whose parameters read *upstream CMU exports* (``ResultParam``,
``MinResultsParam``, bloom-coupled inter-arrival) are inherently
order-dependent across the whole trace; deployments containing one fall
back to sequential batched execution with the reason recorded on the
returned :class:`ShardRunReport`.

Workers run in a ``concurrent.futures`` process pool (``fork`` when
available) with automatic thread fallback; ``FLYMON_SHARD_BACKEND`` pins
``process`` / ``thread`` / ``serial`` explicitly.  Inside a worker the
groups are driven directly through ``CmuGroup.process_batch`` -- every stage
hook is columnar, so no shard ever pays the scalar dict round-trip.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.register import Register
from repro.faults import (
    FAULTS,
    FaultError,
    SITE_SHARD_CRASH,
    SITE_SHARD_TIMEOUT,
)
from repro.telemetry import RECORDER as _RECORDER
from repro.traffic.batch import PacketBatch

#: Column-slice size workers use when the caller does not fix one.
DEFAULT_SHARD_BATCH = 8192

#: Seconds the dispatcher waits for one shard's result before declaring it
#: hung and re-dispatching serially (``FLYMON_SHARD_TIMEOUT``; <= 0 disables).
DEFAULT_SHARD_TIMEOUT_S = 30.0

#: Serial re-dispatch attempts for a crashed/hung shard
#: (``FLYMON_SHARD_RETRIES``).
DEFAULT_SHARD_RETRIES = 2

#: Sleep an injected ``shard_timeout`` fault uses when no argument is given.
DEFAULT_INJECTED_SLEEP_S = 0.5

#: Merge laws (per task): how worker register state folds into the base.
LAW_SUM = "sum"
LAW_MAX = "max"
LAW_XOR = "xor"
LAW_OR = "or"
LAW_REPLAY = "replay"

BACKEND_PROCESS = "process"
BACKEND_THREAD = "thread"
BACKEND_SERIAL = "serial"
BACKENDS = (BACKEND_PROCESS, BACKEND_THREAD, BACKEND_SERIAL)

#: Shard runtimes: ``ephemeral`` rebuilds replicas per call (the original
#: fork/pickle model); ``persistent`` keeps a long-lived worker pool with
#: resident replicas and shared-memory register transport.
RUNTIME_EPHEMERAL = "ephemeral"
RUNTIME_PERSISTENT = "persistent"
RUNTIMES = (RUNTIME_EPHEMERAL, RUNTIME_PERSISTENT)


class ShardingError(RuntimeError):
    """Raised for invalid sharded-execution configuration."""


def shard_runtime(runtime: Optional[str] = None) -> str:
    """Resolve the shard runtime: explicit arg > ``FLYMON_SHARD_RUNTIME`` >
    ephemeral.  An explicit argument must be valid; the environment variable
    is lenient (unknown values fall back to ephemeral)."""
    if runtime is not None:
        if runtime not in RUNTIMES:
            raise ShardingError(
                f"unknown shard runtime {runtime!r} (expected one of {RUNTIMES})"
            )
        return runtime
    raw = os.environ.get("FLYMON_SHARD_RUNTIME", "").strip().lower()
    return raw if raw in RUNTIMES else RUNTIME_EPHEMERAL


def shard_timeout() -> Optional[float]:
    """Per-shard result timeout in seconds, or ``None`` when disabled."""
    raw = os.environ.get("FLYMON_SHARD_TIMEOUT", "").strip()
    if not raw:
        return DEFAULT_SHARD_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SHARD_TIMEOUT_S
    return value if value > 0 else None


def shard_retries() -> int:
    """Serial re-dispatch attempts for a failed shard (min 1)."""
    raw = os.environ.get("FLYMON_SHARD_RETRIES", "").strip()
    if not raw:
        return DEFAULT_SHARD_RETRIES
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_SHARD_RETRIES


def default_workers() -> int:
    """Worker count from ``FLYMON_WORKERS`` (unset/empty/invalid -> 1)."""
    raw = os.environ.get("FLYMON_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


def shard_ranges(total: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges covering ``total`` rows.

    At most ``workers`` non-empty shards whose sizes differ by at most one
    (the uneven tail rides on the first shards).
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return []
    count = min(max(1, int(workers)), total)
    size, extra = divmod(total, count)
    ranges = []
    start = 0
    for i in range(count):
        stop = start + size + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class ShardJournal:
    """Per-shard record of tracked tasks' register-input streams.

    Keyed by ``(group_id, cmu_index, task_id)``; each record holds the
    *global* trace rows (shard offset applied) plus the translated bucket
    indices and both parameters, post-sampling and post-preparation -- i.e.
    exactly the arrays :meth:`Register.execute_batch` would consume.  The
    merge concatenates shard journals in shard order and replays them, which
    reproduces the sequential execution bit-for-bit because everything
    upstream of the register is state-free for non-chained tasks.
    """

    __slots__ = ("tracked", "offset", "_records")

    def __init__(self, tracked: Optional[frozenset] = None, offset: int = 0) -> None:
        #: ``None`` tracks every task; else only keys in the set.
        self.tracked = tracked
        #: Global row index of the current batch's first row.
        self.offset = offset
        self._records: Dict[Tuple[int, int, int], list] = {}

    def wants(self, group_id: int, cmu_index: int, task_id: int) -> bool:
        return self.tracked is None or (group_id, cmu_index, task_id) in self.tracked

    def record(
        self,
        group_id: int,
        cmu_index: int,
        task_id: int,
        rows: np.ndarray,
        index: np.ndarray,
        p1: np.ndarray,
        p2: np.ndarray,
    ) -> None:
        self._records.setdefault((group_id, cmu_index, task_id), []).append(
            (
                np.asarray(rows, dtype=np.int64) + self.offset,
                np.asarray(index, dtype=np.int64),
                np.asarray(p1, dtype=np.int64),
                np.asarray(p2, dtype=np.int64),
            )
        )

    def absorb(self, other: "ShardJournal") -> None:
        """Append another journal's records (callers absorb in shard order)."""
        for key, records in other._records.items():
            self._records.setdefault(key, []).extend(records)

    def entries(self, key: Tuple[int, int, int]):
        """Concatenated ``(rows, index, p1, p2)`` for a task, or ``None``.

        Entries come back in global-row order: shards are absorbed in shard
        order and rows inside a shard are already monotonic, but persistent
        pool workers interleave capacity-sized rounds, so a stable sort by
        row restores the sequential stream when needed.
        """
        records = self._records.get(key)
        if not records:
            return None
        rows, index, p1, p2 = (
            np.concatenate(cols) for cols in zip(*records)
        )
        if rows.size > 1 and np.any(rows[1:] < rows[:-1]):
            order = np.argsort(rows, kind="stable")
            rows, index, p1, p2 = rows[order], index[order], p1[order], p2[order]
        return rows, index, p1, p2


@dataclass(frozen=True)
class GroupReplicaSpec:
    """Everything needed to rebuild a :class:`CmuGroup` replica in a worker.

    Replicas start with zeroed registers but identical rules: same hash
    seeding (derived from ``seed_base`` and ``group_id``), same installed
    hash masks, and the same task configs re-installed in install order
    (``cached_translation`` is stripped and re-resolved on install, keeping
    the spec picklable).
    """

    group_id: int
    register_size: int
    bucket_bits: int
    candidate_fields: Tuple
    seed_base: int
    unit_masks: Tuple
    cmu_configs: Tuple[Tuple, ...]

    @staticmethod
    def from_group(group) -> "GroupReplicaSpec":
        from dataclasses import replace as dc_replace

        return GroupReplicaSpec(
            group_id=group.group_id,
            register_size=group.register_size,
            bucket_bits=group.bucket_bits,
            candidate_fields=group.candidate_fields,
            seed_base=group.seed_base,
            unit_masks=tuple(unit.mask for unit in group.hash_units),
            cmu_configs=tuple(
                tuple(
                    dc_replace(plan.config, cached_translation=None)
                    for plan in cmu.task_plans().values()
                )
                for cmu in group.cmus
            ),
        )

    def build(self):
        from repro.core.cmu_group import CmuGroup

        group = CmuGroup(
            self.group_id,
            num_cmus=len(self.cmu_configs),
            compression_units=len(self.unit_masks),
            register_size=self.register_size,
            bucket_bits=self.bucket_bits,
            candidate_fields=self.candidate_fields,
            seed_base=self.seed_base,
        )
        for unit, mask in zip(group.hash_units, self.unit_masks):
            if not mask.is_empty:
                unit.set_mask(mask)
        for cmu, configs in zip(group.cmus, self.cmu_configs):
            for config in configs:
                cmu.install_task(config)
        return group


def replica_specs(groups: Sequence) -> List[GroupReplicaSpec]:
    return [GroupReplicaSpec.from_group(group) for group in groups]


@dataclass
class ShardResult:
    """One worker's output: final replica cells, journal, spliced exports.

    ``build_ms``/``compute_ms`` are measured *inside* the worker with raw
    ``perf_counter`` reads (the worker may live in another process, so it
    cannot append to the dispatcher's flight recorder): replica
    construction vs. the batch loop + register snapshot.
    """

    start: int
    stop: int
    cells: Dict[Tuple[int, int], np.ndarray]
    journal: ShardJournal
    exports: Optional[Dict[str, np.ndarray]]
    build_ms: float = 0.0
    compute_ms: float = 0.0


@dataclass
class ShardRunReport:
    """What a sharded run did: backend, merge laws, fallback, exports.

    ``retries`` counts serial re-dispatches of crashed or hung shards,
    ``timeouts`` how many shard futures exceeded the per-shard deadline,
    and ``shard_events`` carries one record per recovery action
    (``{"shard": i, "attempt": n, "reason": ..., "elapsed_ms": ...}``) so
    callers can audit what degraded and what the recovery cost.

    ``shard_timings`` holds one phase-attributed record per shard --
    ``{"shard", "rows", "dispatch_ms", "build_ms", "compute_ms",
    "transport_ms", "retried", "retries", "retry_ms"}`` -- where
    ``dispatch_ms`` is the dispatcher-observed submit-to-result wall,
    ``build_ms``/``compute_ms`` are the worker's own measurements, and
    ``transport_ms`` is the remainder (pickling, queueing, result
    transport; clamped at zero).  Under the **persistent** runtime
    ``transport_ms`` is instead *measured* copy cost -- the dispatcher's
    write of packet columns into the worker's shared-memory input window
    plus the worker's register snapshot into its output window -- and
    ``build_ms`` is non-zero only on the run that (re)built a resident
    replica.  ``timing`` aggregates the run's phases:
    ``plan_ms`` (law selection, replica specs, base snapshots),
    ``sync_ms`` (persistent runtime only: shipping rule deltas to the
    pool), ``dispatch_ms`` (submit to last result), ``merge_ms`` (export
    splice + journal replay + register fold), ``total_ms``.  Both are
    always populated -- they do not require the flight recorder to be
    enabled.

    ``runtime`` records which shard runtime actually executed the run and
    ``degraded`` carries the reason when a persistent-runtime request had
    to degrade (e.g. ``fork`` unavailable -> thread-mode pool, or no pool
    attached -> ephemeral dispatch).
    """

    packets: int
    workers: int
    shards: int
    backend: str
    fallback: Optional[str]
    merge_laws: Dict[Tuple[int, int, int], str]
    exports: Optional[Dict[str, np.ndarray]] = None
    retries: int = 0
    timeouts: int = 0
    shard_events: List[Dict[str, object]] = field(default_factory=list)
    shard_timings: List[Dict[str, object]] = field(default_factory=list)
    timing: Dict[str, float] = field(default_factory=dict)
    runtime: str = RUNTIME_EPHEMERAL
    degraded: Optional[str] = None


def _accumulate_exports(acc: Dict[str, np.ndarray], batch, offset: int, total: int) -> None:
    """Fold a processed batch's PHV export columns into full-length arrays."""
    n = len(batch)
    for name in batch.column_names:
        if not name.startswith("_cmu_"):
            continue
        col = acc.get(name)
        if col is None:
            col = acc[name] = np.zeros(total, dtype=np.int64)
        col[offset : offset + n] = batch.get(name)


def _execute_injection(inject: Optional[Tuple], start: int) -> None:
    """Act on a parent-planned fault instruction at shard-worker entry.

    ``("crash", "kill", pid)`` hard-exits the worker *process* (downgraded
    to an exception when the worker shares the dispatcher's process, i.e.
    thread/serial backends); any other crash argument raises
    :class:`~repro.faults.FaultError`.  ``("timeout", seconds, pid)``
    sleeps so the dispatcher's per-shard deadline expires.
    """
    if inject is None:
        return
    kind, arg, parent_pid = inject
    if kind == "timeout":
        try:
            seconds = float(arg)
        except (TypeError, ValueError):
            seconds = DEFAULT_INJECTED_SLEEP_S
        time.sleep(seconds)
        return
    if arg == "kill" and os.getpid() != parent_pid:
        os._exit(13)
    raise FaultError(SITE_SHARD_CRASH, {"shard_start": start, "arg": arg})


def _run_shard(
    specs: Sequence[GroupReplicaSpec],
    columns: Dict[str, np.ndarray],
    start: int,
    stop: int,
    batch_size: int,
    tracked: Optional[frozenset],
    collect_exports: bool,
    inject: Optional[Tuple] = None,
) -> ShardResult:
    """Worker body: build replicas, stream the shard, snapshot the state.

    Module-level and driven purely by picklable arguments so it runs
    unchanged under process pools, thread pools, and in-line execution.
    """
    _execute_injection(inject, start)
    t_build = time.perf_counter()
    groups = [spec.build() for spec in specs]
    build_ms = (time.perf_counter() - t_build) * 1e3
    journal = ShardJournal(tracked)
    for group in groups:
        for cmu in group.cmus:
            cmu.journal = journal
    n = stop - start
    exports: Optional[Dict[str, np.ndarray]] = {} if collect_exports else None
    t_compute = time.perf_counter()
    for off in range(0, n, batch_size):
        hi = min(off + batch_size, n)
        batch = PacketBatch(
            {name: col[off:hi] for name, col in columns.items()}, length=hi - off
        )
        journal.offset = start + off
        for group in groups:
            group.process_batch(batch)
        if exports is not None:
            _accumulate_exports(exports, batch, off, n)
    cells: Dict[Tuple[int, int], np.ndarray] = {}
    for group in groups:
        for cmu in group.cmus:
            cmu.journal = None
            if cmu.task_plans():
                cells[(group.group_id, cmu.index)] = cmu.register.snapshot_cells()
    compute_ms = (time.perf_counter() - t_compute) * 1e3
    return ShardResult(
        start, stop, cells, journal, exports,
        build_ms=build_ms, compute_ms=compute_ms,
    )


def _is_chained(config) -> bool:
    """Whether a task's inputs depend on upstream CMU exports (PHV chaining),
    which makes its register stream state-dependent and non-shardable."""
    from repro.core.params import InterarrivalProcessor, MinResultsParam, ResultParam

    if isinstance(config.p1, (ResultParam, MinResultsParam)):
        return True
    if isinstance(config.p2, (ResultParam, MinResultsParam)):
        return True
    processor = config.p1_processor
    if isinstance(processor, InterarrivalProcessor) and processor.bloom_group >= 0:
        return True
    return False


def _merge_law(plan, bucket_bits: int, value_mask: int) -> str:
    """Pick the cheapest exact merge law for one task (see module docs)."""
    from repro.core.operations import OP_AND_OR, OP_COND_ADD, OP_MAX, OP_XOR
    from repro.core.params import ConstParam

    config = plan.config
    if plan.alarm_armed:
        # Alarms fire on state-dependent results; only replay reproduces the
        # exact digest stream.
        return LAW_REPLAY
    if config.op == OP_MAX:
        return LAW_MAX
    if config.op == OP_XOR:
        return LAW_XOR
    if config.op == OP_COND_ADD:
        if (
            isinstance(config.p2, ConstParam)
            and (config.p2.constant & value_mask) == value_mask
            and bucket_bits >= 8
        ):
            return LAW_SUM
        return LAW_REPLAY
    if config.op == OP_AND_OR:
        if isinstance(config.p2, ConstParam) and (config.p2.constant & value_mask):
            return LAW_OR
        return LAW_REPLAY
    return LAW_REPLAY


def _resolve_backend(backend: Optional[str]) -> str:
    if backend is None:
        backend = os.environ.get("FLYMON_SHARD_BACKEND", "").strip() or BACKEND_PROCESS
    if backend not in BACKENDS:
        raise ShardingError(
            f"unknown shard backend {backend!r} (expected one of {BACKENDS})"
        )
    return backend


def _plan_injection(shard_index: int) -> Optional[Tuple]:
    """Parent-side fault planning for one shard dispatch.

    The deterministic hit counter lives in the *dispatcher's* injector, so
    ``shard_crash@2`` fails exactly the second shard regardless of backend
    -- and, one-shot arms disarming on fire, the serial re-dispatch of that
    shard succeeds.  Workers never trip shard sites themselves.
    """
    if not FAULTS.armed:
        return None
    arg = FAULTS.trip(SITE_SHARD_CRASH, shard=shard_index)
    if arg is not None:
        return ("crash", arg if isinstance(arg, str) else "raise", os.getpid())
    arg = FAULTS.trip(SITE_SHARD_TIMEOUT, shard=shard_index)
    if arg is not None:
        sleep = arg if isinstance(arg, str) else str(DEFAULT_INJECTED_SLEEP_S)
        return ("timeout", sleep, os.getpid())
    return None


def _retry_serially(
    build_payload: Callable[[], tuple],
    index: int,
    reason: str,
    stats: Dict[str, object],
) -> ShardResult:
    """Re-dispatch a failed shard on the serial path, bounded by
    :func:`shard_retries`; raises :class:`ShardingError` when exhausted."""
    from repro.telemetry import EV_SHARD_RETRY, TELEMETRY as _TELEMETRY

    attempts = shard_retries()
    last: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        stats["retries"] += 1
        event: Dict[str, object] = {
            "shard": index, "attempt": attempt, "reason": reason
        }
        stats["events"].append(event)
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter("flymon_shard_retries_total").inc()
            _TELEMETRY.events.emit(
                EV_SHARD_RETRY, shard=index, attempt=attempt, reason=reason
            )
        t0 = time.perf_counter()
        try:
            result = _run_shard(*build_payload())
        except Exception as exc:  # noqa: BLE001 - bounded, surfaced below
            event["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
            last = exc
            reason = f"{type(exc).__name__}: {exc}"
        else:
            event["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
            return result
    raise ShardingError(
        f"shard {index} failed after {attempts} serial re-dispatch(es): {reason}"
    ) from last


def _dispatch(
    specs: Sequence[GroupReplicaSpec],
    columns: Dict[str, np.ndarray],
    ranges: Sequence[Tuple[int, int]],
    batch_size: int,
    tracked: Optional[frozenset],
    collect_exports: bool,
    backend: str,
) -> Tuple[List[ShardResult], str, Dict[str, object]]:
    """Run every shard, in shard order, on the requested backend.

    A process pool that cannot *start* (sandboxes, fork restrictions)
    degrades to threads.  An individual shard that crashes, kills its
    worker, or exceeds the per-shard timeout is re-dispatched on the serial
    path with bounded retries, so one bad worker costs its shard's
    parallelism -- never the run.  Returns ``(results, backend_used,
    stats)`` with ``stats = {"retries", "timeouts", "events", "timings"}``;
    ``timings`` holds one phase-attributed record per shard (see
    :attr:`ShardRunReport.shard_timings`) plus a private ``_submit_pc``
    (raw ``perf_counter`` submit time) that the caller strips after
    placing synthetic spans on the flight-recorder timeline.
    """
    stats: Dict[str, object] = {
        "retries": 0, "timeouts": 0, "events": [], "timings": []
    }
    dispatch_ms: Dict[int, float] = {}
    submit_pc: Dict[int, float] = {}

    def payload(i: int, inject: Optional[Tuple]) -> tuple:
        start, stop = ranges[i]
        return (
            specs,
            {name: col[start:stop] for name, col in columns.items()},
            start,
            stop,
            batch_size,
            tracked,
            collect_exports,
            inject,
        )

    count = len(ranges)
    results: List[Optional[ShardResult]] = [None] * count
    timeout = shard_timeout()

    def finish(backend_used: str):
        """Assemble per-shard timing records once every result is in."""
        for i, result in enumerate(results):
            events = [e for e in stats["events"] if e["shard"] == i]
            observed = dispatch_ms.get(i, 0.0)
            stats["timings"].append(
                {
                    "shard": i,
                    "rows": result.stop - result.start,
                    "dispatch_ms": observed,
                    "build_ms": result.build_ms,
                    "compute_ms": result.compute_ms,
                    "transport_ms": max(
                        0.0, observed - result.build_ms - result.compute_ms
                    ),
                    "retried": bool(events),
                    "retries": len(events),
                    "retry_ms": sum(e.get("elapsed_ms", 0.0) for e in events),
                    "_submit_pc": submit_pc.get(i),
                }
            )
        return results, backend_used, stats

    if backend == BACKEND_SERIAL or count <= 1:
        for i in range(count):
            submit_pc[i] = t0 = time.perf_counter()
            try:
                results[i] = _run_shard(*payload(i, _plan_injection(i)))
            except Exception as exc:  # noqa: BLE001 - recovered below
                dispatch_ms[i] = (time.perf_counter() - t0) * 1e3
                results[i] = _retry_serially(
                    lambda i=i: payload(i, _plan_injection(i)),
                    i,
                    f"{type(exc).__name__}: {exc}",
                    stats,
                )
            else:
                dispatch_ms[i] = (time.perf_counter() - t0) * 1e3
        return finish(BACKEND_SERIAL)

    failed: Dict[int, str] = {}
    if backend == BACKEND_PROCESS:
        try:
            import multiprocessing as mp
            from concurrent.futures import (
                ProcessPoolExecutor,
                TimeoutError as FuturesTimeout,
            )
            from concurrent.futures.process import BrokenProcessPool

            context = (
                mp.get_context("fork")
                if "fork" in mp.get_all_start_methods()
                else mp.get_context()
            )
            pool = ProcessPoolExecutor(max_workers=count, mp_context=context)
            try:
                futures = []
                for i in range(count):
                    submit_pc[i] = time.perf_counter()
                    futures.append(
                        pool.submit(_run_shard, *payload(i, _plan_injection(i)))
                    )
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            for i, future in enumerate(futures):
                try:
                    results[i] = future.result(timeout=timeout)
                except FuturesTimeout:
                    stats["timeouts"] += 1
                    failed[i] = "shard timed out"
                except BrokenProcessPool:
                    failed[i] = "worker process died"
                except Exception as exc:  # noqa: BLE001 - recovered below
                    failed[i] = f"{type(exc).__name__}: {exc}"
                dispatch_ms[i] = (time.perf_counter() - submit_pc[i]) * 1e3
            # Never block on a hung/killed worker during cleanup.
            pool.shutdown(wait=False, cancel_futures=True)
            for i, reason in failed.items():
                results[i] = _retry_serially(
                    lambda i=i: payload(i, _plan_injection(i)), i, reason, stats
                )
            return finish(BACKEND_PROCESS)
        except (OSError, PermissionError):
            backend = BACKEND_THREAD
            failed.clear()
            dispatch_ms.clear()
            submit_pc.clear()
    from concurrent.futures import (
        ThreadPoolExecutor,
        TimeoutError as FuturesTimeout,
    )

    pool = ThreadPoolExecutor(max_workers=count)
    futures = []
    for i in range(count):
        submit_pc[i] = time.perf_counter()
        futures.append(pool.submit(_run_shard, *payload(i, _plan_injection(i))))
    for i, future in enumerate(futures):
        try:
            results[i] = future.result(timeout=timeout)
        except FuturesTimeout:
            stats["timeouts"] += 1
            failed[i] = "shard timed out"
        except Exception as exc:  # noqa: BLE001 - recovered below
            failed[i] = f"{type(exc).__name__}: {exc}"
        dispatch_ms[i] = (time.perf_counter() - submit_pc[i]) * 1e3
    pool.shutdown(wait=False, cancel_futures=True)
    for i, reason in failed.items():
        results[i] = _retry_serially(
            lambda i=i: payload(i, _plan_injection(i)), i, reason, stats
        )
    return finish(BACKEND_THREAD)


def _sequential(
    groups, trace, batch_size: int, collect_exports: bool, reason: str, workers: int
) -> ShardRunReport:
    """Single-pipeline batched fallback (still collects exports on request)."""
    n = len(trace)
    exports: Optional[Dict[str, np.ndarray]] = {} if collect_exports else None
    offset = 0
    t0 = time.perf_counter()
    with _RECORDER.span(
        "shard.sequential", cat="dataplane", packets=n, reason=reason
    ):
        for batch in trace.iter_batches(batch_size):
            for group in groups:
                group.process_batch(batch)
            if exports is not None:
                _accumulate_exports(exports, batch, offset, n)
            offset += len(batch)
    total_ms = (time.perf_counter() - t0) * 1e3
    return ShardRunReport(
        packets=n,
        workers=workers,
        shards=0,
        backend="sequential",
        fallback=reason,
        merge_laws={},
        exports=exports,
        timing={
            "plan_ms": 0.0,
            "sync_ms": 0.0,
            "dispatch_ms": 0.0,
            "merge_ms": 0.0,
            "total_ms": total_ms,
        },
    )


def _merge_into(
    groups,
    base: Dict[Tuple[int, int], np.ndarray],
    journal: ShardJournal,
    shard_results: Sequence[ShardResult],
    laws: Dict[Tuple[int, int, int], str],
    trace,
    exports: Optional[Dict[str, np.ndarray]],
) -> None:
    """Fold worker register state back into the live CMUs, law by law.

    Replayed tasks also recompute their alarm digests (into the live CMU's
    digest queues) and, when export collection is on, scatter their exact
    per-packet results into the spliced export columns.
    """
    from repro.core.cmu import Cmu
    from repro.core.operations import load_reduced_operation_set
    from repro.core.params import param_field, result_field

    full_batch = None
    for group in groups:
        for cmu in group.cmus:
            plans = cmu.task_plans()
            if not plans:
                continue
            location = (group.group_id, cmu.index)
            base_cells = base[location]
            worker_cells = [result.cells[location] for result in shard_results]
            mask = cmu.register.value_mask
            merged = base_cells.copy()
            scratch = None
            for task_id, plan in plans.items():
                config = plan.config
                law = laws[(group.group_id, cmu.index, task_id)]
                window = slice(config.mem.base, config.mem.end)
                if law == LAW_SUM:
                    acc = base_cells[window].copy()
                    for cells in worker_cells:
                        acc += cells[window]
                    merged[window] = acc & mask
                elif law == LAW_MAX:
                    acc = base_cells[window]
                    for cells in worker_cells:
                        acc = np.maximum(acc, cells[window])
                    merged[window] = acc
                elif law == LAW_XOR:
                    acc = base_cells[window].copy()
                    for cells in worker_cells:
                        acc ^= cells[window]
                    merged[window] = acc
                elif law == LAW_OR:
                    acc = base_cells[window].copy()
                    for cells in worker_cells:
                        acc |= cells[window]
                    merged[window] = acc
                else:  # LAW_REPLAY
                    entry = journal.entries((group.group_id, cmu.index, task_id))
                    if entry is None:
                        continue  # no packet matched the task; base state holds
                    if scratch is None:
                        scratch = Register(cmu.register.size, cmu.register.bit_width)
                        load_reduced_operation_set(scratch)
                        scratch.load_cells(base_cells)
                    rows, index, p1, p2 = entry
                    results = scratch.execute_batch(config.op, index, p1, p2)
                    merged[window] = scratch.read_range(config.mem.base, config.mem.length)
                    if plan.alarm_armed:
                        hits = rows[results >= config.alarm_threshold]
                        if hits.size:
                            if full_batch is None:
                                full_batch = trace.as_batch()
                            keys = Cmu._digest_key_rows(
                                config.digest_key, full_batch, hits
                            )
                            cmu._digests.setdefault(task_id, set()).update(
                                map(tuple, keys.tolist())
                            )
                    if exports is not None:
                        total = len(trace)
                        name = result_field(group.group_id, cmu.index)
                        column = exports.setdefault(name, np.zeros(total, dtype=np.int64))
                        column[rows] = results
                        name = param_field(group.group_id, cmu.index)
                        column = exports.setdefault(name, np.zeros(total, dtype=np.int64))
                        column[rows] = p1
            cmu.register.load_cells(merged)


def run_sharded(
    groups,
    trace,
    workers: int,
    batch_size: Optional[int] = None,
    backend: Optional[str] = None,
    collect_exports: bool = False,
    exact_exports: bool = False,
    runtime: Optional[str] = None,
    pool=None,
) -> ShardRunReport:
    """Replay ``trace`` through ``groups`` using sharded parallel execution.

    Register state, digests, and (for replayed tasks) PHV exports end up
    bit-identical to a sequential replay.  ``exact_exports=True`` forces
    *every* task onto the replay law so the returned export columns are
    exact for all tasks -- a verification mode that trades the parallel
    speedup for full per-packet output.

    ``runtime`` selects between the ephemeral model (fresh replicas per
    call) and the persistent model, which dispatches through ``pool`` -- a
    :class:`~repro.dataplane.shard_pool.PersistentShardPool` whose resident
    replicas are delta-synced before the run.  A persistent request without
    a usable pool degrades to the ephemeral path with the reason recorded
    on ``ShardRunReport.degraded``; it never fails the run.

    Deployments with chained tasks (parameters reading upstream CMU exports)
    fall back to sequential batched execution; the report's ``fallback``
    field carries the reason.
    """
    if exact_exports:
        collect_exports = True
    if batch_size is None or batch_size <= 0:
        batch_size = DEFAULT_SHARD_BATCH
    workers = max(1, int(workers))
    runtime = shard_runtime(runtime)
    n = len(trace)
    t_run = time.perf_counter()

    plans: Dict[Tuple[int, int, int], tuple] = {}
    for group in groups:
        for cmu in group.cmus:
            for task_id, plan in cmu.task_plans().items():
                plans[(group.group_id, cmu.index, task_id)] = (cmu, plan)
    chained = sorted(
        key for key, (_, plan) in plans.items() if _is_chained(plan.config)
    )
    if chained:
        described = ", ".join(
            f"cmug{g}/cmu{c}/task{t}" for g, c, t in chained[:4]
        ) + ("..." if len(chained) > 4 else "")
        return _sequential(
            groups,
            trace,
            batch_size,
            collect_exports,
            f"chained tasks read upstream exports ({described})",
            workers,
        )
    if n == 0:
        return _sequential(
            groups, trace, batch_size, collect_exports, "empty trace", workers
        )

    with _RECORDER.span("shard.run", cat="dataplane", packets=n, workers=workers):
        t_plan = time.perf_counter()
        with _RECORDER.span("shard.plan", cat="dataplane"):
            laws = {
                key: (
                    LAW_REPLAY
                    if exact_exports
                    else _merge_law(plan, cmu.bucket_bits, cmu.register.value_mask)
                )
                for key, (cmu, plan) in plans.items()
            }
            tracked = (
                None
                if exact_exports
                else frozenset(key for key, law in laws.items() if law == LAW_REPLAY)
            )

            base = {
                (group.group_id, cmu.index): cmu.register.snapshot_cells()
                for group in groups
                for cmu in group.cmus
                if cmu.task_plans()
            }
            specs = replica_specs(groups)
            ranges = shard_ranges(n, workers)
        plan_ms = (time.perf_counter() - t_plan) * 1e3

        resolved_backend = _resolve_backend(backend)
        degraded: Optional[str] = None
        use_pool = False
        if runtime == RUNTIME_PERSISTENT:
            if resolved_backend == BACKEND_SERIAL:
                degraded = "serial backend runs in-process; pool not engaged"
            elif pool is None or getattr(pool, "closed", False):
                degraded = "no worker pool attached; ephemeral dispatch"
            elif pool.workers < len(ranges):
                degraded = (
                    f"pool sized for {pool.workers} workers, run needs "
                    f"{len(ranges)}; ephemeral dispatch"
                )
            elif not pool.supports(trace):
                degraded = (
                    "trace columns do not fit the pool's shared-memory "
                    "layout; ephemeral dispatch"
                )
            else:
                use_pool = True

        sync_ms = 0.0
        if use_pool:
            t_sync = time.perf_counter()
            with _RECORDER.span("shard.sync", cat="dataplane"):
                pool.sync()
            sync_ms = (time.perf_counter() - t_sync) * 1e3

        t_dispatch = time.perf_counter()
        with _RECORDER.span(
            "shard.dispatch", cat="dataplane", shards=len(ranges)
        ) as dispatch_sp:
            if use_pool:
                shard_results, backend_used, dispatch_stats = pool.execute(
                    trace, ranges, batch_size, tracked, collect_exports
                )
                degraded = pool.degraded_reason
            else:
                shard_results, backend_used, dispatch_stats = _dispatch(
                    specs,
                    trace.columns,
                    ranges,
                    batch_size,
                    tracked,
                    collect_exports,
                    resolved_backend,
                )
        dispatch_total_ms = (time.perf_counter() - t_dispatch) * 1e3

        # Graft worker-side timings onto the recorder timeline.  Workers may
        # live in other processes, so the dispatcher places synthetic spans
        # from the floats each ShardResult carried back: one ``shard.worker``
        # per shard (submit-to-result wall, plus serial retry time), with
        # build / compute / transport / retry children laid out sequentially
        # from the recorded submit instant.
        timings: List[Dict[str, object]] = dispatch_stats["timings"]
        for record in timings:
            submit = record.pop("_submit_pc", None)
            if not _RECORDER.enabled or submit is None:
                continue
            start = _RECORDER.rel_us(submit)
            worker_wall = record["dispatch_ms"] + record["retry_ms"]
            worker_id = _RECORDER.add(
                "shard.worker",
                worker_wall,
                parent_id=dispatch_sp.span_id,
                start_us=start,
                cat="dataplane",
                shard=record["shard"],
                rows=record["rows"],
                retried=record["retried"],
            )
            offset_us = start
            for child, key in (
                ("shard.build", "build_ms"),
                ("shard.compute", "compute_ms"),
                ("shard.transport", "transport_ms"),
            ):
                ms = record[key]
                if ms <= 0.0:
                    continue
                _RECORDER.add(
                    child,
                    ms,
                    parent_id=worker_id,
                    start_us=offset_us,
                    cat="dataplane",
                    shard=record["shard"],
                )
                offset_us += ms * 1e3
            if record["retry_ms"] > 0.0:
                _RECORDER.add(
                    "shard.retry",
                    record["retry_ms"],
                    parent_id=worker_id,
                    start_us=offset_us,
                    cat="dataplane",
                    shard=record["shard"],
                    retries=record["retries"],
                )

        t_merge = time.perf_counter()
        with _RECORDER.span("shard.merge", cat="dataplane"):
            exports: Optional[Dict[str, np.ndarray]] = None
            if collect_exports:
                exports = {}
                for result in shard_results:
                    for name, arr in (result.exports or {}).items():
                        column = exports.get(name)
                        if column is None:
                            column = exports[name] = np.zeros(n, dtype=np.int64)
                        column[result.start : result.stop] = arr

            journal = ShardJournal(tracked)
            for result in shard_results:
                journal.absorb(result.journal)
            _merge_into(groups, base, journal, shard_results, laws, trace, exports)
        merge_ms = (time.perf_counter() - t_merge) * 1e3

    from repro.telemetry import TELEMETRY as _TELEMETRY

    if _TELEMETRY.enabled:
        _TELEMETRY.registry.counter("flymon_sharded_runs_total").inc()
        _TELEMETRY.registry.counter("flymon_sharded_packets_total").inc(n)

    return ShardRunReport(
        packets=n,
        workers=workers,
        shards=len(ranges),
        backend=backend_used,
        fallback=None,
        merge_laws=laws,
        exports=exports,
        retries=dispatch_stats["retries"],
        timeouts=dispatch_stats["timeouts"],
        shard_events=dispatch_stats["events"],
        shard_timings=timings,
        timing={
            "plan_ms": plan_ms,
            "sync_ms": sync_ms,
            "dispatch_ms": dispatch_total_ms,
            "merge_ms": merge_ms,
            "total_ms": (time.perf_counter() - t_run) * 1e3,
        },
        runtime=RUNTIME_PERSISTENT if use_pool else RUNTIME_EPHEMERAL,
        degraded=degraded,
    )
