"""Control-plane estimators.

The math that turns raw data-plane state (register arrays, bitmaps, coupon
counts) into answers.  Shared by the standalone sketches and the CMU-hosted
FlyMon algorithms so accuracy comparisons never diverge on estimator details.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# HyperLogLog
# ---------------------------------------------------------------------------


def alpha_m(m: int) -> float:
    """HLL bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def rho32(value: int, skip_bits: int = 0) -> int:
    """1-based position of the leftmost 1 in a 32-bit word after discarding
    ``skip_bits`` high bits; ``(32 - skip_bits) + 1`` when all zero."""
    usable = 32 - skip_bits
    value &= (1 << usable) - 1
    if value == 0:
        return usable + 1
    return usable - value.bit_length() + 1


def rho32_batch(values: np.ndarray, skip_bits: int = 0) -> np.ndarray:
    """Vectorized :func:`rho32` over an integer array.

    ``np.frexp`` on exact float64 integers yields the bit length directly
    (``v = m * 2**e`` with ``0.5 <= m < 1``), which is exact for the 32-bit
    values the data path produces.
    """
    usable = 32 - skip_bits
    v = np.asarray(values, dtype=np.int64) & ((1 << usable) - 1)
    _, exp = np.frexp(v.astype(np.float64))
    return np.where(v == 0, usable + 1, usable - exp + 1).astype(np.int64)


def hll_estimate(registers: Sequence[int]) -> float:
    """Bias-corrected HLL cardinality with small/large-range corrections."""
    regs = np.asarray(registers, dtype=np.float64)
    m = len(regs)
    if m == 0:
        return 0.0
    raw = alpha_m(m) * m * m / float(np.sum(2.0 ** (-regs)))
    if raw <= 2.5 * m:
        zeros = int(np.count_nonzero(regs == 0))
        if zeros:
            return m * math.log(m / zeros)  # linear-counting regime
        return raw
    two32 = 2.0**32
    if raw > two32 / 30.0:
        return -two32 * math.log(1.0 - raw / two32)
    return raw


# ---------------------------------------------------------------------------
# Linear counting
# ---------------------------------------------------------------------------


def linear_counting_estimate(num_bits: int, zero_bits: int) -> float:
    """``-m ln(V)`` with ``V`` the zero-bit fraction; upper bound if saturated."""
    if num_bits <= 0:
        return 0.0
    if zero_bits <= 0:
        return float(num_bits * math.log(num_bits))
    return -num_bits * math.log(zero_bits / num_bits)


# ---------------------------------------------------------------------------
# Coupon collector (BeauCoup)
# ---------------------------------------------------------------------------


def harmonic(m: int) -> float:
    """The m-th harmonic number."""
    return sum(1.0 / i for i in range(1, m + 1))


def tune_coupon_probability(num_coupons: int, threshold: int) -> float:
    """Per-coupon draw probability so that collecting all ``num_coupons``
    coupons takes ``threshold`` distinct values in expectation (BeauCoup's
    query compiler), clamped to a feasible total probability."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    p = harmonic(num_coupons) / threshold
    return min(p, 1.0 / num_coupons)


def coupon_collector_inversion(collected: int, num_coupons: int, prob: float) -> float:
    """Expected distinct values needed to collect ``collected`` of
    ``num_coupons`` coupons, each drawn with probability ``prob``."""
    if not 0 <= collected <= num_coupons:
        raise ValueError("collected out of range")
    if prob <= 0:
        return 0.0
    return sum(1.0 / ((num_coupons - i) * prob) for i in range(collected))


# ---------------------------------------------------------------------------
# MRAC expectation-maximization
# ---------------------------------------------------------------------------


def mrac_em(
    counter_values: Sequence[int],
    num_buckets: int,
    iterations: int = 50,
    max_size: int = 512,
) -> Dict[int, float]:
    """EM estimate of the flow-size distribution from an MRAC counter array.

    Follows Kumar et al.'s Poisson collision model: bucket loads are
    Poisson(n/m), and each non-zero counter value is explained as a mixture
    of compositions of up to three colliding flow sizes (4-way collisions
    are negligible at the load factors the experiments use).

    Returns ``{flow_size: estimated_flow_count}``.
    """
    values, counts = np.unique(
        np.asarray([v for v in counter_values if v > 0], dtype=np.int64),
        return_counts=True,
    )
    hist = {int(v): int(c) for v, c in zip(values, counts)}
    if not hist:
        return {}
    small = {v: c for v, c in hist.items() if v <= max_size}
    large = {v: c for v, c in hist.items() if v > max_size}

    phi: Dict[int, float] = {v: float(c) for v, c in small.items()}
    for _ in range(iterations):
        n_flows = sum(phi.values())
        if n_flows <= 0:
            break
        lam = n_flows / num_buckets
        p_size = {s: phi[s] / n_flows for s in phi}
        new_phi: Dict[int, float] = {}
        for v, buckets in small.items():
            comps = _compositions(v, p_size, lam)
            z = sum(w for _, w in comps)
            if z <= 0:
                comps, z = [((v,), 1.0)], 1.0
            for sizes, w in comps:
                share = buckets * w / z
                for s in sizes:
                    new_phi[s] = new_phi.get(s, 0.0) + share
        phi = {s: c for s, c in new_phi.items() if c > 1e-9}
    for v, c in large.items():
        phi[v] = phi.get(v, 0.0) + c
    return phi


def _compositions(
    value: int, p_size: Dict[int, float], lam: float, max_parts: int = 3
) -> List[Tuple[Tuple[int, ...], float]]:
    """Weighted compositions of ``value`` from <= ``max_parts`` flow sizes.

    Weight = Poisson(k; lam) arrival probability x product of size
    probabilities x multinomial ordering factor (sorted tuples enumerated).
    """
    sizes = sorted(p_size)
    out: List[Tuple[Tuple[int, ...], float]] = []

    def poisson(k: int) -> float:
        return math.exp(-lam) * lam**k / math.factorial(k)

    if value in p_size:
        out.append(((value,), poisson(1) * p_size[value]))
    if max_parts >= 2:
        for a in sizes:
            b = value - a
            if b < a:
                break
            if b in p_size:
                mult = 1.0 if a == b else 2.0
                out.append(((a, b), poisson(2) * mult * p_size[a] * p_size[b]))
    if max_parts >= 3:
        for i, a in enumerate(sizes):
            if 3 * a > value:
                break
            for b in sizes[i:]:
                c = value - a - b
                if c < b:
                    break
                if c in p_size:
                    if a == b == c:
                        mult = 1.0
                    elif a == b or b == c:
                        mult = 3.0
                    else:
                        mult = 6.0
                    out.append(
                        ((a, b, c), poisson(3) * mult * p_size[a] * p_size[b] * p_size[c])
                    )
    return out
