"""Heavy-changer detection (Table 1): flows whose frequency shifts sharply
between two measurement epochs.

Purely control-plane analysis over two frequency summaries, exactly the
decomposition of §3.1.2: the data plane runs two epochs of any frequency
algorithm; the controller diffs per-flow estimates.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Set, Tuple


def heavy_changers(
    query_before: Callable[[object], float],
    query_after: Callable[[object], float],
    candidates: Iterable,
    threshold: float,
) -> Set:
    """Flows with ``|f_after - f_before| >= threshold``."""
    return {
        flow
        for flow in candidates
        if abs(query_after(flow) - query_before(flow)) >= threshold
    }


def change_magnitudes(
    query_before: Callable[[object], float],
    query_after: Callable[[object], float],
    candidates: Iterable,
) -> Dict:
    """Signed per-flow change, largest absolute change first."""
    changes = {
        flow: query_after(flow) - query_before(flow) for flow in candidates
    }
    return dict(sorted(changes.items(), key=lambda kv: -abs(kv[1])))
