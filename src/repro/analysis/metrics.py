"""Evaluation metrics (Appendix C of the paper).

* ARE -- average relative error over per-flow estimates,
* RE -- relative error of a scalar estimate,
* F1 -- harmonic mean of precision and recall over reported sets,
* FP -- false-positive rate over negative instances.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Set, Tuple


def relative_error(true_value: float, estimate: float) -> float:
    """``|x - x_hat| / x``; 0 when both are 0, inf when only truth is 0."""
    if true_value == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(true_value - estimate) / abs(true_value)


def average_relative_error(
    truth: Mapping, estimator: Callable[[object], float]
) -> float:
    """Mean relative error of ``estimator(key)`` over all true flows."""
    if not truth:
        return 0.0
    total = 0.0
    for key, true_value in truth.items():
        total += relative_error(true_value, estimator(key))
    return total / len(truth)


def precision_recall(reported: Set, truth: Set) -> Tuple[float, float]:
    """(precision, recall) of a reported set against ground truth."""
    if not reported:
        return (1.0 if not truth else 0.0, 0.0 if truth else 1.0)
    true_positives = len(reported & truth)
    precision = true_positives / len(reported)
    recall = true_positives / len(truth) if truth else 1.0
    return precision, recall


def f1_score(reported: Set, truth: Set) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    precision, recall = precision_recall(reported, truth)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def false_positive_rate(reported_positive: Set, negatives: Iterable) -> float:
    """Fraction of true-negative instances wrongly reported positive."""
    negatives = list(negatives)
    if not negatives:
        return 0.0
    fp = sum(1 for item in negatives if item in reported_positive)
    return fp / len(negatives)
