"""Flow-entropy helpers shared by MRAC / UnivMon experiments."""

from __future__ import annotations

import math
from typing import Mapping


def entropy_from_distribution(distribution: Mapping[int, float]) -> float:
    """Shannon entropy (nats) of flows given ``{flow_size: flow_count}``.

    ``H = -sum_s n_s * (s/N) * ln(s/N)`` with ``N = sum_s n_s * s`` -- the
    quantity MRAC's EM output feeds into for Figure 14e.
    """
    total = sum(size * count for size, count in distribution.items() if size > 0)
    if total <= 0:
        return 0.0
    h = 0.0
    for size, count in distribution.items():
        if size <= 0 or count <= 0:
            continue
        p = size / total
        h -= count * p * math.log(p)
    return h


def normalized_entropy(distribution: Mapping[int, float]) -> float:
    """Entropy divided by its maximum ``ln(num_flows)`` (0 for <=1 flow)."""
    num_flows = sum(c for c in distribution.values() if c > 0)
    if num_flows <= 1:
        return 0.0
    return entropy_from_distribution(distribution) / math.log(num_flows)
