"""Accuracy metrics and control-plane estimators.

FlyMon splits algorithms into data-plane operations and control-plane
analysis (§3.1.2).  Everything control-plane-mathematical lives here so the
standalone sketches and the CMU-hosted implementations share one set of
estimators, and the evaluation shares one set of metrics (Appendix C).
"""

from repro.analysis.estimators import (
    alpha_m,
    coupon_collector_inversion,
    hll_estimate,
    linear_counting_estimate,
    mrac_em,
    rho32,
)
from repro.analysis.metrics import (
    average_relative_error,
    f1_score,
    false_positive_rate,
    precision_recall,
    relative_error,
)
from repro.analysis.entropy import entropy_from_distribution, normalized_entropy

__all__ = [
    "alpha_m",
    "average_relative_error",
    "coupon_collector_inversion",
    "entropy_from_distribution",
    "f1_score",
    "false_positive_rate",
    "hll_estimate",
    "linear_counting_estimate",
    "mrac_em",
    "normalized_entropy",
    "precision_recall",
    "relative_error",
    "rho32",
]
