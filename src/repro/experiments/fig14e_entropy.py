"""Figure 14e: flow-entropy RE versus memory.

FlyMon-MRAC (one counter row + EM inversion) against UnivMon.  The paper's
finding: MRAC reaches RE < 0.2 with ~200 KB while UnivMon needs ~340 KB --
the dedicated-algorithm-per-attribute advantage.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import relative_error
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    deploy_and_process,
    evaluation_trace,
    format_table,
    pow2_at_least,
)
from repro.sketches import UnivMon
from repro.traffic.flows import KEY_5TUPLE

#: Memory axes scale with the trace: the paper's 200-500 KB serve its 9M/18M
#: packet WIDE windows; the quick trace is ~150x smaller.
MEMORY_KB_FULL = (100, 200, 300, 400, 500)
MEMORY_KB_QUICK = (4, 8, 16, 32, 64)


def _flymon_mrac(trace, true_entropy: float, total_bytes: int) -> float:
    buckets = max(64, 1 << ((total_bytes // 4).bit_length() - 1))
    task = MeasurementTask(
        key=KEY_5TUPLE,
        attribute=AttributeSpec.frequency(),
        memory=buckets,
        depth=1,
        algorithm="mrac",
    )
    _, handle = deploy_and_process(
        task, trace, num_groups=1, register_size=pow2_at_least(buckets)
    )
    estimate = handle.algorithm.estimate_entropy(iterations=25)
    return relative_error(true_entropy, estimate)


def _univmon(trace, true_entropy: float, total_bytes: int) -> float:
    depth, levels = 5, 12
    width = max(64, total_bytes // (4 * depth * levels))
    sketch = UnivMon(width=width, depth=depth, levels=levels, top_k=128)
    for fields in trace.iter_fields():
        sketch.update(KEY_5TUPLE.extract(fields))
    return relative_error(true_entropy, sketch.estimate_entropy())


def run(quick: bool = True) -> Dict:
    trace = evaluation_trace(quick)
    true_entropy = trace.entropy(KEY_5TUPLE)
    series: List[Dict] = []
    for kb in MEMORY_KB_QUICK if quick else MEMORY_KB_FULL:
        total = kb * 1024
        series.append(
            {
                "memory_kb": kb,
                "UnivMon": _univmon(trace, true_entropy, total),
                "FlyMon-MRAC": _flymon_mrac(trace, true_entropy, total),
            }
        )
    return {"series": series, "true_entropy": true_entropy}


def format_result(result: Dict) -> str:
    rows = [
        [s["memory_kb"], f"{s['UnivMon']:.4f}", f"{s['FlyMon-MRAC']:.4f}"]
        for s in result["series"]
    ]
    out = (
        f"Figure 14e -- flow entropy (true {result['true_entropy']:.3f} nats): "
        "RE vs memory (KB)\n"
    )
    return out + format_table(["KB", "UnivMon", "FlyMon-MRAC"], rows)


if __name__ == "__main__":
    print(format_result(run()))
