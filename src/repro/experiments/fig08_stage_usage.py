"""Figure 8 (table): per-stage resource usage of one CMU Group.

The paper's cross-stacking argument rests on each of the four CMU-Group
stages dominating a *different* resource; this harness prints our model's
per-stage shares next to the published table so the calibration is
auditable.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cmu_group import GROUP_STAGES, CmuGroup
from repro.dataplane.resources import STAGE_CAPACITY
from repro.experiments.common import format_table

#: The published Figure 8 table: stage -> {resource: fraction}.
PAPER_TABLE = {
    "compression": {"hash_units": 0.50, "vliw": 0.0625, "tcam_blocks": 0.0, "salus": 0.0},
    "initialization": {"hash_units": 0.0, "vliw": 0.25, "tcam_blocks": 0.125, "salus": 0.0},
    "preparation": {"hash_units": 0.0, "vliw": 0.0625, "tcam_blocks": 0.50, "salus": 0.0},
    "operation": {"hash_units": 0.50, "vliw": 0.25, "tcam_blocks": 0.0, "salus": 0.75},
}

RESOURCES = ("hash_units", "vliw", "tcam_blocks", "salus")


def run(quick: bool = True) -> Dict:
    group = CmuGroup(0)
    demands = group.stage_demands()
    measured = {}
    for stage in GROUP_STAGES:
        vec = demands[stage]
        measured[stage] = {
            r: getattr(vec, r) / getattr(STAGE_CAPACITY, r) for r in RESOURCES
        }
    return {"measured": measured, "paper": PAPER_TABLE}


def format_result(result: Dict) -> str:
    rows = []
    for stage in GROUP_STAGES:
        m = result["measured"][stage]
        p = result["paper"][stage]
        rows.append(
            [stage]
            + [f"{m[r]:.2%} / {p[r]:.2%}" for r in RESOURCES]
        )
    out = "Figure 8 table -- per-stage resource usage (measured / paper)\n"
    return out + format_table(["stage"] + [r for r in RESOURCES], rows)


if __name__ == "__main__":
    print(format_result(run()))
