"""Table 3: built-in algorithms -- CMU Group usage and deployment delay.

Deploys every built-in algorithm on a fresh controller with the paper's
setting (16K-bucket rows on 64K-bucket registers) and reports how many CMU
Groups it spans and the modeled rule-installation latency.  The paper's
qualitative claims: everything deploys within 100 ms; BeauCoup is slowest
(runtime one-hot coupon entries); HLL/MRAC are fastest (single row, no
runtime prep entries); SuMax(Sum) spans 3 groups.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import format_table
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP

#: Paper rows: (algorithm, attribute description, task factory kwargs).
CASES = (
    ("cms", "Frequency", dict(attribute=AttributeSpec.frequency(), depth=3)),
    (
        "beaucoup",
        "Distinct (multi-key)",
        dict(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            depth=3,
            threshold=512,
        ),
    ),
    ("bloom", "Existence", dict(attribute=AttributeSpec.existence(), depth=3)),
    (
        "sumax_max",
        "Max",
        dict(attribute=AttributeSpec.maximum("queue_length"), depth=3),
    ),
    (
        "hll",
        "Distinct (single-key)",
        dict(attribute=AttributeSpec.distinct(KEY_SRC_IP), depth=1),
    ),
    ("sumax_sum", "Frequency", dict(attribute=AttributeSpec.frequency(), depth=3)),
    (
        "mrac",
        "Frequency (distribution)",
        dict(attribute=AttributeSpec.frequency(), depth=1),
    ),
    ("tower", "Frequency", dict(attribute=AttributeSpec.frequency(), depth=3)),
    (
        "counter_braids",
        "Frequency",
        dict(attribute=AttributeSpec.frequency(), depth=2),
    ),
    (
        "linear_counting",
        "Distinct (single-key)",
        dict(attribute=AttributeSpec.distinct(KEY_SRC_IP), depth=1),
    ),
)

#: Table 3's published delays, for side-by-side comparison.
PAPER_DELAYS_MS = {
    "cms": 16.93,
    "beaucoup": 40.18,
    "bloom": 13.67,
    "sumax_max": 19.68,
    "hll": 5.98,
    "sumax_sum": 19.47,
    "mrac": 6.51,
}

PAPER_CMUG_USAGE = {
    "cms": 1,
    "beaucoup": 1,
    "bloom": 1,
    "sumax_max": 1,
    "hll": 1,
    "sumax_sum": 3,
    "mrac": 1,
}


def run(quick: bool = True) -> Dict:
    rows: List[Dict] = []
    for name, attribute_desc, kwargs in CASES:
        # The paper's setting pre-configures the candidate keys at startup;
        # deployments then only install table rules.
        controller = FlyMonController(
            num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
        )
        task_kwargs = dict(key=KEY_SRC_IP, memory=16_384, algorithm=name)
        task_kwargs.update(kwargs)
        handle = controller.add_task(MeasurementTask(**task_kwargs))
        rows.append(
            {
                "algorithm": name,
                "attribute": attribute_desc,
                "cmug_usage": len(set(handle.groups_used)),
                "rules": handle.rules_installed,
                "delay_ms": handle.deployment_ms,
                "paper_delay_ms": PAPER_DELAYS_MS.get(name),
                "paper_cmug_usage": PAPER_CMUG_USAGE.get(name),
            }
        )
    return {"rows": rows}


def format_result(result: Dict) -> str:
    rows = [
        [
            r["algorithm"],
            r["attribute"],
            r["cmug_usage"],
            r["rules"],
            f"{r['delay_ms']:.2f}",
            "-" if r["paper_delay_ms"] is None else f"{r['paper_delay_ms']:.2f}",
        ]
        for r in result["rows"]
    ]
    return "Table 3 -- built-in algorithm deployment\n" + format_table(
        ["algorithm", "attribute", "CMUG", "rules", "delay(ms)", "paper(ms)"], rows
    )


if __name__ == "__main__":
    print(format_result(run()))
