"""Figure 14g: existence check false-positive rate, with/without bit-packing.

20K keys inserted, ~95K probed (of which ~75K are true negatives).  Without
the §4 optimization each uniform 32-bit bucket carries a single Bloom bit;
with it, every bucket bit is usable -- 32x more filter bits for the same
SRAM, collapsing the false-positive rate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    buckets_for_bytes,
    deploy_and_process,
    format_table,
    pow2_at_least,
)
from repro.traffic import zipf_trace
from repro.traffic.flows import KEY_SRC_IP

MEMORY_KB = (2, 4, 6, 8, 10)
DEPTH = 3


def _false_positive_rate(algorithm_name: str, total_bytes: int, quick: bool) -> float:
    inserted_trace = zipf_trace(
        num_flows=5_000 if quick else 20_000,
        num_packets=5_000 if quick else 20_000,
        seed=61,
    )
    probe_trace = zipf_trace(
        num_flows=20_000 if quick else 75_000,
        num_packets=20_000 if quick else 75_000,
        seed=62,
        src_prefix=0x1E000000,  # 30.0.0.0/8: guaranteed-negative keys
    )
    buckets = buckets_for_bytes(total_bytes, rows=DEPTH)
    task = MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.existence(),
        memory=buckets,
        depth=DEPTH,
        algorithm=algorithm_name,
    )
    controller, handle = deploy_and_process(
        task, inserted_trace, num_groups=1, register_size=pow2_at_least(buckets)
    )
    negatives = set(probe_trace.flow_sizes(KEY_SRC_IP))
    false_positives = sum(
        1 for flow in negatives if handle.algorithm.contains(flow)
    )
    return false_positives / len(negatives)


def run(quick: bool = True) -> Dict:
    series: List[Dict] = []
    for kb in MEMORY_KB:
        total = kb * 1024
        series.append(
            {
                "memory_kb": kb,
                "w/o Opt": _false_positive_rate("bloom_naive", total, quick),
                "w/ Opt": _false_positive_rate("bloom", total, quick),
            }
        )
    return {"series": series}


def format_result(result: Dict) -> str:
    rows = [
        [s["memory_kb"], f"{s['w/o Opt']:.4f}", f"{s['w/ Opt']:.4f}"]
        for s in result["series"]
    ]
    out = "Figure 14g -- existence check: false positives vs memory (KB)\n"
    return out + format_table(["KB", "w/o Opt", "w/ Opt"], rows)


if __name__ == "__main__":
    print(format_result(run()))
