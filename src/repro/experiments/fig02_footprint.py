"""Figure 2: resource footprint of four single-key sketches + their sum.

The paper's motivating measurement: conventionally deployed sketches each
consume hash units, logical table IDs, SALUs, and stateful memory per flow
key, so a handful of coexisting single-key sketches already strains the
pipeline ("the solution can not support more than four different keys").
"""

from __future__ import annotations

from typing import Dict

from repro.dataplane.switch import max_static_keys, static_sketch_utilization
from repro.experiments.common import format_table

RESOURCES = ("hash_unit", "logical_table_id", "stateful_alu", "stateful_memory")


def run(quick: bool = True) -> Dict:
    table = static_sketch_utilization()
    return {"utilization": table, "max_static_keys": max_static_keys()}


def format_result(result: Dict) -> str:
    table = result["utilization"]
    rows = []
    for sketch in ("BloomFilter", "CMS", "HLL", "MRAC", "Sum"):
        rows.append([sketch] + [f"{table[sketch][r]:.1%}" for r in RESOURCES])
    out = "Figure 2 -- static sketch resource footprint\n" + format_table(
        ["sketch"] + list(RESOURCES), rows
    )
    out += (
        f"\nmax single-key sketches alongside switch.p4 (typical config): "
        f"{result['max_static_keys']} (paper: cannot support more than 4)"
    )
    return out


if __name__ == "__main__":
    print(format_result(run()))
