"""Appendix B: compressed-key collision probability.

The less-copy strategy maps flows through a ``log m``-bit one-way
compression; Appendix B derives a per-flow collision probability of
``1 - e^{-n/m}``.  This experiment measures the empirical collision fraction
of the actual compression-stage hash units against the analytic curve,
including the paper's headline scenario (400K flows into a 24-bit domain ->
~2.35%).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.dataplane.hashing import HashFunction
from repro.experiments.common import format_table


def collision_fraction(num_flows: int, domain_bits: int, seed: int = 7) -> float:
    """Empirical fraction of flows whose compressed key collides."""
    rng = np.random.default_rng(seed)
    fn = HashFunction(0xC0111DE)
    keys = rng.integers(0, 2**62, size=num_flows, dtype=np.int64)
    keys = np.unique(keys)  # distinct flows (collisions in 2^62 are ~0)
    digests = np.array([fn.hash_int(int(k)) & ((1 << domain_bits) - 1) for k in keys])
    _, counts = np.unique(digests, return_counts=True)
    non_collided = int((counts == 1).sum())
    return 1.0 - non_collided / len(keys)


def analytic(num_flows: int, domain_bits: int) -> float:
    return 1.0 - math.exp(-num_flows / 2.0**domain_bits)


def run(quick: bool = True) -> Dict:
    cases = [
        (10_000, 20),
        (50_000, 20),
        (50_000, 24),
        (100_000, 24),
    ]
    if not quick:
        cases.append((400_000, 24))  # the paper's headline scenario (~2.35%)
    rows: List[Dict] = []
    for n, bits in cases:
        rows.append(
            {
                "flows": n,
                "domain_bits": bits,
                "measured": collision_fraction(n, bits),
                "analytic": analytic(n, bits),
            }
        )
    return {"rows": rows}


def format_result(result: Dict) -> str:
    rows = [
        [r["flows"], r["domain_bits"], f"{r['measured']:.4f}", f"{r['analytic']:.4f}"]
        for r in result["rows"]
    ]
    out = "Appendix B -- compressed-key collision probability (1 - e^{-n/m})\n"
    return out + format_table(["flows", "bits", "measured", "analytic"], rows)


if __name__ == "__main__":
    print(format_result(run()))
