"""Figure 14f: maximum inter-arrival time ARE versus memory, d = 2 / 3.

The combinatorial 3-CMU task of §4 (Bloom new-flow gate + last-arrival MAX
+ interval MAX) with d parallel chains.  Expected shape: ARE falls with
memory; d = 3 beats d = 2 once each chain has enough buckets.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import average_relative_error
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    deploy_and_process,
    evaluation_trace,
    format_table,
    pow2_at_least,
)
from repro.traffic.flows import KEY_SRC_IP

#: Spans the heavily-collided regime (where the paper's curves live, ARE >> 0
#: and extra chains pay off) through to near-exact tracking.
MEMORY_MB = (0.03125, 0.125, 0.5, 2.0)
DEPTHS = (2, 3)


def _run_depth(trace, truth, total_bytes: int, depth: int) -> float:
    # Each of the d chains spans 3 CMUs; every row gets the same bucket count.
    rows = 3 * depth
    buckets = max(64, 1 << ((total_bytes // (4 * rows)).bit_length() - 1))
    task = MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.maximum("packet_interval"),
        memory=buckets,
        depth=depth,
        algorithm="max_interarrival",
    )
    _, handle = deploy_and_process(
        task, trace, num_groups=3, register_size=pow2_at_least(buckets)
    )
    return average_relative_error(truth, handle.algorithm.query)


def run(quick: bool = True) -> Dict:
    trace = evaluation_trace(quick)
    truth = {k: v for k, v in trace.max_interarrival(KEY_SRC_IP).items() if v > 0}
    series: List[Dict] = []
    for mb in MEMORY_MB:
        total = int(mb * 1024 * 1024)
        point = {"memory_mb": mb}
        for depth in DEPTHS:
            point[f"d={depth}"] = _run_depth(trace, truth, total, depth)
        series.append(point)
    return {"series": series, "flows": len(truth)}


def format_result(result: Dict) -> str:
    cols = [f"d={d}" for d in DEPTHS]
    rows = [
        [s["memory_mb"]] + [f"{s[c]:.3f}" for c in cols] for s in result["series"]
    ]
    out = (
        f"Figure 14f -- max inter-arrival time ({result['flows']} multi-packet "
        "flows): ARE vs memory (MB)\n"
    )
    return out + format_table(["MB"] + cols, rows)


if __name__ == "__main__":
    print(format_result(run()))
