"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(quick=True) -> dict`` returning the figure's rows
or series, and ``format_result(result) -> str`` rendering them the way the
paper reports them.  The ``benchmarks/`` tree wraps these with
pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` regenerates the
whole evaluation.

Index (see DESIGN.md for the full mapping):

* Figure 2  -- :mod:`repro.experiments.fig02_footprint`
* Table 3   -- :mod:`repro.experiments.table3_deployment`
* Figure 11 -- :mod:`repro.experiments.fig11_address_translation`
* Figure 12 -- :mod:`repro.experiments.fig12a_forwarding`,
  :mod:`repro.experiments.fig12b_accuracy`
* Figure 13 -- :mod:`repro.experiments.fig13_resources`
* Figure 14 -- :mod:`repro.experiments.fig14a_heavy_hitter` ...
  :mod:`repro.experiments.fig14g_existence`
* Appendix B -- :mod:`repro.experiments.appendix_b_collisions`
"""
