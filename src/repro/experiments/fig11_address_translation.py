"""Figure 11: resource overhead of the two address-translation methods.

(a) TCAM-based: fraction of one MAU stage's TCAM entries needed to split a
CMU into 8/16/32/64 partitions (every partition hosting a minimum-size
task, each needing ``p - 1`` range entries).

(b) Shift-based: PHV bits needed to pre-compute every shifted address copy
so the translation finishes in a single stage.
"""

from __future__ import annotations

from typing import Dict

from repro.core.address_translation import ShiftTranslation, tcam_usage_fraction
from repro.experiments.common import format_table

PARTITIONS = (8, 16, 32, 64)


def run(quick: bool = True) -> Dict:
    tcam = {p: tcam_usage_fraction(p) for p in PARTITIONS}
    phv = {p: ShiftTranslation.phv_bits_for(p) for p in PARTITIONS}
    return {"tcam_usage": tcam, "phv_bits": phv}


def format_result(result: Dict) -> str:
    rows = [
        [p, f"{result['tcam_usage'][p]:.1%}", result["phv_bits"][p]]
        for p in PARTITIONS
    ]
    out = "Figure 11 -- address translation overhead\n"
    out += format_table(["partitions", "TCAM usage (a)", "PHV bits (b)"], rows)
    out += "\n(paper: 32 partitions need <15% of one stage's TCAM)"
    return out


if __name__ == "__main__":
    print(format_result(run()))
