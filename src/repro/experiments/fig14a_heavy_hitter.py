"""Figure 14a: heavy-hitter detection F1 versus memory.

Six contenders on the Zipf workload: the counter-based CMU algorithms
(FlyMon-CMS, FlyMon-SuMax) and UnivMon approach F1 = 1 quickly; the
coupon-based ones (FlyMon-BeauCoup and original BeauCoup with d = 1 / 3,
counting distinct timestamps as a frequency proxy) trail, with the FlyMon
variant ahead of the original.  Expected ordering: FlyMon-SuMax is the most
memory-efficient, counter-based beats coupon-based everywhere.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import f1_score
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    buckets_for_bytes,
    deploy_and_process,
    evaluation_trace,
    format_table,
    pow2_at_least,
)
from repro.sketches import BeauCoup, UnivMon
from repro.traffic.flows import FlowKeyDef, KEY_SRC_IP

MEMORY_KB = (16, 32, 64, 128, 256)
KEY_TIMESTAMP = FlowKeyDef.of("timestamp")


def _flymon_counter(name: str, trace, truth, threshold: int, total_bytes: int) -> float:
    buckets = buckets_for_bytes(total_bytes, rows=3)
    task = MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=buckets,
        depth=3,
        algorithm=name,
    )
    _, handle = deploy_and_process(
        task, trace, register_size=pow2_at_least(buckets)
    )
    reported = handle.algorithm.heavy_hitters(truth.keys(), threshold)
    return f1_score(reported, set(k for k, v in truth.items() if v >= threshold))


def _flymon_beaucoup(trace, truth, threshold: int, total_bytes: int) -> float:
    buckets = buckets_for_bytes(total_bytes, rows=3)
    task = MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.distinct(KEY_TIMESTAMP),
        memory=buckets,
        depth=3,
        algorithm="beaucoup",
        threshold=threshold,
    )
    _, handle = deploy_and_process(
        task, trace, register_size=pow2_at_least(buckets)
    )
    reported = handle.algorithm.alarms(truth.keys())
    return f1_score(reported, set(k for k, v in truth.items() if v >= threshold))


def _original_beaucoup(trace, truth, threshold: int, total_bytes: int, depth: int) -> float:
    slot_bytes = 4  # 16-bit checksum + 16 coupons
    slots = max(64, total_bytes // (slot_bytes * depth))
    sketch = BeauCoup(slots=slots, threshold=threshold, num_coupons=16, depth=depth)
    for fields in trace.iter_fields():
        sketch.update(
            KEY_SRC_IP.extract(fields), attribute_value=fields["timestamp"]
        )
    reported = sketch.alarms()
    return f1_score(reported, set(k for k, v in truth.items() if v >= threshold))


def _univmon(trace, truth, threshold: int, total_bytes: int) -> float:
    depth, levels = 5, 12
    width = max(64, total_bytes // (4 * depth * levels))
    sketch = UnivMon(width=width, depth=depth, levels=levels, top_k=256)
    for fields in trace.iter_fields():
        sketch.update(KEY_SRC_IP.extract(fields))
    reported = sketch.heavy_hitters(threshold)
    return f1_score(reported, set(k for k, v in truth.items() if v >= threshold))


def run(quick: bool = True) -> Dict:
    trace = evaluation_trace(quick)
    truth = trace.flow_sizes(KEY_SRC_IP)
    threshold = 256 if quick else 1024  # scaled with the trace size
    series: List[Dict] = []
    for kb in MEMORY_KB:
        total = kb * 1024
        series.append(
            {
                "memory_kb": kb,
                "FlyMon-CMS (d=3)": _flymon_counter("cms", trace, truth, threshold, total),
                "FlyMon-SuMax (d=3)": _flymon_counter(
                    "sumax_sum", trace, truth, threshold, total
                ),
                "FlyMon-BeauCoup (d=3)": _flymon_beaucoup(trace, truth, threshold, total),
                "UnivMon": _univmon(trace, truth, threshold, total),
                "BeauCoup (d=1)": _original_beaucoup(trace, truth, threshold, total, 1),
                "BeauCoup (d=3)": _original_beaucoup(trace, truth, threshold, total, 3),
            }
        )
    return {
        "series": series,
        "threshold": threshold,
        "true_heavy_hitters": len([v for v in truth.values() if v >= threshold]),
    }


def format_result(result: Dict) -> str:
    algos = [k for k in result["series"][0] if k != "memory_kb"]
    rows = [
        [s["memory_kb"]] + [f"{s[a]:.3f}" for a in algos] for s in result["series"]
    ]
    out = (
        f"Figure 14a -- heavy hitters (threshold {result['threshold']}, "
        f"{result['true_heavy_hitters']} true HHs): F1 vs memory (KB)\n"
    )
    return out + format_table(["KB"] + algos, rows)


if __name__ == "__main__":
    print(format_result(run()))
