"""Figure 12b: impact of reconfiguration events on measurement accuracy.

Twenty measurement epochs; a traffic spike injects ~3x extra flows during
epochs 6-15.  Task A (per-SrcIP frequency on 10.0.0.0/8) runs throughout.

* **FlyMon** inserts a second task B into the same CMU Group at epoch 3 and
  removes it at epoch 10 (neither touches task A's state), grows task A's
  memory at epoch 6 to absorb the spike, and shrinks it back at epoch 16.
* **Static** cannot resize without reloading the program, so task A stays at
  its initial memory and its ARE explodes during the surge (the paper
  reports ~15x worse).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import average_relative_error
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.experiments.common import default_batch_size, format_table
from repro.traffic import Trace, zipf_trace
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP

NUM_EPOCHS = 20
SPIKE_EPOCHS = range(6, 16)
TASK_B_INSERT_EPOCH = 3
TASK_B_REMOVE_EPOCH = 10
MEM_GROW_EPOCH = 6
MEM_SHRINK_EPOCH = 16


def _epoch_trace(epoch: int, quick: bool, seed: int) -> Trace:
    base_flows = 2_500 if quick else 10_000
    base_packets = 10_000 if quick else 40_000
    parts = [
        zipf_trace(
            num_flows=base_flows,
            num_packets=base_packets,
            seed=seed + epoch,
        )
    ]
    if epoch in SPIKE_EPOCHS:
        parts.append(
            zipf_trace(
                num_flows=3 * base_flows,
                num_packets=3 * base_packets,
                seed=seed + 1000 + epoch,
            )
        )
    if TASK_B_INSERT_EPOCH <= epoch < TASK_B_REMOVE_EPOCH:
        # Task B's traffic lives under 20.0.0.0/8 sources.
        parts.append(
            zipf_trace(
                num_flows=base_flows // 2,
                num_packets=base_packets // 2,
                seed=seed + 2000 + epoch,
                src_prefix=0x14000000,
                dst_prefix=0x28000000,
            )
        )
    return Trace.concatenate(parts).sorted_by_time()


def _task_a(memory: int) -> MeasurementTask:
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
        filter=TaskFilter.of(src_ip=(0x0A000000, 8)),
        name="task-A",
    )


def _task_b(memory: int) -> MeasurementTask:
    return MeasurementTask(
        key=KEY_DST_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
        filter=TaskFilter.of(src_ip=(0x14000000, 8)),
        name="task-B",
    )


def run(quick: bool = True, seed: int = 31) -> Dict:
    small_mem = 1_024 if quick else 4_096
    big_mem = 8_192 if quick else 32_768

    flymon = FlyMonController(num_groups=3)
    static = FlyMonController(num_groups=3)
    task_a_flymon = flymon.add_task(_task_a(small_mem))
    task_a_static = static.add_task(_task_a(small_mem))
    task_b_handle = None

    series: List[Dict] = []
    for epoch in range(NUM_EPOCHS):
        # Control-plane events happen at epoch boundaries.
        events = []
        if epoch == TASK_B_INSERT_EPOCH:
            task_b_handle = flymon.add_task(_task_b(small_mem))
            events.append("insert task B")
        if epoch == TASK_B_REMOVE_EPOCH and task_b_handle is not None:
            flymon.remove_task(task_b_handle)
            task_b_handle = None
            events.append("remove task B")
        if epoch == MEM_GROW_EPOCH:
            task_a_flymon = flymon.resize_task(task_a_flymon, big_mem)
            events.append("grow task A memory")
        if epoch == MEM_SHRINK_EPOCH:
            task_a_flymon = flymon.resize_task(task_a_flymon, small_mem)
            events.append("shrink task A memory")

        trace = _epoch_trace(epoch, quick, seed)
        batch_size = default_batch_size()
        flymon.process_trace(trace, batch_size=batch_size)
        static.process_trace(trace, batch_size=batch_size)

        truth = {
            flow: count
            for flow, count in trace.flow_sizes(KEY_SRC_IP).items()
            if (flow[0] >> 24) == 0x0A
        }
        are_flymon = average_relative_error(truth, task_a_flymon.algorithm.query)
        are_static = average_relative_error(truth, task_a_static.algorithm.query)
        series.append(
            {
                "epoch": epoch,
                "flows": len(truth),
                "are_flymon": are_flymon,
                "are_static": are_static,
                "events": events,
            }
        )
        task_a_flymon.reset()
        task_a_static.reset()
        if task_b_handle is not None:
            task_b_handle.reset()

    spike = [s for s in series if s["epoch"] in SPIKE_EPOCHS and s["epoch"] >= MEM_GROW_EPOCH]
    calm = [s for s in series if s["epoch"] not in SPIKE_EPOCHS]
    summary = {
        "spike_are_static": sum(s["are_static"] for s in spike) / len(spike),
        "spike_are_flymon": sum(s["are_flymon"] for s in spike) / len(spike),
        "calm_are_flymon": sum(s["are_flymon"] for s in calm) / len(calm),
    }
    summary["static_vs_flymon_spike_ratio"] = (
        summary["spike_are_static"] / max(summary["spike_are_flymon"], 1e-9)
    )
    return {"series": series, "summary": summary}


def format_result(result: Dict) -> str:
    rows = [
        [
            s["epoch"],
            s["flows"],
            f"{s['are_flymon']:.3f}",
            f"{s['are_static']:.3f}",
            "; ".join(s["events"]),
        ]
        for s in result["series"]
    ]
    out = "Figure 12b -- task A ARE across 20 epochs (spike epochs 6-15)\n"
    out += format_table(["epoch", "flows", "FlyMon ARE", "Static ARE", "events"], rows)
    ratio = result["summary"]["static_vs_flymon_spike_ratio"]
    out += f"\nstatic/FlyMon ARE ratio during surge: {ratio:.1f}x (paper: ~15x)"
    return out


if __name__ == "__main__":
    print(format_result(run()))
