"""Figure 14b: heavy-hitter F1 under probabilistic execution.

When tasks with intersecting filters must share a CMU, FlyMon samples among
them (§3.3, §6): a task executes on each packet with probability ``p`` and
its queries compensate by ``1/p``.  The paper's finding: sampling has little
effect on heavy-hitter accuracy down to p = 0.125.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import f1_score
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    buckets_for_bytes,
    deploy_and_process,
    evaluation_trace,
    format_table,
    pow2_at_least,
)
from repro.traffic.flows import KEY_SRC_IP

MEMORY_KB = (40, 80, 120, 160, 200)
PROBABILITIES = (1.0, 0.5, 0.25, 0.125)


def run(quick: bool = True) -> Dict:
    trace = evaluation_trace(quick)
    truth = trace.flow_sizes(KEY_SRC_IP)
    threshold = 256 if quick else 1024
    true_hh = {k for k, v in truth.items() if v >= threshold}
    series: List[Dict] = []
    for kb in MEMORY_KB:
        buckets = buckets_for_bytes(kb * 1024, rows=3)
        point = {"memory_kb": kb}
        for p in PROBABILITIES:
            task = MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=buckets,
                depth=3,
                algorithm="cms",
                sample_prob=p,
            )
            _, handle = deploy_and_process(
                task, trace, register_size=pow2_at_least(buckets)
            )
            reported = handle.algorithm.heavy_hitters(truth.keys(), threshold)
            point[f"p={p}"] = f1_score(reported, true_hh)
        series.append(point)
    return {"series": series, "threshold": threshold}


def format_result(result: Dict) -> str:
    cols = [f"p={p}" for p in PROBABILITIES]
    rows = [
        [s["memory_kb"]] + [f"{s[c]:.3f}" for c in cols] for s in result["series"]
    ]
    out = "Figure 14b -- heavy hitters under probabilistic execution\n"
    return out + format_table(["KB"] + cols, rows)


if __name__ == "__main__":
    print(format_result(run()))
