"""Shared experiment plumbing: trace caches, sizing helpers, table rendering."""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

from repro.traffic import Trace, ddos_trace, zipf_trace

#: Bytes per CMU bucket under the evaluation's uniform 32-bit configuration.
BUCKET_BYTES = 4


@lru_cache(maxsize=8)
def evaluation_trace(quick: bool = True, seed: int = 2020) -> Trace:
    """The WIDE-stand-in workload for accuracy experiments.

    Quick mode keeps pure-Python per-packet processing tractable; full mode
    triples the scale.  Flow-size skew (Zipf alpha 1.1) matches backbone
    traces' heavy tails.
    """
    if quick:
        return zipf_trace(num_flows=6_000, num_packets=60_000, seed=seed)
    return zipf_trace(num_flows=20_000, num_packets=200_000, seed=seed)


@lru_cache(maxsize=8)
def evaluation_ddos_trace(quick: bool = True, seed: int = 2021) -> Trace:
    """DDoS-victim workload (Fig. 14c): threshold-crossing victims plus
    sub-threshold decoys and Zipf background."""
    if quick:
        return ddos_trace(
            num_victims=12,
            sources_per_victim=1_200,
            background_flows=4_000,
            background_packets=25_000,
            seed=seed,
        )
    return ddos_trace(
        num_victims=30,
        sources_per_victim=2_000,
        background_flows=10_000,
        background_packets=80_000,
        seed=seed,
    )


def pow2_at_least(value: int) -> int:
    """Smallest power of two >= value (minimum 64: the smallest register)."""
    value = max(64, int(value))
    if value & (value - 1):
        value = 1 << value.bit_length()
    return value


def buckets_for_bytes(total_bytes: float, rows: int = 1) -> int:
    """Bucket count (per row, power of two) approximating a byte budget."""
    per_row = total_bytes / (rows * BUCKET_BYTES)
    buckets = max(64, int(per_row))
    # Round to the *nearest* power of two so memory axes line up.
    hi = 1 << buckets.bit_length()
    lo = hi >> 1
    return hi if (hi - buckets) < (buckets - lo) else lo


def memory_bytes(buckets: int, rows: int = 1) -> int:
    return buckets * rows * BUCKET_BYTES


def default_batch_size() -> Optional[int]:
    """Batch size experiment drivers use, from ``FLYMON_BATCH_SIZE``.

    Unset or empty keeps the batched engine on at its default size; ``0`` or
    a negative value selects the scalar reference path; a positive integer
    fixes the batch size.
    """
    raw = os.environ.get("FLYMON_BATCH_SIZE", "").strip()
    if not raw:
        return DEFAULT_BATCH_SIZE
    value = int(raw)
    return value if value > 0 else None


#: Default column-slice size for experiment replays: large enough that numpy
#: kernel launches amortize, small enough to stay cache-friendly.
DEFAULT_BATCH_SIZE = 8192


def default_workers() -> int:
    """Shard-worker count experiment drivers use, from ``FLYMON_WORKERS``.

    Unset, empty, or invalid keeps the single-pipeline path (1); values
    above 1 route trace replays through the sharded parallel engine, which
    merges worker register state exactly (results stay bit-identical).
    """
    from repro.dataplane.sharding import default_workers as _default_workers

    return _default_workers()


def deploy_and_process(
    task,
    trace: Trace,
    num_groups: int = 3,
    register_size: int = None,
    seed_base: int = 0xC0DE,
    batch_size: Optional[int] = "env",
    workers: Optional[int] = "env",
):
    """Fresh controller sized for the task, deploy, run the trace.

    Returns ``(controller, handle)``.  The pipeline resource model is
    skipped for accuracy sweeps (memory axes may exceed one pipeline's SRAM;
    resource questions are Figs. 2/11/13's job).

    ``batch_size`` defaults to :func:`default_batch_size` (the
    ``FLYMON_BATCH_SIZE`` environment override); pass ``None`` to force the
    scalar reference path or an integer to fix the batch size.  ``workers``
    defaults to :func:`default_workers` (``FLYMON_WORKERS``); values above 1
    shard the replay over parallel datapath replicas.  All paths produce
    bit-identical register state, digests, and estimates.
    """
    from repro.core.controller import FlyMonController

    if batch_size == "env":
        batch_size = default_batch_size()
    if workers == "env":
        workers = default_workers()
    if register_size is None:
        register_size = 1 << 16
    controller = FlyMonController(
        num_groups=num_groups,
        register_size=register_size,
        place_on_pipeline=False,
        seed_base=seed_base,
    )
    handle = controller.add_task(task)
    controller.process_trace(trace, batch_size=batch_size, workers=workers)
    return controller, handle


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain fixed-width table (the benches print these)."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
