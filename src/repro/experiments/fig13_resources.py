"""Figure 13: resource usage and scalability.

(a) Utilization of six resources for the ``switch.p4`` baseline alone and
with 1 / 3 CMU Groups integrated (the paper: a group adds <8.3% average
overhead; at least 3 groups fit alongside the baseline).

(b) Hash and SALU utilization versus allocated MAU stages under
cross-stacking (the paper: 75% hash, 56.25% SALU at 12 stages).

(c) Number of deployable CMUs versus candidate-key size, with and without
the less-copy compression (the paper: 5x more CMUs at 350+ bits).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.cmu_group import CmuGroup
from repro.core.placement import (
    apply_placements,
    cmus_deployable,
    plan_cross_stacking,
    stacking_utilization,
)
from repro.dataplane.switch import SWITCH_P4_BASELINE_UTILIZATION, TofinoSwitch
from repro.experiments.common import format_table

RESOURCE_LABELS = {
    "hash_units": "Hash Unit",
    "salus": "SALU",
    "sram_blocks": "SRAM",
    "tcam_blocks": "TCAM",
    "vliw": "VLIW",
    "table_ids": "Logical Table",
}

KEY_SIZES_BITS = (32, 64, 104, 360)


def run_13a() -> Dict:
    variants = {}
    for label, groups in (("switch.p4", 0), ("+1 CMU-Group", 1), ("+3 CMU-Group", 3)):
        switch = TofinoSwitch(with_baseline=True)
        group_objs = [CmuGroup(g) for g in range(groups)]
        apply_placements(
            switch.pipeline, group_objs, plan_cross_stacking(12, groups)
        )
        variants[label] = switch.utilization()
    # Average per-group increment across the six plotted resources.
    base = variants["switch.p4"]
    one = variants["+1 CMU-Group"]
    increments = [one[r] - base[r] for r in RESOURCE_LABELS]
    return {
        "variants": variants,
        "avg_group_overhead": sum(increments) / len(increments),
        "max_group_overhead": max(increments),
    }


def run_13b() -> Dict:
    series = {}
    for stages in (4, 6, 8, 10, 12):
        util = stacking_utilization(stages)
        series[stages] = {"hash": util["hash_units"], "salu": util["salus"]}
    return {"series": series}


def run_13c(phv_free_bits: int = 1900) -> Dict:
    series: List[Dict] = []
    for bits in KEY_SIZES_BITS:
        series.append(
            {
                "key_bits": bits,
                "without_compression": cmus_deployable(
                    bits, phv_free_bits, with_compression=False
                ),
                "with_compression": cmus_deployable(
                    bits, phv_free_bits, with_compression=True
                ),
            }
        )
    return {"series": series, "phv_free_bits": phv_free_bits}


def run(quick: bool = True) -> Dict:
    return {"fig13a": run_13a(), "fig13b": run_13b(), "fig13c": run_13c()}


def format_result(result: Dict) -> str:
    out = ["Figure 13a -- utilization with CMU Groups over switch.p4"]
    a = result["fig13a"]
    rows = []
    for resource, label in RESOURCE_LABELS.items():
        rows.append(
            [label]
            + [f"{a['variants'][v][resource]:.1%}" for v in a["variants"]]
        )
    out.append(format_table(["resource"] + list(a["variants"]), rows))
    out.append(
        f"average per-group overhead: {a['avg_group_overhead']:.1%} "
        "(paper: <8.3%)"
    )

    out.append("\nFigure 13b -- cross-stacking utilization vs stages")
    b = result["fig13b"]["series"]
    rows = [[s, f"{b[s]['hash']:.1%}", f"{b[s]['salu']:.1%}"] for s in sorted(b)]
    out.append(format_table(["stages", "HASH", "SALU"], rows))
    out.append("(paper at 12 stages: HASH 75%, SALU 56.25%)")

    out.append("\nFigure 13c -- deployable CMUs vs candidate key size")
    rows = [
        [s["key_bits"], s["without_compression"], s["with_compression"]]
        for s in result["fig13c"]["series"]
    ]
    out.append(format_table(["key bits", "w/o compression", "w/ compression"], rows))
    return "\n".join(out)


if __name__ == "__main__":
    print(format_result(run()))
