"""Figure 12a: impact of reconfiguration events on traffic forwarding.

A discrete-time throughput simulation of the testbed experiment: 12 iPerf
pairs pushing 80-93 Gbps for 100 s while nine reconfiguration events fire
every 10 s.  ``Bare`` (no measurement) and ``FlyMon`` forward continuously
-- FlyMon reconfigures via runtime rules, which never interrupt the
pipeline.  ``Static`` reconfigures by reloading the P4 program, parking the
port for 4-8 s per reload; per the paper's charitable optimizations it
skips pure-deletion events and batches each add+reallocation pair into one
reload.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.common import format_table

DURATION_S = 100.0
DT_S = 0.1
EVENT_TYPES = (
    "add",
    "realloc",
    "delete",
    "add",
    "realloc",
    "delete",
    "add",
    "realloc",
    "delete",
)


def run(quick: bool = True, seed: int = 0) -> Dict:
    rng = np.random.default_rng(seed)
    steps = int(DURATION_S / DT_S)
    time = np.arange(steps) * DT_S

    # Offered load: 80-93 Gbps with slow variation plus jitter.
    base = 86.5 + 5.0 * np.sin(2 * np.pi * time / 40.0)
    base += rng.normal(0, 1.0, size=steps)
    base = base.clip(80.0, 93.0)

    events = [
        {"id": f"e{i + 1}", "time_s": 10.0 * (i + 1), "type": EVENT_TYPES[i]}
        for i in range(9)
    ]

    bare = base.copy()
    flymon = base.copy()  # runtime rules: no forwarding impairment

    static = base.copy()
    reload_times = _static_reload_times(events)
    interruptions = []
    for t_reload in reload_times:
        outage = rng.uniform(4.0, 8.0)
        lo = int(t_reload / DT_S)
        hi = min(steps, int((t_reload + outage) / DT_S))
        static[lo:hi] = 0.0
        interruptions.append(outage)

    summary = {
        "bare_gb": float(bare.sum() * DT_S / 8),
        "flymon_gb": float(flymon.sum() * DT_S / 8),
        "static_gb": float(static.sum() * DT_S / 8),
        "flymon_interruption_s": 0.0,
        "static_interruption_s": float(sum(interruptions)),
        "static_reloads": len(reload_times),
    }
    return {
        "time_s": time.tolist(),
        "bare_gbps": bare.tolist(),
        "flymon_gbps": flymon.tolist(),
        "static_gbps": static.tolist(),
        "events": events,
        "summary": summary,
    }


def _static_reload_times(events: List[Dict]) -> List[float]:
    """The static method's optimized reload schedule: drop deletions, batch
    each (add, realloc) pair into a single reload at the later event."""
    reloads = []
    pending_add = None
    for event in events:
        if event["type"] == "delete":
            continue
        if event["type"] == "add":
            pending_add = event
            continue
        # realloc: batch with the pending add if one is waiting.
        reloads.append(event["time_s"])
        pending_add = None
    if pending_add is not None:
        reloads.append(pending_add["time_s"])
    return reloads


def format_result(result: Dict) -> str:
    s = result["summary"]
    rows = [
        ["Bare", f"{s['bare_gb']:.0f}", "0.0"],
        ["FlyMon", f"{s['flymon_gb']:.0f}", f"{s['flymon_interruption_s']:.1f}"],
        ["Static", f"{s['static_gb']:.0f}", f"{s['static_interruption_s']:.1f}"],
    ]
    out = "Figure 12a -- forwarding during 9 reconfiguration events\n"
    out += format_table(["variant", "data forwarded (GB)", "interruption (s)"], rows)
    out += (
        f"\n(static reloads: {s['static_reloads']}; each parks traffic 4-8 s; "
        "FlyMon: zero impairment)"
    )
    return out


if __name__ == "__main__":
    print(format_result(run()))
