"""Figure 14d: flow-cardinality RE versus memory.

Single-key distinct counting: the original BeauCoup gets RE < 0.2 with tens
of bytes (one coupon table), while FlyMon-HLL needs more memory but reaches
much higher accuracy (RE well below 0.05 at kilobytes) -- the crossover the
paper highlights.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import relative_error
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    deploy_and_process,
    evaluation_trace,
    format_table,
    pow2_at_least,
)
from repro.sketches import BeauCoup
from repro.traffic.flows import KEY_5TUPLE

MEMORY_BYTES = (16, 128, 1024, 8192)


def _flymon_hll(trace, true_cardinality: int, total_bytes: int, repetitions: int = 3) -> float:
    # Largest power-of-two bucket count within the byte budget (floored at 4
    # registers -- tiny-memory points are exactly where the paper shows HLL
    # losing to BeauCoup).  Averaged over hash seeds: a single small-m HLL
    # sample can be arbitrarily lucky or unlucky.
    buckets = max(4, 1 << max(2, (total_bytes // 4).bit_length() - 1))
    errors = []
    for rep in range(repetitions):
        task = MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.distinct(KEY_5TUPLE),
            memory=buckets,
            depth=1,
            algorithm="hll",
        )
        _, handle = deploy_and_process(
            task,
            trace,
            num_groups=1,
            register_size=pow2_at_least(buckets),
            seed_base=0xC0DE + 0x7000 * rep,
        )
        errors.append(
            relative_error(true_cardinality, handle.algorithm.estimate())
        )
    return sum(errors) / len(errors)


def _beaucoup(trace, true_cardinality: int, total_bytes: int) -> float:
    # A single-key query: one slot per table suffices; extra bytes buy
    # independent repetitions whose median damps the variance (BeauCoup's
    # stochastic averaging).  The coupon window is tuned from an
    # order-of-magnitude prior, not the true answer.
    prior_scale = 1 << max(6, true_cardinality.bit_length())  # e.g. 8192
    repetitions = min(16, max(1, total_bytes // 8))
    estimates = []
    for rep in range(repetitions):
        sketch = BeauCoup(
            slots=1,
            threshold=prior_scale,
            num_coupons=32,
            depth=1,
            seed=0x99 + 31 * rep,
        )
        for fields in trace.iter_fields():
            sketch.update("all", attribute_value=KEY_5TUPLE.extract(fields))
        estimates.append(sketch.estimate_distinct("all"))
    estimates.sort()
    median = estimates[len(estimates) // 2]
    return relative_error(true_cardinality, median)


def run(quick: bool = True) -> Dict:
    trace = evaluation_trace(quick)
    true_cardinality = trace.cardinality(KEY_5TUPLE)
    series: List[Dict] = []
    for total in MEMORY_BYTES:
        series.append(
            {
                "memory_bytes": total,
                "BeauCoup": _beaucoup(trace, true_cardinality, total),
                "FlyMon-HLL": _flymon_hll(trace, true_cardinality, total),
            }
        )
    return {"series": series, "true_cardinality": true_cardinality}


def format_result(result: Dict) -> str:
    rows = [
        [s["memory_bytes"], f"{s['BeauCoup']:.4f}", f"{s['FlyMon-HLL']:.4f}"]
        for s in result["series"]
    ]
    out = (
        f"Figure 14d -- flow cardinality (true {result['true_cardinality']}): "
        "RE vs memory (bytes)\n"
    )
    return out + format_table(["bytes", "BeauCoup", "FlyMon-HLL"], rows)


if __name__ == "__main__":
    print(format_result(run()))
