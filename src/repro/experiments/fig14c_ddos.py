"""Figure 14c: DDoS-victim detection F1 versus memory.

Multi-key distinct counting with threshold 512 on the DDoS workload:
FlyMon-BeauCoup (d = 1 / 3) against the original BeauCoup (d = 1 / 3).
Expected shape: all converge with memory; FlyMon-BeauCoup (d=3) achieves
the higher F1 once memory exceeds ~100 KB (its multi-table completion rule
suppresses the collision-driven false positives the original's checksums
only partially catch).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import f1_score
from repro.core.task import AttributeSpec, MeasurementTask
from repro.experiments.common import (
    buckets_for_bytes,
    deploy_and_process,
    evaluation_ddos_trace,
    format_table,
    pow2_at_least,
)
from repro.sketches import BeauCoup
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP

MEMORY_KB = (16, 32, 64, 128, 256)
THRESHOLD = 512


def _flymon(trace, counts, true_victims, total_bytes: int, depth: int) -> float:
    buckets = buckets_for_bytes(total_bytes, rows=depth)
    task = MeasurementTask(
        key=KEY_DST_IP,
        attribute=AttributeSpec.distinct(KEY_SRC_IP),
        memory=buckets,
        depth=depth,
        algorithm="beaucoup",
        threshold=THRESHOLD,
    )
    _, handle = deploy_and_process(
        task, trace, register_size=pow2_at_least(buckets)
    )
    return f1_score(handle.algorithm.alarms(counts.keys()), true_victims)


def _original(trace, counts, true_victims, total_bytes: int, depth: int) -> float:
    slots = max(64, total_bytes // (4 * depth))
    sketch = BeauCoup(slots=slots, threshold=THRESHOLD, num_coupons=32, depth=depth)
    for fields in trace.iter_fields():
        sketch.update(
            KEY_DST_IP.extract(fields), attribute_value=KEY_SRC_IP.extract(fields)
        )
    return f1_score(sketch.alarms(), true_victims)


def run(quick: bool = True) -> Dict:
    trace = evaluation_ddos_trace(quick)
    counts = trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)
    true_victims = {k for k, v in counts.items() if v >= THRESHOLD}
    series: List[Dict] = []
    for kb in MEMORY_KB:
        total = kb * 1024
        series.append(
            {
                "memory_kb": kb,
                "FlyMon-BeauCoup (d=1)": _flymon(trace, counts, true_victims, total, 1),
                "FlyMon-BeauCoup (d=3)": _flymon(trace, counts, true_victims, total, 3),
                "BeauCoup (d=1)": _original(trace, counts, true_victims, total, 1),
                "BeauCoup (d=3)": _original(trace, counts, true_victims, total, 3),
            }
        )
    return {"series": series, "true_victims": len(true_victims)}


def format_result(result: Dict) -> str:
    algos = [k for k in result["series"][0] if k != "memory_kb"]
    rows = [
        [s["memory_kb"]] + [f"{s[a]:.3f}" for a in algos] for s in result["series"]
    ]
    out = (
        f"Figure 14c -- DDoS victims (threshold {THRESHOLD}, "
        f"{result['true_victims']} true victims): F1 vs memory (KB)\n"
    )
    return out + format_table(["KB"] + algos, rows)


if __name__ == "__main__":
    print(format_result(run()))
