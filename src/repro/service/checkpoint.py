"""JSON service artifacts: sealed epochs you can query offline.

``repro serve`` runs a :class:`~repro.service.engine.MeasurementService`
over a trace and writes the artifact produced by
:func:`service_checkpoint`: the controller's replayable checkpoint plus,
for every retained epoch, the per-task sealed row slices, drained digests,
series outputs, and watcher events.  :func:`load_service_state` rebuilds a
queryable view -- a fresh controller restored via
:meth:`FlyMonController.from_checkpoint` with real :class:`SealedEpoch`
objects reconstructed around it -- so ``repro query`` answers typed
queries against any retained epoch without replaying traffic.

Only tasks still deployed when the artifact was written are recoverable
(queries need a live deployment to interpret the sealed cells); epochs
that sealed since-removed tasks simply omit them.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.controller import FlyMonController, TaskHandle
from repro.service.engine import MeasurementService, SealedEpoch, StaleEpochError

ARTIFACT_VERSION = 1


def _placement_signature(handle: TaskHandle) -> List[List[int]]:
    """Per-row ``[group, cmu, base, length]`` -- sealed-cell alignment
    depends on it, so restores verify it before answering queries."""
    return [
        [row.group.group_id, row.cmu.index, row.mem.base, row.mem.length]
        for row in handle.rows
    ]


def _json_safe(value):
    """Recursively coerce measurement outputs into JSON-encodable values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(v) for v in value)
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        return _json_safe(asdict(value))
    return repr(value)


def service_checkpoint(service: MeasurementService) -> Dict[str, object]:
    """A JSON-safe artifact of the service: controller + sealed epochs."""
    controller = service.controller
    handles = controller.tasks  # checkpoint order == replay order
    epochs: List[Dict[str, object]] = []
    for sealed in service.epochs:
        tasks: Dict[str, object] = {}
        for task_index, handle in enumerate(handles):
            if not sealed.has_task(handle.task_id):
                continue
            tasks[str(task_index)] = {
                "rows": [values.tolist() for values in sealed.read_rows(handle)],
                "digests": [
                    sorted(_json_safe(flow) for flow in digests)
                    for digests in sealed.digests(handle)
                ],
            }
        epochs.append(
            {
                "index": sealed.index,
                "packets": sealed.packets,
                "start_ts": sealed.start_ts,
                "end_ts": sealed.end_ts,
                "seal_ms": sealed.seal_ms,
                "tasks": tasks,
                "outputs": _json_safe(sealed.outputs),
                "watcher_events": _json_safe(sealed.watcher_events),
            }
        )
    return {
        "version": ARTIFACT_VERSION,
        "controller": controller.checkpoint(),
        "rotation": {
            "epoch_packets": service.epoch_packets,
            "epoch_duration_us": service.epoch_duration_us,
            "epoch_wall_ms": service.epoch_wall_ms,
            "retain": service.retain,
            "workers": service.workers,
        },
        "tasks": [
            {
                "algorithm": handle.algorithm_name,
                "task_id": handle.task_id,
                "key": [list(part) for part in handle.task.key.parts],
                "placement": _placement_signature(handle),
            }
            for handle in handles
        ],
        "series": sorted(service._series),
        "epochs": epochs,
        "watcher_log": _json_safe(service.watcher_log),
        "stats": _json_safe(service.stats()),
    }


class RestoredService:
    """A queryable offline view rebuilt from a service artifact.

    ``controller`` is a fresh replay of the artifact's deployments (same
    placement, fresh task ids); ``tasks[i]`` corresponds to the artifact's
    task index ``i``.  ``epochs`` are real :class:`SealedEpoch` objects, so
    :meth:`query` resolves typed queries through the same detached sealed
    bindings the live service uses.
    """

    def __init__(
        self,
        controller: FlyMonController,
        epochs: List[SealedEpoch],
        series_names: List[str],
        rotation: Dict[str, object],
        task_info: List[Dict[str, object]],
        watcher_log: List[Dict[str, object]],
    ) -> None:
        self.controller = controller
        self.epochs = epochs
        self.series_names = series_names
        self.rotation = rotation
        self.task_info = task_info
        self.watcher_log = watcher_log

    @property
    def tasks(self) -> List[TaskHandle]:
        return self.controller.tasks

    @property
    def latest(self) -> Optional[SealedEpoch]:
        return self.epochs[-1] if self.epochs else None

    def epoch(self, index: int) -> SealedEpoch:
        for sealed in self.epochs:
            if sealed.index == index:
                return sealed
        retained = [s.index for s in self.epochs]
        raise StaleEpochError(
            f"epoch {index} is not in the artifact (retained: {retained})"
        )

    def query(self, query, epoch=None):
        """Resolve a typed query against a retained epoch (default: latest)."""
        from repro.service.queries import resolve

        if isinstance(epoch, SealedEpoch):
            sealed = epoch
        elif epoch is not None:
            sealed = self.epoch(int(epoch))
        else:
            sealed = self.latest
            if sealed is None:
                raise StaleEpochError("artifact holds no sealed epochs")
        return resolve(query, sealed)

    def series(self, name: str) -> List[Tuple[int, object]]:
        if name not in self.series_names:
            raise KeyError(f"series {name!r} is not in the artifact")
        return [
            (sealed.index, sealed.outputs[name])
            for sealed in self.epochs
            if name in sealed.outputs
        ]


def load_service_state(state: Dict[str, object]) -> RestoredService:
    """Rebuild a :class:`RestoredService` from :func:`service_checkpoint`."""
    version = state.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(f"unsupported service artifact version {version!r}")
    controller = FlyMonController.from_checkpoint(state["controller"])
    handles = controller.tasks
    for index, (handle, info) in enumerate(zip(handles, state.get("tasks", []))):
        stored = info.get("placement")
        if stored is not None and _placement_signature(handle) != stored:
            raise ValueError(
                f"task index {index} ({info.get('algorithm')}) restored at a "
                f"different placement than it was sealed with -- the sealed "
                f"cells cannot be interpreted (artifact predates the "
                f"controller's reconfiguration history?)"
            )
    registers = {
        (group.group_id, cmu.index): cmu.register
        for group in controller.groups
        for cmu in group.cmus
    }
    epochs: List[SealedEpoch] = []
    for entry in state["epochs"]:
        cells: Dict[Tuple[int, int], np.ndarray] = {}
        digest_sets: Dict[Tuple[int, int, int], set] = {}
        task_ids: List[int] = []
        for index_str, payload in entry["tasks"].items():
            handle = handles[int(index_str)]
            task_ids.append(handle.task_id)
            for row, values, digests in zip(
                handle.rows, payload["rows"], payload["digests"]
            ):
                key = (row.group.group_id, row.cmu.index)
                if key not in cells:
                    cells[key] = np.zeros(
                        registers[key].size, dtype=np.int64
                    )
                mem = row.mem
                cells[key][mem.base : mem.base + mem.length] = np.asarray(
                    values, dtype=np.int64
                )
                if digests:
                    digest_sets[key + (handle.task_id,)] = {
                        tuple(int(v) for v in flow) for flow in digests
                    }
        sealed = SealedEpoch(
            index=int(entry["index"]),
            packets=int(entry["packets"]),
            start_ts=entry.get("start_ts"),
            end_ts=entry.get("end_ts"),
            cells=cells,
            registers={key: registers[key] for key in cells},
            task_ids=task_ids,
            digest_sets=digest_sets,
        )
        sealed.seal_ms = float(entry.get("seal_ms", 0.0))
        sealed.outputs = dict(entry.get("outputs", {}))
        sealed.watcher_events = list(entry.get("watcher_events", []))
        epochs.append(sealed)
    return RestoredService(
        controller=controller,
        epochs=epochs,
        series_names=list(state.get("series", [])),
        rotation=dict(state.get("rotation", {})),
        task_info=list(state.get("tasks", [])),
        watcher_log=list(state.get("watcher_log", [])),
    )
