"""Watcher rules: measurement-driven reconfiguration at epoch boundaries.

ChameleMon shifts measurement attention as network state changes; watchers
are this repro's version of that loop.  Each watcher evaluates a metric
against the epoch just sealed (cardinality estimate, heavy-hitter count,
fill factor -- or any callable), compares it against a threshold, and when
it fires optionally runs an *action*: a reconfiguration (resize / add /
remove task) executed through the controller's transactional operations, so
a failed reaction rolls back bit-identically and the service keeps serving.

Actions reference tasks through :class:`TaskRef`, a mutable holder the
action updates on a successful resize -- queries, series, and later watcher
evaluations automatically follow the new deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.adaptive import fill_factor_from_rows
from repro.core.controller import PlacementError, TaskHandle


class TaskRef:
    """A stable reference to a task that survives reconfigurations."""

    def __init__(self, handle: TaskHandle) -> None:
        self.handle = handle

    @property
    def task_id(self) -> int:
        return self.handle.task_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskRef(task_id={self.handle.task_id})"


def unwrap(task) -> TaskHandle:
    return task.handle if isinstance(task, TaskRef) else task


class ActionNoop(Exception):
    """Raised by a watcher action that decided nothing needs doing.

    Recorded as outcome ``"noop"`` on the event; unlike a committed action
    it does not consume the watcher's cooldown, so the watcher re-evaluates
    at the very next seal.
    """


@dataclass
class WatcherEvent:
    """One watcher evaluation: the metric, the decision, and any action."""

    epoch: int
    watcher: str
    value: float
    fired: bool
    threshold: Optional[float] = None
    direction: str = "above"
    action: Optional[str] = None
    outcome: Optional[str] = None  # "ok" | "noop" | "rolled_back" | "failed" | None
    error: Optional[str] = None


@dataclass
class Watcher:
    """A threshold rule evaluated at every epoch seal.

    ``metric`` is ``fn(service, sealed) -> float``; the watcher fires when
    the value exceeds ``above`` and/or drops below ``below``.  ``action``
    (``fn(service, sealed) -> str description``) runs on fire, at most once
    per ``cooldown_epochs`` consecutive epochs: after firing at epoch ``e``
    the watcher is suppressed until epoch ``e + cooldown_epochs``, so
    ``cooldown_epochs=2`` fires at most every other epoch and values <= 1
    never suppress.  An action that raises :class:`ActionNoop` records
    outcome ``"noop"`` and does not consume the cooldown.  Reconfiguration
    failures are caught, recorded on the event, and never unseat the
    service -- the transactional control plane has already rolled the
    attempt back.
    """

    name: str
    metric: Callable
    above: Optional[float] = None
    below: Optional[float] = None
    action: Optional[Callable] = None
    cooldown_epochs: int = 0
    _last_fired_epoch: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.above is None and self.below is None:
            raise ValueError(f"watcher {self.name!r} needs above= and/or below=")

    def _crossed(self, value: float) -> Optional[str]:
        if self.above is not None and value > self.above:
            return "above"
        if self.below is not None and value < self.below:
            return "below"
        return None

    def _cooling_down(self, epoch: int) -> bool:
        # Fired at epoch e -> suppressed while epoch - e < cooldown_epochs,
        # i.e. eligible again exactly at e + cooldown_epochs ("at most once
        # per cooldown window").
        return (
            self._last_fired_epoch is not None
            and epoch - self._last_fired_epoch < self.cooldown_epochs
        )

    def _attribution(self, direction: Optional[str]) -> tuple:
        """``(threshold, direction)`` for the event record.

        A fired rule reports the side it crossed.  A quiet rule reports the
        side it watches: the configured one, or ``above`` when both are set.
        """
        if direction == "below" or (direction is None and self.above is None):
            return self.below, "below"
        return self.above, "above"

    def evaluate(self, service, sealed) -> WatcherEvent:
        value = float(self.metric(service, sealed))
        direction = self._crossed(value)
        threshold, recorded_direction = self._attribution(direction)
        event = WatcherEvent(
            epoch=sealed.index,
            watcher=self.name,
            value=value,
            fired=direction is not None and not self._cooling_down(sealed.index),
            threshold=threshold,
            direction=recorded_direction,
        )
        if not event.fired:
            return event
        if self.action is None:
            self._last_fired_epoch = sealed.index
            return event
        try:
            event.action = self.action(service, sealed) or self.name
            event.outcome = "ok"
        except ActionNoop as exc:
            # Nothing to do: record it distinctly and leave the cooldown
            # untouched so the watcher re-evaluates at the next seal.
            event.action = self.name
            event.outcome = "noop"
            event.error = str(exc) or None
            return event
        except PlacementError as exc:
            # The transaction restored the original deployment; the ref (if
            # the action used one) still points at a live handle.
            event.action = self.name
            event.outcome = "rolled_back"
            event.error = str(exc)
        except Exception as exc:  # noqa: BLE001 - reaction failures must not
            # unseat the service; the controller rolled itself back.
            event.action = self.name
            event.outcome = "failed"
            event.error = f"{type(exc).__name__}: {exc}"
        self._last_fired_epoch = sealed.index
        return event


# ---------------------------------------------------------------------------
# Built-in metrics
# ---------------------------------------------------------------------------


def cardinality_metric(task) -> Callable:
    """Sealed-epoch cardinality estimate of a distinct-counting task."""
    from repro.service.queries import CardinalityQuery, resolve

    def metric(service, sealed) -> float:
        return float(resolve(CardinalityQuery(task), sealed))

    return metric


def heavy_hitter_count_metric(task, threshold: Optional[int] = None, candidates=None) -> Callable:
    """Number of heavy hitters the sealed epoch reports."""
    from repro.service.queries import HeavyHitterQuery, resolve

    query = HeavyHitterQuery(
        task,
        threshold=threshold,
        candidates=tuple(candidates) if candidates is not None else None,
    )

    def metric(service, sealed) -> float:
        return float(len(resolve(query, sealed)))

    return metric


def fill_factor_metric(task) -> Callable:
    """The sealed epoch's fill factor (the adaptive manager's accuracy
    proxy), computed from the snapshot -- no register access."""

    def metric(service, sealed) -> float:
        return fill_factor_from_rows(sealed.read_rows(unwrap(task)))

    return metric


# ---------------------------------------------------------------------------
# Built-in actions
# ---------------------------------------------------------------------------


def resize_action(
    ref: TaskRef,
    factor: float = 2.0,
    min_memory: int = 64,
    max_memory: int = 1 << 16,
) -> Callable:
    """Resize ``ref``'s task by ``factor`` (rounded to the *nearest* power
    of two, ties toward the smaller size, clamped to [min, max]).

    Runs through :meth:`FlyMonController.resize_task`, so a mid-flight
    failure rolls back to the original deployment; on success the ref is
    repointed at the new handle.  A resize that lands back on the current
    size (shrink rounded home, or clamped at a bound) raises
    :class:`ActionNoop` so the watcher neither burns its cooldown nor logs
    a phantom ``"ok"``.
    """
    if not isinstance(ref, TaskRef):
        raise TypeError("resize_action needs a TaskRef (it must repoint it)")

    def action(service, sealed) -> str:
        handle = ref.handle
        old_memory = handle.task.memory
        target = int(round(old_memory * factor))
        target = max(min_memory, min(max_memory, target))
        if target & (target - 1):
            hi = 1 << target.bit_length()
            lo = hi >> 1
            target = lo if (target - lo) <= (hi - target) else hi
        target = max(min_memory, min(max_memory, target))
        if target == old_memory:
            raise ActionNoop(
                f"task{handle.task_id}: already at {old_memory} buckets"
            )
        new_handle = service.controller.resize_task(handle, target)
        ref.handle = new_handle
        return (
            f"resize task{handle.task_id}->task{new_handle.task_id}: "
            f"{old_memory} -> {target} buckets"
        )

    return action


def add_task_action(task, assign_to: Optional[TaskRef] = None) -> Callable:
    """Deploy ``task`` when the watcher fires (attention shifting in)."""

    def action(service, sealed) -> str:
        handle = service.controller.add_task(task)
        if assign_to is not None:
            assign_to.handle = handle
        return f"add task{handle.task_id} ({handle.algorithm_name})"

    return action


def remove_task_action(ref: TaskRef) -> Callable:
    """Tear down ``ref``'s task when the watcher fires (attention out)."""

    def action(service, sealed) -> str:
        handle = unwrap(ref)
        service.controller.remove_task(handle)
        return f"remove task{handle.task_id}"

    return action
