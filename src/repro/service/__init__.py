"""Continuous measurement service: streaming epochs, queries, watchers.

The modules here turn the one-shot controller into a long-running runtime
(the ROADMAP's "serves heavy traffic continuously" north star, StreaMon's
stream-monitoring abstraction):

* :mod:`repro.service.engine` -- :class:`MeasurementService` ingests packet
  chunks indefinitely, rotates measurement epochs on packet-count,
  packet-time, or wall-clock boundaries, and seals each epoch into an
  immutable :class:`SealedEpoch` register snapshot before resetting, so
  any number of threads query sealed state while the next epoch ingests;
* :mod:`repro.service.queries` -- typed queries (heavy hitters, frequency
  point lookup, cardinality, entropy, existence, inter-arrival) resolved
  against a sealed epoch or the live window;
* :mod:`repro.service.watchers` -- threshold rules evaluated at each seal
  that emit telemetry and can trigger transactional reconfiguration
  (ChameleMon-style attention shifting on the rollback machinery);
* :mod:`repro.service.checkpoint` -- JSON service artifacts (controller
  checkpoint + sealed epochs) that ``repro query`` resolves offline;
* :mod:`repro.service.wal` -- a crash-consistent write-ahead log: control
  mutations and epoch seals appended as records, replayable into a
  checkpoint-format artifact after a crash (``repro recover``).
"""

from repro.service.engine import (
    MeasurementService,
    SealedEpoch,
    SealedRowView,
    StaleEpochError,
)
from repro.service.queries import (
    CardinalityQuery,
    EntropyQuery,
    ExistenceQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    InterArrivalQuery,
    Query,
    UnsupportedQueryError,
    resolve,
)
from repro.service.watchers import (
    ActionNoop,
    TaskRef,
    Watcher,
    WatcherEvent,
    cardinality_metric,
    fill_factor_metric,
    heavy_hitter_count_metric,
    resize_action,
)
from repro.service.checkpoint import load_service_state, service_checkpoint
from repro.service.wal import (
    ServiceWal,
    WalError,
    WalWriteError,
    iter_wal_records,
    recover_service,
    recover_service_artifact,
    wal_segments,
)

__all__ = [
    "ActionNoop",
    "CardinalityQuery",
    "EntropyQuery",
    "ExistenceQuery",
    "FrequencyQuery",
    "HeavyHitterQuery",
    "InterArrivalQuery",
    "MeasurementService",
    "Query",
    "SealedEpoch",
    "SealedRowView",
    "ServiceWal",
    "StaleEpochError",
    "TaskRef",
    "UnsupportedQueryError",
    "WalError",
    "WalWriteError",
    "Watcher",
    "WatcherEvent",
    "cardinality_metric",
    "fill_factor_metric",
    "heavy_hitter_count_metric",
    "iter_wal_records",
    "load_service_state",
    "recover_service",
    "recover_service_artifact",
    "resize_action",
    "resolve",
    "service_checkpoint",
    "wal_segments",
]
