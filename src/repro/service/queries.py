"""Typed measurement queries.

One dataclass per question the paper's task catalog can answer -- heavy
hitters, frequency point lookups, cardinality, entropy, existence,
max inter-arrival -- each carrying the task it targets.  :func:`resolve`
answers them against the live window (the epoch currently ingesting) or a
:class:`~repro.service.engine.SealedEpoch`; sealed resolution runs the same
control-plane estimators (the :mod:`repro.analysis` math the deployed
algorithms wrap) on a detached binding over the epoch's immutable cell
arrays (:meth:`SealedEpoch.bind`), so a sealed answer is bit-identical to
asking at the instant the epoch was sealed -- and, because resolution never
touches the live registers, any number of threads may resolve sealed
queries while ingestion continues.

Tasks may be referenced directly by :class:`~repro.core.controller.TaskHandle`
or through a :class:`~repro.service.watchers.TaskRef`, which stays valid
across watcher-triggered resizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.core.controller import TaskHandle


class UnsupportedQueryError(TypeError):
    """The targeted task's algorithm cannot answer this query type."""


def _unwrap(task) -> TaskHandle:
    handle = getattr(task, "handle", None)
    if isinstance(handle, TaskHandle):
        return handle
    if isinstance(task, TaskHandle):
        return task
    raise TypeError(f"query target must be a TaskHandle or TaskRef, not {task!r}")


class Query:
    """Base class; concrete queries are frozen dataclasses below."""

    task: object

    def handle(self) -> TaskHandle:
        return _unwrap(self.task)


@dataclass(frozen=True)
class FrequencyQuery(Query):
    """Point lookup: the flow's estimated frequency (or max, for SuMax)."""

    task: object
    flow: Tuple[int, ...]


@dataclass(frozen=True)
class HeavyHitterQuery(Query):
    """Flows at or above ``threshold``.

    With ``candidates`` the estimate is the algorithm's min-over-rows query
    per candidate; without, the data-plane alarm digests answer directly
    (requires the task to have been deployed with a ``threshold``).
    """

    task: object
    threshold: Optional[int] = None
    candidates: Optional[Tuple[Tuple[int, ...], ...]] = None


@dataclass(frozen=True)
class CardinalityQuery(Query):
    """Distinct-flow count (HLL / linear counting / MRAC flow count)."""

    task: object


@dataclass(frozen=True)
class EntropyQuery(Query):
    """Flow-size entropy recovered from an MRAC row by EM."""

    task: object


@dataclass(frozen=True)
class ExistenceQuery(Query):
    """Bloom-filter membership of one flow."""

    task: object
    flow: Tuple[int, ...]


@dataclass(frozen=True)
class InterArrivalQuery(Query):
    """Max inter-arrival time (or generic MAX attribute) of one flow."""

    task: object
    flow: Tuple[int, ...]


def resolve(query: Query, sealed=None):
    """Answer ``query`` against the live window or a sealed epoch.

    Live resolution reads the deployed algorithm's registers directly.
    Sealed resolution runs the same estimator detached onto the epoch's
    immutable snapshot (:meth:`SealedEpoch.bind`) -- it never mutates live
    state, so it is safe under concurrent ingestion.
    """
    handle = query.handle()
    if sealed is None:
        return _resolve(query, handle, handle.algorithm, sealed=None)
    sealed.require_task(handle)
    return _resolve(query, handle, sealed.bind(handle), sealed=sealed)


def _resolve(query: Query, handle: TaskHandle, algo, sealed):
    if isinstance(query, FrequencyQuery):
        fn = getattr(algo, "query", None)
        if fn is None:
            raise UnsupportedQueryError(
                f"{handle.algorithm_name} has no point-frequency query"
            )
        return fn(tuple(query.flow))
    if isinstance(query, HeavyHitterQuery):
        return _heavy_hitters(query, handle, algo, sealed)
    if isinstance(query, CardinalityQuery):
        if hasattr(algo, "estimate"):
            return float(algo.estimate())
        if hasattr(algo, "estimate_flow_count"):
            return float(algo.estimate_flow_count())
        raise UnsupportedQueryError(
            f"{handle.algorithm_name} has no cardinality estimator"
        )
    if isinstance(query, EntropyQuery):
        if hasattr(algo, "estimate_entropy"):
            return float(algo.estimate_entropy())
        raise UnsupportedQueryError(
            f"{handle.algorithm_name} has no entropy estimator"
        )
    if isinstance(query, ExistenceQuery):
        if hasattr(algo, "contains"):
            return bool(algo.contains(tuple(query.flow)))
        raise UnsupportedQueryError(
            f"{handle.algorithm_name} has no membership probe"
        )
    if isinstance(query, InterArrivalQuery):
        fn = getattr(algo, "query", None)
        if fn is None:
            raise UnsupportedQueryError(
                f"{handle.algorithm_name} has no per-flow maximum query"
            )
        return fn(tuple(query.flow))
    raise UnsupportedQueryError(f"unknown query type {type(query).__name__}")


def _heavy_hitters(
    query: HeavyHitterQuery, handle: TaskHandle, algo, sealed
) -> set:
    if query.candidates is not None:
        threshold = query.threshold
        if threshold is None:
            threshold = handle.task.threshold
        if threshold is None:
            raise UnsupportedQueryError("heavy-hitter query needs a threshold")
        fn = getattr(algo, "heavy_hitters", None)
        if fn is None:
            raise UnsupportedQueryError(
                f"{handle.algorithm_name} has no heavy-hitter query"
            )
        return fn(tuple(query.candidates), threshold)
    # Digest path: threshold-crossing flows the data plane reported.
    if handle.task.threshold is None:
        raise UnsupportedQueryError(
            "digest-based heavy hitters need the task deployed with a "
            "threshold (or pass candidates=)"
        )
    if query.threshold is not None and query.threshold != handle.task.threshold:
        raise UnsupportedQueryError(
            f"digest-based heavy hitters answer only the deployed threshold "
            f"{handle.task.threshold}, not {query.threshold} "
            f"(pass candidates= for other thresholds)"
        )
    if sealed is not None:
        digest_sets = sealed.digests(handle)
    else:
        digest_sets = [
            row.cmu.peek_digests(handle.task_id) for row in handle.rows
        ]
    if not digest_sets:
        return set()
    out = set(digest_sets[0])
    for digests in digest_sets[1:]:
        out &= digests
    return out
