"""Crash-consistent, bounded-size write-ahead log for the measurement service.

PR 4's JSON artifacts (:mod:`repro.service.checkpoint`) snapshot a service
once, at exit; a process killed mid-stream loses everything.  The WAL
extends those checkpoints to *delta* form: a ``base`` record written at
attach (the controller's replayable checkpoint plus rotation/series
config), then one appended record per committed control-plane mutation
(``op``) and per sealed epoch (``seal``).  Every append is flushed and
fsync'd before the service proceeds, so after a crash -- ``kill -9``
included -- the log contains every epoch that was ever sealed, plus at
most one torn trailing line (the record being written at the instant of
death), which recovery ignores.

Two on-disk layouts share one record format:

* **single file** (``ServiceWal(path)``) -- one unbounded JSON-lines log,
  exactly PR 8's layout; right for short runs and kept for compatibility;
* **segmented directory** (``segment_seals=`` / ``segment_bytes=``, or an
  existing directory path) -- numbered segments ``wal-000001.jsonl``,
  ``wal-000002.jsonl``, ...  When the live segment crosses a seal-count or
  byte threshold the WAL *rolls*: it opens the next segment with a fresh
  ``base`` record that embeds the retained sealed epochs
  (checkpoint-based compaction, bounded by the service's ``retain``), so
  every older segment becomes redundant and is pruned down to
  ``keep_segments``.  Recovery reads only the newest segment with an
  intact base -- O(retain + one segment), not O(stream length) -- and
  falls back exactly one segment when the newest base is torn (the crash
  hit mid-roll; ``keep_segments >= 2`` guarantees the predecessor is
  still there, because pruning only runs after the new base is durable).

Storage failures follow a configurable policy (``policy=`` /
``--wal-policy``).  ``"fail"`` surfaces the first write error as
:class:`WalWriteError` at the next seal, stopping ingest cleanly with the
sealed epoch intact in memory.  ``"degrade"`` keeps the service running:
the WAL enters ``state == "degraded"``, caches seal records in a bounded
buffer (``retain`` deep, evictions of never-persisted entries counted in
``lost_seals`` -- loss is *accounted*, never silent), and retries
attaching storage under exponential backoff (a roll to a fresh segment,
or an atomic rewrite of the single file), whose fresh base record embeds
the cached epochs so a successful reattach makes every retained epoch
durable again.  Exhausting the reattach budget moves the WAL to
``state == "failed"`` (still caching, still accounting).  The
``wal_append`` / ``wal_fsync`` / ``wal_roll`` / ``disk_full`` fault sites
(:mod:`repro.faults`) inject failures at each of these points, including
``kill``/``torn`` arguments that SIGKILL the process mid-record to pin
crash-at-every-boundary recovery.

Recovery (:func:`recover_service_artifact`) is two-pass and replay-based:

1. concatenate the base history with every ``op`` record to obtain the
   final committed operation sequence, and replay it onto a fresh
   controller (:meth:`FlyMonController.replay_history`) -- placement
   (groups, CMUs, memory bases) is reproduced exactly, and the replay's
   ref map translates the task ids recorded in seal records into the
   recovered deployments;
2. re-key each seal payload (the base's compacted epochs first, then the
   segment's ``seal`` records) through that map and emit a standard
   :func:`~repro.service.checkpoint.service_checkpoint` artifact, so
   ``repro query`` and :func:`load_service_state` work on a recovered
   log exactly as on a clean checkpoint.

Guarantees: every sealed epoch whose ``seal`` record hit the log is
recovered bit-identically (rows, digests, series outputs, watcher
events); the epoch in flight when the process died is lost by design --
its packets were never sealed, so no query ever observed them.  Tasks
removed before the crash are omitted from recovered epochs, matching
checkpoint semantics (interpreting sealed cells needs a live deployment).
"""

from __future__ import annotations

import errno
import json
import os
import re
import signal
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.controller import FlyMonController
from repro.faults import (
    FAULTS,
    FaultError,
    SITE_DISK_FULL,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_WAL_ROLL,
)
from repro.telemetry import (
    EV_WAL_DEGRADED,
    EV_WAL_REATTACHED,
    EV_WAL_SEGMENT_ROLL,
    TELEMETRY as _TELEMETRY,
)

WAL_VERSION = 2
#: Versions :func:`recover_service_artifact` understands (1 = PR 8's
#: single-file logs, 2 = segmented/compacted logs; the record formats are
#: identical apart from the base's optional ``segment``/``epochs`` fields).
SUPPORTED_WAL_VERSIONS = (1, 2)

POLICY_FAIL = "fail"
POLICY_DEGRADE = "degrade"
WAL_POLICIES = (POLICY_FAIL, POLICY_DEGRADE)

STATE_OK = "ok"
STATE_DEGRADED = "degraded"
STATE_FAILED = "failed"

_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.jsonl$")


class WalError(ValueError):
    """The log is unusable: bad version, missing base, or mid-log
    corruption (anything other than a torn final line)."""


class WalWriteError(WalError):
    """A WAL append failed under ``policy="fail"``: storage refused the
    write, so ingest must stop (the sealed epoch stays intact in memory,
    and everything previously fsync'd stays recoverable)."""


def _fsync_dir(path: str) -> None:
    """Make a directory entry change (create/replace/unlink) durable."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def wal_segments(path: str) -> List[Tuple[int, str]]:
    """Sorted ``(index, path)`` pairs of a WAL directory's segments."""
    out: List[Tuple[int, str]] = []
    for name in os.listdir(path):
        match = _SEGMENT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(path, name)))
    out.sort()
    return out


class ServiceWal:
    """Appends base/op/seal records for one service run.

    Attach before ingesting (and after registering series/watchers, so the
    base record captures them)::

        wal = ServiceWal(path)                       # single file
        wal = ServiceWal(dir, segment_seals=64)      # segmented directory
        wal.attach(service)
        try:
            service.ingest(...)
        finally:
            wal.close()

    Attaching to a path that already holds records is refused
    (:class:`WalError`) unless ``resume=True``: a second base appended
    mid-log would make recovery replay the first run's history against
    the second run's seals.  ``resume`` starts a fresh segment (segmented)
    or rotates the old file to ``<path>.prev`` (single file).

    The service calls :meth:`capture_epoch_tasks` / :meth:`append_seal`
    from inside its seal critical section; user code never does.
    """

    def __init__(
        self,
        path: str,
        *,
        segment_seals: Optional[int] = None,
        segment_bytes: Optional[int] = None,
        policy: str = POLICY_FAIL,
        resume: bool = False,
        keep_segments: int = 2,
        reattach_backoff_s: float = 0.5,
        reattach_backoff_cap_s: float = 30.0,
        reattach_max_attempts: int = 8,
    ) -> None:
        if policy not in WAL_POLICIES:
            raise ValueError(
                f"unknown WAL policy {policy!r} (known: {', '.join(WAL_POLICIES)})"
            )
        if segment_seals is not None and segment_seals <= 0:
            raise ValueError("segment_seals must be positive")
        if segment_bytes is not None and segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if keep_segments < 2:
            # The roll protocol needs the predecessor segment to survive
            # until the new base is durable, or a mid-roll crash would have
            # nothing to fall back to.
            raise ValueError("keep_segments must be >= 2")
        self.path = str(path)
        self.segment_seals = segment_seals
        self.segment_bytes = segment_bytes
        self.policy = policy
        self.resume = resume
        self.keep_segments = keep_segments
        self.reattach_backoff_s = float(reattach_backoff_s)
        self.reattach_backoff_cap_s = float(reattach_backoff_cap_s)
        self.reattach_max_attempts = int(reattach_max_attempts)
        self.segmented = (
            segment_seals is not None
            or segment_bytes is not None
            or os.path.isdir(self.path)
        )
        self._fh = None
        self._service = None
        self._retain: int = 0
        self._state = STATE_OK
        self._last_error: Optional[str] = None
        self._segment_index = 0
        self._seals_in_segment = 0
        self._bytes_in_segment = 0
        # Bounded (retain-deep) cache of the newest seal records, each
        # flagged durable once it is known to live in the current log.
        # This is what a reattach base embeds, and what bounds loss.
        self._cache: List[Dict[str, object]] = []
        self._backoff = self.reattach_backoff_s
        self._next_attempt = 0.0
        self.records_written = 0
        self.rolls = 0
        self.lost_seals = 0
        self.seals_deferred = 0
        self.seals_recovered = 0
        self.ops_deferred = 0
        self.reattach_attempts = 0
        self.reattachments = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def state(self) -> str:
        """``"ok"`` / ``"degraded"`` / ``"failed"``."""
        return self._state

    def attach(self, service) -> "ServiceWal":
        if self._service is not None:
            raise WalError("this WAL is already attached to a service")
        if service._wal is not None:
            raise WalError("the service already has a WAL attached")
        controller = service.controller
        base_checkpoint = controller.checkpoint()
        if "history" not in base_checkpoint:
            raise WalError(
                "cannot WAL a controller with an incomplete reconfiguration "
                "history -- recovery replays it to reproduce placement"
            )
        self._service = service
        self._retain = service.retain
        # Epochs sealed before attach would otherwise be unrecoverable:
        # pre-fill the cache so the first base record embeds them.
        for sealed in service.epochs:
            self._cache_seal(
                self._seal_record(
                    sealed, self.capture_epoch_tasks(sealed, controller.tasks)
                )
            )
        try:
            if self.segmented:
                self._attach_segmented()
            else:
                self._attach_single_file()
        except (OSError, FaultError) as exc:
            try:
                self._handle_write_failure(exc, kind="base")
            except WalWriteError:
                self._service = None
                raise
        except WalError:
            self._service = None
            raise
        controller.add_op_listener(self._on_op)
        service._wal = self
        return self

    def _attach_segmented(self) -> None:
        os.makedirs(self.path, exist_ok=True)
        existing = wal_segments(self.path)
        if existing and not self.resume:
            raise WalError(
                f"{self.path}: WAL directory already holds "
                f"{len(existing)} segment(s) from an earlier run -- recover "
                "it first, or pass resume=True (--wal-force) to start a "
                "fresh segment alongside it"
            )
        self._segment_index = (existing[-1][0] if existing else 0) + 1
        fh = open(self._segment_path(self._segment_index), "w", encoding="utf-8")
        self._fh = fh
        self._bytes_in_segment = self._write_record(
            fh, self._base_record(segment=self._segment_index)
        )
        self._seals_in_segment = 0
        _fsync_dir(self.path)
        self._mark_cache_durable()

    def _attach_single_file(self) -> None:
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            if not self.resume:
                raise WalError(
                    f"{self.path}: WAL already contains records from an "
                    "earlier run; appending a second base mid-log would make "
                    "recovery replay the wrong history -- recover it first, "
                    "or pass resume=True (--wal-force) to rotate it aside"
                )
            os.replace(self.path, self.path + ".prev")
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write_record(self._fh, self._base_record())
        self._mark_cache_durable()

    def close(self) -> None:
        if self._service is not None:
            # Degraded runs may end before the reattach backoff elapses:
            # force one last attempt so every cached (never-persisted)
            # epoch gets a durable home when storage has recovered.
            if self.policy == POLICY_DEGRADE and self._state != STATE_OK:
                if any(not entry["durable"] for entry in self._cache):
                    self._try_reattach(force=True)
            self._service.controller.remove_op_listener(self._on_op)
            self._service._wal = None
            self._service = None
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "ServiceWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- record construction --------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.path, f"wal-{index:06d}.jsonl")

    def _base_record(self, segment: Optional[int] = None) -> Dict[str, object]:
        service = self._service
        record: Dict[str, object] = {
            "type": "base",
            "version": WAL_VERSION,
            "controller": service.controller.checkpoint(),
            "rotation": {
                "epoch_packets": service.epoch_packets,
                "epoch_duration_us": service.epoch_duration_us,
                "epoch_wall_ms": service.epoch_wall_ms,
                "retain": service.retain,
                "workers": service.workers,
            },
            "series": sorted(service._series),
        }
        if segment is not None:
            record["segment"] = segment
        if self._cache:
            # Checkpoint-based compaction: the retained sealed epochs ride
            # inside the base, so every earlier segment becomes redundant.
            record["epochs"] = [entry["record"] for entry in self._cache]
        return record

    def capture_epoch_tasks(self, sealed, handles) -> Dict[str, object]:
        """Per-task sealed payloads keyed by the *live* task id.

        Called by the service immediately after the snapshot, before
        watchers run: a watcher resize removes the old deployment, after
        which its rows can no longer be interpreted.
        """
        from repro.service.checkpoint import _json_safe

        tasks: Dict[str, object] = {}
        for handle in handles:
            if not sealed.has_task(handle.task_id):
                continue
            tasks[str(handle.task_id)] = {
                "rows": [values.tolist() for values in sealed.read_rows(handle)],
                "digests": [
                    sorted(_json_safe(flow) for flow in digests)
                    for digests in sealed.digests(handle)
                ],
            }
        return tasks

    def _seal_record(self, sealed, tasks: Dict[str, object]) -> Dict[str, object]:
        from repro.service.checkpoint import _json_safe

        return {
            "type": "seal",
            "index": sealed.index,
            "packets": sealed.packets,
            "start_ts": sealed.start_ts,
            "end_ts": sealed.end_ts,
            "seal_ms": sealed.seal_ms,
            "tasks": tasks,
            "outputs": _json_safe(sealed.outputs),
            "watcher_events": _json_safe(sealed.watcher_events),
        }

    # -- guarded writes -------------------------------------------------

    def _write_record(self, fh, record: Dict[str, object]) -> int:
        """One fsync'd append through the storage fault sites; returns the
        record's byte length (the segment-size accounting unit)."""
        if fh is None:
            raise OSError(errno.EBADF, "WAL file is not open")
        line = json.dumps(record, sort_keys=True) + "\n"
        arg = FAULTS.trip(SITE_WAL_APPEND, type=record.get("type"))
        if arg is not None:
            self._execute_crash_arg(arg, fh, line, site=SITE_WAL_APPEND)
        if FAULTS.trip(SITE_DISK_FULL, type=record.get("type")) is not None:
            raise OSError(errno.ENOSPC, "injected disk_full: no space left")
        fh.write(line)
        fh.flush()
        if FAULTS.trip(SITE_WAL_FSYNC, type=record.get("type")) is not None:
            raise OSError(errno.EIO, "injected wal_fsync failure")
        os.fsync(fh.fileno())
        self.records_written += 1
        return len(line)

    @staticmethod
    def _execute_crash_arg(arg, fh, line: str, site: str) -> None:
        """``kill`` dies before the write; ``torn`` leaves half the record
        on disk first (the canonical crash-mid-append signature); anything
        else surfaces as an I/O error for the policy ladder."""
        if arg == "torn":
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
        if arg in ("kill", "torn"):
            os.kill(os.getpid(), signal.SIGKILL)
        raise OSError(errno.EIO, f"injected {site} failure")

    def _handle_write_failure(self, exc: Exception, kind: str) -> None:
        self._last_error = f"{kind}: {exc}"
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter(
                "flymon_wal_write_failures_total", kind=kind
            ).inc()
        if self.policy == POLICY_FAIL:
            self._state = STATE_FAILED
            if kind != "op":
                raise WalWriteError(
                    f"{self.path}: WAL {kind} write failed: {exc}"
                ) from exc
            # An op listener fires inside a control-plane commit (possibly
            # a watcher action); raising here would be misattributed to the
            # reconfiguration.  The failure surfaces as WalWriteError at
            # the next seal instead -- recovery stays exact because no
            # later seal record ever hits the log.
            return
        if self._state == STATE_OK:
            self._state = STATE_DEGRADED
            self._backoff = self.reattach_backoff_s
            self._next_attempt = time.monotonic() + self._backoff
            if _TELEMETRY.enabled:
                _TELEMETRY.events.emit(
                    EV_WAL_DEGRADED, kind=kind, error=str(exc), path=self.path
                )

    # -- appends --------------------------------------------------------

    def _on_op(self, entry: Dict[str, object]) -> None:
        if self._state != STATE_OK:
            # Not lost: the controller's committed history carries every
            # op, and the next successful base embeds the full history.
            self.ops_deferred += 1
            return
        try:
            self._bytes_in_segment += self._write_record(
                self._fh, {"type": "op", "entry": entry}
            )
        except (OSError, FaultError) as exc:
            self.ops_deferred += 1
            self._handle_write_failure(exc, kind="op")

    def append_seal(self, sealed, tasks: Dict[str, object]) -> None:
        """Append the epoch's seal record (series outputs and watcher
        events are final by now -- the service calls this last)."""
        record = self._seal_record(sealed, tasks)
        entry = self._cache_seal(record)
        if self._state != STATE_OK:
            if self.policy == POLICY_FAIL:
                raise WalWriteError(
                    f"{self.path}: WAL unusable after earlier failure "
                    f"({self._last_error}); epoch {sealed.index} is sealed "
                    "in memory but not durable"
                )
            self.seals_deferred += 1
            self._try_reattach()
            return
        try:
            written = self._write_record(self._fh, record)
        except (OSError, FaultError) as exc:
            self.seals_deferred += 1
            self._handle_write_failure(exc, kind="seal")
            return
        entry["durable"] = True
        self._seals_in_segment += 1
        self._bytes_in_segment += written
        self._maybe_roll()

    def _cache_seal(self, record: Dict[str, object]) -> Dict[str, object]:
        entry = {"record": record, "durable": False}
        self._cache.append(entry)
        while len(self._cache) > max(1, self._retain):
            evicted = self._cache.pop(0)
            if not evicted["durable"]:
                # The service's ring dropped it too; loss is real -- and
                # counted, never silent.
                self.lost_seals += 1
        return entry

    def _mark_cache_durable(self) -> int:
        recovered = sum(1 for entry in self._cache if not entry["durable"])
        for entry in self._cache:
            entry["durable"] = True
        self.seals_recovered += recovered
        return recovered

    # -- segmentation ---------------------------------------------------

    def _maybe_roll(self) -> None:
        if not self.segmented:
            return
        due = (
            self.segment_seals is not None
            and self._seals_in_segment >= self.segment_seals
        ) or (
            self.segment_bytes is not None
            and self._bytes_in_segment >= self.segment_bytes
        )
        if not due:
            return
        try:
            self._roll()
        except (OSError, FaultError, WalError) as exc:
            if isinstance(exc, WalWriteError):
                raise
            self._handle_write_failure(exc, kind="roll")

    def _roll(self) -> None:
        """Open segment N+1 with a fresh compaction base, then prune.

        Ordering is the crash-safety invariant: the new base is written
        and fsync'd (file *and* directory) before the old segment is
        released or anything is pruned, so at every instant at least one
        segment on disk has an intact base.
        """
        next_index = self._segment_index + 1
        arg = FAULTS.trip(SITE_WAL_ROLL, segment=next_index)
        if arg is not None:
            self._execute_roll_fault(arg, next_index)
        fh = open(self._segment_path(next_index), "w", encoding="utf-8")
        try:
            base_bytes = self._write_record(
                fh, self._base_record(segment=next_index)
            )
            _fsync_dir(self.path)
        except BaseException:
            fh.close()
            raise
        old = self._fh
        self._fh = fh
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        self._segment_index = next_index
        self._seals_in_segment = 0
        self._bytes_in_segment = base_bytes
        self.rolls += 1
        self._mark_cache_durable()
        pruned = self._prune_segments()
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_WAL_SEGMENT_ROLL,
                segment=next_index,
                compacted_epochs=len(self._cache),
                pruned=pruned,
            )
            _TELEMETRY.registry.counter("flymon_wal_segment_rolls_total").inc()

    def _execute_roll_fault(self, arg, next_index: int) -> None:
        path = self._segment_path(next_index)
        if arg == "kill":
            # Crash after the new segment exists but before its base: the
            # newest segment is empty and recovery must fall back.
            open(path, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        if arg == "torn":
            line = json.dumps(self._base_record(segment=next_index), sort_keys=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        raise OSError(errno.EIO, "injected wal_roll failure")

    def _prune_segments(self) -> int:
        """Unlink segments older than the newest ``keep_segments``."""
        segments = wal_segments(self.path)
        stale = segments[: -self.keep_segments] if self.keep_segments else segments
        pruned = 0
        for _, seg_path in stale:
            try:
                os.unlink(seg_path)
                pruned += 1
            except OSError:
                pass  # pruning is best-effort; an orphan is only disk space
        if pruned:
            _fsync_dir(self.path)
        return pruned

    # -- degradation / reattach -----------------------------------------

    def _try_reattach(self, force: bool = False) -> bool:
        if self._state == STATE_OK:
            return True
        if self.policy == POLICY_FAIL:
            return False
        now = time.monotonic()
        if not force:
            if self._state == STATE_FAILED:
                return False
            if now < self._next_attempt:
                return False
        self.reattach_attempts += 1
        try:
            if self.segmented:
                self._roll()
            else:
                self._rewrite_single_file()
        except (OSError, FaultError, WalError) as exc:
            self._last_error = f"reattach: {exc}"
            self._backoff = min(self.reattach_backoff_cap_s, self._backoff * 2)
            self._next_attempt = time.monotonic() + self._backoff
            if not force and self.reattach_attempts >= self.reattach_max_attempts:
                self._state = STATE_FAILED
            return False
        self._state = STATE_OK
        self._last_error = None
        self.reattachments += 1
        self._backoff = self.reattach_backoff_s
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_WAL_REATTACHED,
                attempts=self.reattach_attempts,
                recovered_seals=self.seals_recovered,
                path=self.path,
            )
            _TELEMETRY.registry.counter("flymon_wal_reattached_total").inc()
        return True

    def _rewrite_single_file(self) -> None:
        """Atomically replace the single-file log with a fresh base whose
        embedded epochs are the cached (retain-deep) seal records."""
        tmp = self.path + ".tmp"
        fh = open(tmp, "w", encoding="utf-8")
        try:
            self._write_record(fh, self._base_record())
        except BaseException:
            fh.close()
            raise
        fh.close()
        os.replace(tmp, self.path)
        _fsync_dir(os.path.dirname(os.path.abspath(self.path)))
        old = self._fh
        self._fh = open(self.path, "a", encoding="utf-8")
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        self._seals_in_segment = 0
        self._bytes_in_segment = 0
        self._mark_cache_durable()

    # -- inspection -----------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Machine-readable WAL state for ``stats()`` / ``health()``."""
        return {
            "path": self.path,
            "mode": "segmented" if self.segmented else "single",
            "state": self._state,
            "policy": self.policy,
            "segment": self._segment_index if self.segmented else None,
            "seals_in_segment": self._seals_in_segment,
            "bytes_in_segment": self._bytes_in_segment,
            "records_written": self.records_written,
            "rolls": self.rolls,
            "lost_seals": self.lost_seals,
            "seals_deferred": self.seals_deferred,
            "seals_recovered": self.seals_recovered,
            "ops_deferred": self.ops_deferred,
            "reattach_attempts": self.reattach_attempts,
            "reattachments": self.reattachments,
            "last_error": self._last_error,
        }


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def iter_wal_records(path: str) -> Iterator[Dict[str, object]]:
    """Stream a WAL file's records, tolerating exactly one torn tail line.

    Reads line-by-line (an hours-long log never lands in memory at once).
    A record that fails to parse anywhere *before* the final line means
    real corruption and raises :class:`WalError`; a torn final line is the
    expected signature of a crash mid-append and is silently dropped.
    """
    pending: Optional[Tuple[int, Exception]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            if pending is not None:
                raise WalError(
                    f"{path}:{pending[0]}: corrupt WAL record mid-log: "
                    f"{pending[1]}"
                )
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                pending = (lineno, exc)  # torn only if nothing follows
                continue
            yield record


def read_wal_records(path: str) -> List[Dict[str, object]]:
    """:func:`iter_wal_records`, materialized (small logs and tests)."""
    return list(iter_wal_records(path))


def _pick_segment(path: str) -> Tuple[int, str, List[Dict[str, object]], int]:
    """The newest segment with an intact base, falling back one segment
    per torn/empty base (the mid-roll crash signature)."""
    segments = wal_segments(path)
    if not segments:
        raise WalError(f"{path}: empty WAL directory (no wal-NNNNNN.jsonl)")
    for position in range(len(segments) - 1, -1, -1):
        index, seg_path = segments[position]
        records = read_wal_records(seg_path)  # mid-log corruption raises
        if not records:
            # Empty or a single torn line: the crash interrupted the roll
            # before this segment's base became durable.
            if position == 0:
                raise WalError(
                    f"{path}: no segment holds an intact base record"
                )
            continue
        if records[0].get("type") != "base":
            raise WalError(
                f"{seg_path}: first record is {records[0].get('type')!r}, "
                "not base"
            )
        return index, seg_path, records, len(segments)
    raise WalError(f"{path}: no segment holds an intact base record")


def recover_service_artifact(path: str) -> Dict[str, object]:
    """Replay a WAL (single file or segment directory) into a
    :func:`service_checkpoint`-format artifact."""
    from repro.service.checkpoint import (
        ARTIFACT_VERSION,
        _json_safe,
        _placement_signature,
    )

    extra_stats: Dict[str, object] = {}
    if os.path.isdir(path):
        segment, seg_path, records, total = _pick_segment(path)
        extra_stats = {
            "wal_segments": total,
            "wal_segment": segment,
            "wal_segment_path": seg_path,
        }
        origin = seg_path
    else:
        records = read_wal_records(path)
        origin = path
    if not records:
        raise WalError(f"{origin}: empty WAL (no base record)")
    base = records[0]
    if base.get("type") != "base":
        raise WalError(
            f"{origin}: first record is {base.get('type')!r}, not base"
        )
    if base.get("version") not in SUPPORTED_WAL_VERSIONS:
        raise WalError(
            f"{origin}: unsupported WAL version {base.get('version')!r}"
        )

    ops = [r for r in records[1:] if r.get("type") == "op"]
    # The base's compacted epochs (if any) precede the segment's own seal
    # records; indexes are strictly increasing across the two.
    compacted = list(base.get("epochs", []))
    seals = compacted + [r for r in records[1:] if r.get("type") == "seal"]

    # Pass 1: final committed history -> fresh controller at the exact
    # placement the crashed service had.
    history = list(base["controller"].get("history", []))
    history.extend(op["entry"] for op in ops)
    controller = FlyMonController.construct_from_params(
        base["controller"]["params"]
    )
    refs = controller.replay_history(history)
    handles = controller.tasks
    index_of = {handle.task_id: i for i, handle in enumerate(handles)}

    # Pass 2: re-key seal records (live task ids at seal time) to task
    # indexes in the recovered controller's deployment order.
    epochs: List[Dict[str, object]] = []
    watcher_log: List[object] = []
    for seal in seals:
        tasks: Dict[str, object] = {}
        for tid_str, payload in seal.get("tasks", {}).items():
            handle = refs.get(int(tid_str))
            if handle is None:
                continue  # removed since this epoch sealed
            tasks[str(index_of[handle.task_id])] = payload
        epochs.append(
            {
                "index": seal["index"],
                "packets": seal["packets"],
                "start_ts": seal.get("start_ts"),
                "end_ts": seal.get("end_ts"),
                "seal_ms": seal.get("seal_ms", 0.0),
                "tasks": tasks,
                "outputs": seal.get("outputs", {}),
                "watcher_events": seal.get("watcher_events", []),
            }
        )
        watcher_log.extend(seal.get("watcher_events", []))

    rotation = dict(base.get("rotation", {}))
    retain = int(rotation.get("retain") or len(epochs) or 1)
    return {
        "version": ARTIFACT_VERSION,
        "controller": controller.checkpoint(),
        "rotation": rotation,
        "tasks": [
            {
                "algorithm": handle.algorithm_name,
                "task_id": handle.task_id,
                "key": [list(part) for part in handle.task.key.parts],
                "placement": _placement_signature(handle),
            }
            for handle in handles
        ],
        "series": list(base.get("series", [])),
        "epochs": epochs[-retain:],
        "watcher_log": _json_safe(watcher_log),
        "stats": {
            "recovered_from_wal": True,
            "wal_records": len(records),
            "wal_seals": len(seals),
            "wal_compacted": len(compacted),
            "wal_ops": len(ops),
            "epochs_recovered": len(epochs[-retain:]),
            **extra_stats,
        },
    }


def recover_service(path: str):
    """Rebuild a queryable :class:`RestoredService` straight from a WAL."""
    from repro.service.checkpoint import load_service_state

    return load_service_state(recover_service_artifact(path))
