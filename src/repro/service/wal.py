"""Crash-consistent write-ahead log for the measurement service.

PR 4's JSON artifacts (:mod:`repro.service.checkpoint`) snapshot a service
once, at exit; a process killed mid-stream loses everything.  The WAL
extends those checkpoints to *delta* form: a ``base`` record written at
attach (the controller's replayable checkpoint plus rotation/series
config), then one appended record per committed control-plane mutation
(``op``) and per sealed epoch (``seal``).  Every append is flushed and
fsync'd before the service proceeds, so after a crash -- ``kill -9``
included -- the log contains every epoch that was ever sealed, plus at
most one torn trailing line (the record being written at the instant of
death), which recovery ignores.

Recovery (:func:`recover_service_artifact`) is two-pass and replay-based:

1. concatenate the base history with every ``op`` record to obtain the
   final committed operation sequence, and replay it onto a fresh
   controller (:meth:`FlyMonController.replay_history`) -- placement
   (groups, CMUs, memory bases) is reproduced exactly, and the replay's
   ref map translates the task ids recorded in seal records into the
   recovered deployments;
2. re-key each ``seal`` record's per-task payloads through that map and
   emit a standard :func:`~repro.service.checkpoint.service_checkpoint`
   artifact, so ``repro query`` and :func:`load_service_state` work on a
   recovered log exactly as on a clean checkpoint.

Guarantees: every sealed epoch whose ``seal`` record hit the log is
recovered bit-identically (rows, digests, series outputs, watcher
events); the epoch in flight when the process died is lost by design --
its packets were never sealed, so no query ever observed them.  Tasks
removed before the crash are omitted from recovered epochs, matching
checkpoint semantics (interpreting sealed cells needs a live deployment).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.core.controller import FlyMonController

WAL_VERSION = 1


class WalError(ValueError):
    """The log is unusable: bad version, missing base, or mid-log
    corruption (anything other than a torn final line)."""


class ServiceWal:
    """Appends base/op/seal records for one service run.

    Attach before ingesting (and after registering series/watchers, so the
    base record captures them)::

        wal = ServiceWal(path)
        wal.attach(service)
        try:
            service.ingest(...)
        finally:
            wal.close()

    The service calls :meth:`capture_epoch_tasks` / :meth:`append_seal`
    from inside its seal critical section; user code never does.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = None
        self._service = None
        self.records_written = 0

    # -- lifecycle ------------------------------------------------------

    def attach(self, service) -> "ServiceWal":
        if self._service is not None:
            raise WalError("this WAL is already attached to a service")
        if service._wal is not None:
            raise WalError("the service already has a WAL attached")
        controller = service.controller
        base_checkpoint = controller.checkpoint()
        if "history" not in base_checkpoint:
            raise WalError(
                "cannot WAL a controller with an incomplete reconfiguration "
                "history -- recovery replays it to reproduce placement"
            )
        self._fh = open(self.path, "a", encoding="utf-8")
        self._service = service
        self._append(
            {
                "type": "base",
                "version": WAL_VERSION,
                "controller": base_checkpoint,
                "rotation": {
                    "epoch_packets": service.epoch_packets,
                    "epoch_duration_us": service.epoch_duration_us,
                    "epoch_wall_ms": service.epoch_wall_ms,
                    "retain": service.retain,
                    "workers": service.workers,
                },
                "series": sorted(service._series),
            }
        )
        controller.add_op_listener(self._on_op)
        service._wal = self
        return self

    def close(self) -> None:
        if self._service is not None:
            self._service.controller.remove_op_listener(self._on_op)
            self._service._wal = None
            self._service = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ServiceWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- record appends -------------------------------------------------

    def _append(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            raise WalError("WAL is not open")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    def _on_op(self, entry: Dict[str, object]) -> None:
        self._append({"type": "op", "entry": entry})

    def capture_epoch_tasks(self, sealed, handles) -> Dict[str, object]:
        """Per-task sealed payloads keyed by the *live* task id.

        Called by the service immediately after the snapshot, before
        watchers run: a watcher resize removes the old deployment, after
        which its rows can no longer be interpreted.
        """
        from repro.service.checkpoint import _json_safe

        tasks: Dict[str, object] = {}
        for handle in handles:
            if not sealed.has_task(handle.task_id):
                continue
            tasks[str(handle.task_id)] = {
                "rows": [values.tolist() for values in sealed.read_rows(handle)],
                "digests": [
                    sorted(_json_safe(flow) for flow in digests)
                    for digests in sealed.digests(handle)
                ],
            }
        return tasks

    def append_seal(self, sealed, tasks: Dict[str, object]) -> None:
        """Append the epoch's seal record (series outputs and watcher
        events are final by now -- the service calls this last)."""
        from repro.service.checkpoint import _json_safe

        self._append(
            {
                "type": "seal",
                "index": sealed.index,
                "packets": sealed.packets,
                "start_ts": sealed.start_ts,
                "end_ts": sealed.end_ts,
                "seal_ms": sealed.seal_ms,
                "tasks": tasks,
                "outputs": _json_safe(sealed.outputs),
                "watcher_events": _json_safe(sealed.watcher_events),
            }
        )


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def read_wal_records(path: str) -> List[Dict[str, object]]:
    """Parse a WAL, tolerating exactly one torn line at the tail.

    A record that fails to parse anywhere *before* the final line means
    real corruption and raises :class:`WalError`; a torn final line is the
    expected signature of a crash mid-append and is silently dropped.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    nonempty = [(i, line) for i, line in enumerate(lines) if line.strip()]
    records: List[Dict[str, object]] = []
    for pos, (lineno, line) in enumerate(nonempty):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if pos == len(nonempty) - 1:
                break  # torn tail: the append interrupted by the crash
            raise WalError(
                f"{path}:{lineno + 1}: corrupt WAL record mid-log: {exc}"
            ) from exc
    return records


def recover_service_artifact(path: str) -> Dict[str, object]:
    """Replay a WAL into a :func:`service_checkpoint`-format artifact."""
    from repro.service.checkpoint import (
        ARTIFACT_VERSION,
        _json_safe,
        _placement_signature,
    )

    records = read_wal_records(path)
    if not records:
        raise WalError(f"{path}: empty WAL (no base record)")
    base = records[0]
    if base.get("type") != "base":
        raise WalError(f"{path}: first record is {base.get('type')!r}, not base")
    if base.get("version") != WAL_VERSION:
        raise WalError(f"{path}: unsupported WAL version {base.get('version')!r}")

    ops = [r for r in records[1:] if r.get("type") == "op"]
    seals = [r for r in records[1:] if r.get("type") == "seal"]

    # Pass 1: final committed history -> fresh controller at the exact
    # placement the crashed service had.
    history = list(base["controller"].get("history", []))
    history.extend(op["entry"] for op in ops)
    controller = FlyMonController.construct_from_params(
        base["controller"]["params"]
    )
    refs = controller.replay_history(history)
    handles = controller.tasks
    index_of = {handle.task_id: i for i, handle in enumerate(handles)}

    # Pass 2: re-key seal records (live task ids at seal time) to task
    # indexes in the recovered controller's deployment order.
    epochs: List[Dict[str, object]] = []
    watcher_log: List[object] = []
    for seal in seals:
        tasks: Dict[str, object] = {}
        for tid_str, payload in seal.get("tasks", {}).items():
            handle = refs.get(int(tid_str))
            if handle is None:
                continue  # removed since this epoch sealed
            tasks[str(index_of[handle.task_id])] = payload
        epochs.append(
            {
                "index": seal["index"],
                "packets": seal["packets"],
                "start_ts": seal.get("start_ts"),
                "end_ts": seal.get("end_ts"),
                "seal_ms": seal.get("seal_ms", 0.0),
                "tasks": tasks,
                "outputs": seal.get("outputs", {}),
                "watcher_events": seal.get("watcher_events", []),
            }
        )
        watcher_log.extend(seal.get("watcher_events", []))

    rotation = dict(base.get("rotation", {}))
    retain = int(rotation.get("retain") or len(epochs) or 1)
    return {
        "version": ARTIFACT_VERSION,
        "controller": controller.checkpoint(),
        "rotation": rotation,
        "tasks": [
            {
                "algorithm": handle.algorithm_name,
                "task_id": handle.task_id,
                "key": [list(part) for part in handle.task.key.parts],
                "placement": _placement_signature(handle),
            }
            for handle in handles
        ],
        "series": list(base.get("series", [])),
        "epochs": epochs[-retain:],
        "watcher_log": _json_safe(watcher_log),
        "stats": {
            "recovered_from_wal": True,
            "wal_records": len(records),
            "wal_seals": len(seals),
            "wal_ops": len(ops),
            "epochs_recovered": len(epochs[-retain:]),
        },
    }


def recover_service(path: str):
    """Rebuild a queryable :class:`RestoredService` straight from a WAL."""
    from repro.service.checkpoint import load_service_state

    return load_service_state(recover_service_artifact(path))
