"""The streaming epoch engine.

:class:`MeasurementService` layers continuous operation on top of
:class:`~repro.core.controller.FlyMonController`: traffic is ingested in
arbitrary chunks (whole traces, column batches, single packets), epochs
rotate on packet-count or packet-time boundaries, and every rotation *seals*
the epoch -- the hosting registers are snapshotted via
:meth:`Register.snapshot_cells` into an immutable :class:`SealedEpoch`, the
per-epoch alarm digests are drained, and the deployments are reset so the
next window starts fresh.  Sealed epochs live in a bounded ring
(``retain``), so long-running services hold a sliding time series of the
last N windows without unbounded growth.

Ingestion rides the vectorized fast paths: chunks go through
``controller.process_trace(batch_size=...)`` (the batched engine) or
``process_trace_sharded`` when ``workers > 1`` -- never the scalar
per-packet loop (``batch_size=0`` forces it, for differential tests only).
Both paths are bit-identical to scalar replay, so sealed state matches a
one-shot run of the same window exactly.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import FlyMonController, TaskHandle
from repro.telemetry import (
    DEFAULT_MS_BUCKETS,
    EV_EPOCH_SEAL,
    EV_INGEST_SHED,
    EV_SEALER_RESTARTED,
    EV_WATCHER_ACTION,
    EV_WATCHER_FIRED,
    RECORDER as _RECORDER,
    TELEMETRY as _TELEMETRY,
)
from repro.traffic.packet import PACKET_FIELDS
from repro.traffic.trace import Trace

#: Default ingest batch size when ``FLYMON_BATCH_SIZE`` is unset.
DEFAULT_SERVICE_BATCH = 8192


def _default_batch_size() -> int:
    raw = os.environ.get("FLYMON_BATCH_SIZE", "").strip()
    if not raw:
        return DEFAULT_SERVICE_BATCH
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_SERVICE_BATCH
    return value if value > 0 else DEFAULT_SERVICE_BATCH


class StaleEpochError(KeyError):
    """The queried task was not deployed when this epoch was sealed (or its
    deployment changed since), so the sealed snapshot cannot answer for it."""


class SealedRowView:
    """A read-only stand-in for one deployed row, backed by sealed cells.

    Mirrors the :class:`~repro.core.algorithms.base.RowBinding` query
    surface (``read`` / ``value_for_fields`` / ``probe`` plus the
    ``group``/``cmu``/``config``/``mem`` attributes the estimators consult),
    but every cell access resolves against the epoch's immutable snapshot
    array instead of the live register.  Address computation (key
    compression, CMU index translation) delegates to the live binding --
    those paths are pure functions of the deployment's configuration --
    so a sealed read is bit-identical to what the live register held at the
    instant of sealing, without ever touching it.
    """

    __slots__ = ("_binding", "_cells")

    def __init__(self, binding, cells: np.ndarray) -> None:
        self._binding = binding
        self._cells = cells

    @property
    def group(self):
        return self._binding.group

    @property
    def cmu(self):
        return self._binding.cmu

    @property
    def task_id(self) -> int:
        return self._binding.task_id

    @property
    def config(self):
        return self._binding.config

    @property
    def mem(self):
        return self._binding.mem

    def read(self) -> np.ndarray:
        mem = self._binding.mem
        return self._cells[mem.base : mem.base + mem.length].copy()

    def value_for_fields(self, fields: Dict[str, int]) -> int:
        binding = self._binding
        compressed = binding.group.compress(fields)
        index = binding.cmu.index_for(binding.task_id, compressed)
        return int(self._cells[index & (len(self._cells) - 1)])

    def probe(self, fields: Dict[str, int]) -> Tuple[int, int, int]:
        binding = self._binding
        compressed = binding.group.compress(fields)
        cfg = binding.config
        index = binding.cmu.index_for(binding.task_id, compressed)
        value = int(self._cells[index & (len(self._cells) - 1)])
        p1 = cfg.p1_processor.apply(cfg.p1.value(fields, compressed), fields)
        return index, value, p1

    def reset(self) -> None:
        raise TypeError("sealed epochs are immutable; rows cannot be reset")


class SealedEpoch:
    """One finished epoch's immutable measurement state.

    Holds full-register snapshots of every CMU that hosted a task at seal
    time, the epoch's drained alarm digests, and any registered series
    outputs.  Queries resolve through :meth:`bind`: a detached copy of the
    task's estimator whose row bindings read the sealed cell arrays
    directly.  Sealed answers are bit-identical to querying the live state
    at the instant of sealing, and -- because resolution never touches the
    live registers -- any number of threads can query sealed epochs while
    ingestion continues.
    """

    def __init__(
        self,
        index: int,
        packets: int,
        start_ts: Optional[int],
        end_ts: Optional[int],
        cells: Dict[Tuple[int, int], np.ndarray],
        registers: Dict[Tuple[int, int], object],
        task_ids: Sequence[int],
        digest_sets: Dict[Tuple[int, int, int], set],
    ) -> None:
        self.index = index
        self.packets = packets
        self.start_ts = start_ts
        self.end_ts = end_ts
        self.seal_ms: float = 0.0
        self.outputs: Dict[str, object] = {}
        self.watcher_events: List[object] = []
        self.task_ids = frozenset(task_ids)
        self.digest_sets = digest_sets
        self._cells = cells
        self._registers = registers
        # task_id -> detached estimator bound to the sealed cells.  Plain
        # dict on purpose: entries are immutable once built, and a racing
        # rebuild just produces an equivalent object.
        self._bound: Dict[int, object] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SealedEpoch(index={self.index}, packets={self.packets}, "
            f"tasks={sorted(self.task_ids)})"
        )

    # -- sealed state access ------------------------------------------------

    def has_task(self, task_id: int) -> bool:
        return task_id in self.task_ids

    def cells(self, group_id: int, cmu_index: int) -> np.ndarray:
        """Copy of one register's sealed cell array."""
        return self._cells[(group_id, cmu_index)].copy()

    def require_task(self, handle: TaskHandle) -> None:
        if not self.has_task(handle.task_id):
            raise StaleEpochError(
                f"task {handle.task_id} was not sealed in epoch {self.index} "
                f"(sealed tasks: {sorted(self.task_ids)})"
            )

    def read_rows(self, handle: TaskHandle) -> List[np.ndarray]:
        """The task's per-row memory slices as sealed (no register access)."""
        self.require_task(handle)
        out = []
        for row in handle.rows:
            mem = row.mem
            cells = self._cells[(row.group.group_id, row.cmu.index)]
            out.append(cells[mem.base : mem.base + mem.length].copy())
        return out

    def digests(self, handle: TaskHandle) -> List[set]:
        """Per-row alarm digest sets drained at seal time."""
        self.require_task(handle)
        return [
            set(
                self.digest_sets.get(
                    (row.group.group_id, row.cmu.index, handle.task_id), set()
                )
            )
            for row in handle.rows
        ]

    def bind(self, handle: TaskHandle):
        """A detached copy of the task's estimator reading this epoch.

        The returned algorithm instance shares the deployment's
        configuration (key selectors, address translation, processors) but
        its row bindings are :class:`SealedRowView` objects over this
        epoch's snapshot arrays, so running any estimator on it neither
        reads nor writes the live registers.  Lock-free: safe to call (and
        to query the result) from any number of threads while ingestion
        continues.
        """
        self.require_task(handle)
        algo = self._bound.get(handle.task_id)
        if algo is not None and algo.task is handle.algorithm.task:
            return algo
        algo = copy.copy(handle.algorithm)
        algo.rows = [
            SealedRowView(row, self._cells[(row.group.group_id, row.cmu.index)])
            for row in handle.rows
        ]
        self._bound[handle.task_id] = algo
        return algo


class MeasurementService:
    """A continuously running measurement pipeline over one controller.

    Rotation policy (exactly one, or none for manual :meth:`rotate`):

    * ``epoch_packets`` -- seal after every N ingested packets;
    * ``epoch_duration_us`` -- seal whenever a packet's timestamp crosses
      the current epoch's end (timestamps must be non-decreasing, as they
      are in captured and generated traces);
    * ``epoch_wall_ms`` -- real-time rotation: :meth:`start` launches a
      background thread that seals every N wall-clock milliseconds while
      ingestion continues on the caller's thread(s).

    ``retain`` bounds the sealed-epoch ring; ``workers``/``batch_size``
    select the datapath fast path for every ingested chunk (``workers > 1``
    shards chunks over parallel pipeline replicas with exact register
    merging, so sealed state stays bit-identical to a sequential run).

    Concurrency model: ingestion and sealing serialize on an internal lock
    (held per processing window, so the wall-clock sealer interleaves at
    window boundaries); queries against sealed epochs are lock-free (see
    :meth:`SealedEpoch.bind`) and may run from any number of threads.
    Live-window queries and single-packet buffering belong to the ingest
    thread.
    """

    def __init__(
        self,
        controller: FlyMonController,
        epoch_packets: Optional[int] = None,
        epoch_duration_us: Optional[int] = None,
        retain: int = 8,
        batch_size: Optional[int] = None,
        workers: int = 1,
        backend: Optional[str] = None,
        runtime: Optional[str] = None,
        epoch_wall_ms: Optional[float] = None,
        max_stall_ms: Optional[float] = None,
        sealer_restart_budget: int = 3,
    ) -> None:
        modes = [
            name
            for name, value in (
                ("epoch_packets", epoch_packets),
                ("epoch_duration_us", epoch_duration_us),
                ("epoch_wall_ms", epoch_wall_ms),
            )
            if value is not None
        ]
        if len(modes) > 1:
            raise ValueError(
                "choose one of epoch_packets / epoch_duration_us / "
                f"epoch_wall_ms (got {', '.join(modes)})"
            )
        if epoch_packets is not None and epoch_packets <= 0:
            raise ValueError("epoch_packets must be positive")
        if epoch_duration_us is not None and epoch_duration_us <= 0:
            raise ValueError("epoch_duration_us must be positive")
        if epoch_wall_ms is not None and epoch_wall_ms <= 0:
            raise ValueError("epoch_wall_ms must be positive")
        if retain <= 0:
            raise ValueError("retain must be positive")
        if max_stall_ms is not None and max_stall_ms <= 0:
            raise ValueError("max_stall_ms must be positive")
        if sealer_restart_budget < 0:
            raise ValueError("sealer_restart_budget must be >= 0")
        self.controller = controller
        self.epoch_packets = epoch_packets
        self.epoch_duration_us = epoch_duration_us
        self.epoch_wall_ms = epoch_wall_ms
        self.retain = retain
        self.batch_size = batch_size
        self.workers = max(1, int(workers))
        self.backend = backend
        #: Shard runtime ("ephemeral" / "persistent"); ``None`` defers to the
        #: ``FLYMON_SHARD_RUNTIME`` environment variable.
        self.shard_runtime = runtime
        self.watchers: List[object] = []
        self.watcher_log: List[object] = []
        self._series: Dict[str, object] = {}
        self._ring: Deque[SealedEpoch] = deque(maxlen=retain)
        self._epoch_index = 0
        self._epoch_fill = 0
        self._packets_total = 0
        self._epoch_start_ts: Optional[int] = None
        self._epoch_min_ts: Optional[int] = None
        self._epoch_max_ts: Optional[int] = None
        self._pending_fields: List[Dict[str, int]] = []
        # Serializes ingestion windows against seals.  Reentrant so a seal
        # triggered from inside an ingest window (packet/duration
        # boundaries) nests cleanly.
        self._lock = threading.RLock()
        self._wall_thread: Optional[threading.Thread] = None
        self._wall_stop = threading.Event()
        # Overload protection: when set, an ingest window that cannot take
        # the lock within this bound is shed whole (exact accounting below)
        # instead of queueing unboundedly behind a slow seal/WAL/disk.
        self.max_stall_ms = max_stall_ms
        self.dropped_packets = 0
        self.dropped_windows = 0
        # Sealer supervision (epoch_wall_ms mode): the watchdog restarts a
        # dead sealer thread up to ``sealer_restart_budget`` times and
        # counts deadlines the sealer missed by more than 3 intervals.
        self.sealer_restart_budget = max(0, int(sealer_restart_budget))
        self.sealer_restarts = 0
        self.sealer_missed_deadlines = 0
        self._sealer_failed: Optional[str] = None
        self._sealer_tick: float = 0.0
        self._watchdog_thread: Optional[threading.Thread] = None
        # Optional write-ahead log (see repro.service.wal.ServiceWal):
        # epoch seals are appended as WAL records inside the seal critical
        # section, after watchers ran.
        self._wal = None
        #: Report of the most recent sharded window (``workers > 1`` only).
        self.last_shard_report = None
        #: Cumulative wall spent inside datapath processing, milliseconds.
        self.ingest_ms_total = 0.0

    # -- registration -------------------------------------------------------

    def add_watcher(self, watcher) -> object:
        """Register a threshold rule evaluated at every seal (in order)."""
        self.watchers.append(watcher)
        return watcher

    def register_series(self, name: str, query) -> None:
        """Evaluate ``query`` against every sealed epoch; results land in
        ``sealed.outputs[name]`` and are exposed by :meth:`series`."""
        if name in self._series:
            raise ValueError(f"series {name!r} already registered")
        self._series[name] = query

    # -- ingestion ----------------------------------------------------------

    def ingest(self, trace: Trace) -> List[SealedEpoch]:
        """Ingest one chunk; returns any epochs sealed while consuming it."""
        self._flush_pending()
        return self._ingest_chunk(trace)

    def ingest_batch(self, batch) -> List[SealedEpoch]:
        """Ingest a :class:`~repro.traffic.batch.PacketBatch` chunk."""
        trace = Trace({f: np.asarray(batch.get(f)) for f in PACKET_FIELDS})
        return self.ingest(trace)

    def ingest_packet(self, fields: Dict[str, int]) -> List[SealedEpoch]:
        """Ingest a single packet (buffered into batched chunks)."""
        self._pending_fields.append(dict(fields))
        if len(self._pending_fields) >= self._effective_batch():
            return self._flush_pending()
        # A buffered packet still has to respect packet-count rotation.
        if (
            self.epoch_packets is not None
            and self._epoch_fill + len(self._pending_fields) >= self.epoch_packets
        ):
            return self._flush_pending()
        return []

    def flush(self) -> List[SealedEpoch]:
        """Process any buffered single packets (no seal unless due)."""
        return self._flush_pending()

    def rotate(self, reset_handles: Optional[Sequence[TaskHandle]] = None) -> SealedEpoch:
        """Seal the current epoch now, regardless of boundaries.

        ``reset_handles`` narrows the end-of-epoch reset to specific
        deployments (the :class:`~repro.core.epochs.EpochRunner` contract);
        by default every controller deployment is reset.
        """
        with self._lock:
            self._flush_pending()
            return self._seal(reset_handles=reset_handles)

    # -- wall-clock rotation ------------------------------------------------

    def start(self) -> "MeasurementService":
        """Begin wall-clock rotation (``epoch_wall_ms`` mode only).

        A daemon thread seals the live window every ``epoch_wall_ms``
        milliseconds of real time.  Ticks that land on an empty window seal
        nothing (no empty-epoch flood while the stream is idle).  Ingestion
        keeps running on the caller's thread; the sealer takes the ingest
        lock only around the seal itself, so sealed-epoch queries are never
        blocked.
        """
        if self.epoch_wall_ms is None:
            raise ValueError("start() requires epoch_wall_ms rotation")
        if self._wall_thread is not None:
            raise RuntimeError("wall-clock rotation is already running")
        self._wall_stop.clear()
        self._sealer_failed = None
        self._sealer_tick = time.monotonic()
        self._wall_thread = threading.Thread(
            target=self._wall_loop, name="flymon-wall-seal", daemon=True
        )
        self._wall_thread.start()
        self._watchdog_thread = threading.Thread(
            target=self._watchdog_loop, name="flymon-wall-watchdog", daemon=True
        )
        self._watchdog_thread.start()
        return self

    def stop(self, seal_tail: bool = False) -> Optional[SealedEpoch]:
        """Stop the wall-clock sealer (no-op when it is not running).

        With ``seal_tail`` the ragged live window (if any) is sealed after
        the thread exits, and that epoch is returned.
        """
        if self._wall_thread is not None or self._watchdog_thread is not None:
            self._wall_stop.set()
            # Watchdog first, so no replacement sealer spawns mid-join.
            if self._watchdog_thread is not None:
                self._watchdog_thread.join()
                self._watchdog_thread = None
            if self._wall_thread is not None:
                self._wall_thread.join()
                self._wall_thread = None
        if seal_tail:
            with self._lock:
                if self._epoch_fill or self._pending_fields:
                    return self.rotate()
        return None

    def _wall_loop(self) -> None:
        try:
            self._wall_run()
        except Exception as exc:  # surfaced via health(); watchdog decides
            self._sealer_failed = f"{type(exc).__name__}: {exc}"

    def _wall_run(self) -> None:
        interval = self.epoch_wall_ms / 1e3
        deadline = time.monotonic() + interval
        while not self._wall_stop.wait(max(0.0, deadline - time.monotonic())):
            deadline += interval
            self._sealer_tick = time.monotonic()
            with self._lock:
                if self._epoch_fill == 0 and not self._pending_fields:
                    continue
                self._flush_pending()
                self._seal()

    def _watchdog_loop(self) -> None:
        interval = self.epoch_wall_ms / 1e3
        stall_counted = False
        while not self._wall_stop.wait(max(interval, 0.01)):
            thread = self._wall_thread
            if thread is None:
                break
            if not thread.is_alive():
                if self._wall_stop.is_set():
                    break
                reason = self._sealer_failed or "sealer thread died"
                if self.sealer_restarts >= self.sealer_restart_budget:
                    self._sealer_failed = (
                        f"sealer dead after {self.sealer_restarts} "
                        f"restart(s): {reason}"
                    )
                    break
                self._restart_sealer(reason)
                stall_counted = False
                continue
            # Missed-deadline detection: the sealer is alive but has not
            # ticked for 3+ intervals (blocked on the lock, a slow disk,
            # a stuck watcher).  Counted once per stall episode.
            lag = time.monotonic() - self._sealer_tick
            if lag > 3.0 * interval:
                if not stall_counted:
                    self.sealer_missed_deadlines += 1
                    stall_counted = True
            else:
                stall_counted = False

    def _restart_sealer(self, reason: str) -> None:
        self.sealer_restarts += 1
        self._sealer_failed = None
        self._sealer_tick = time.monotonic()
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_SEALER_RESTARTED, restart=self.sealer_restarts, reason=reason
            )
            _TELEMETRY.registry.counter("flymon_sealer_restarts_total").inc()
        thread = threading.Thread(
            target=self._wall_loop, name="flymon-wall-seal", daemon=True
        )
        self._wall_thread = thread
        thread.start()

    # -- sealed state -------------------------------------------------------

    @property
    def epochs(self) -> List[SealedEpoch]:
        """The retained sealed epochs, oldest first."""
        return list(self._ring)

    @property
    def latest(self) -> Optional[SealedEpoch]:
        return self._ring[-1] if self._ring else None

    def epoch(self, index: int) -> SealedEpoch:
        for sealed in self._ring:
            if sealed.index == index:
                return sealed
        retained = [s.index for s in self._ring]
        raise StaleEpochError(
            f"epoch {index} is not retained (ring holds {retained})"
        )

    def series(self, name: str) -> List[Tuple[int, object]]:
        """Per-epoch time series of a registered query over the ring."""
        if name not in self._series:
            raise KeyError(f"series {name!r} is not registered")
        return [
            (sealed.index, sealed.outputs[name])
            for sealed in self._ring
            if name in sealed.outputs
        ]

    def query(self, query, epoch=None):
        """Resolve a typed query against the live window or a sealed epoch.

        ``epoch`` is ``None`` (live), an epoch index, or a
        :class:`SealedEpoch`.
        """
        from repro.service.queries import resolve

        sealed = None
        if isinstance(epoch, SealedEpoch):
            sealed = epoch
        elif epoch is not None:
            sealed = self.epoch(int(epoch))
        return resolve(query, sealed)

    def stats(self) -> Dict[str, object]:
        return {
            "epoch": self._epoch_index,
            "epoch_fill": self._epoch_fill + len(self._pending_fields),
            "packets_total": self._packets_total + len(self._pending_fields),
            "sealed_epochs": len(self._ring),
            "retained": [s.index for s in self._ring],
            "watchers": len(self.watchers),
            "series": sorted(self._series),
            "workers": self.workers,
            "epoch_packets": self.epoch_packets,
            "epoch_duration_us": self.epoch_duration_us,
            "epoch_wall_ms": self.epoch_wall_ms,
            "ingest_ms_total": self.ingest_ms_total,
            "last_seal_ms": self._ring[-1].seal_ms if self._ring else None,
            "watchers_fired": sum(
                1 for e in self.watcher_log if getattr(e, "fired", False)
            ),
            "dropped_packets": self.dropped_packets,
            "dropped_windows": self.dropped_windows,
            "wal_state": self._wal.state if self._wal is not None else None,
            "wal_lost_seals": (
                self._wal.lost_seals if self._wal is not None else 0
            ),
            "sealer_restarts": self.sealer_restarts,
            "sealer_missed_deadlines": self.sealer_missed_deadlines,
        }

    def health(self) -> Dict[str, object]:
        """Machine-readable service health: ``ok`` / ``degraded`` /
        ``failing`` plus the reasons, for dashboards and heartbeats.

        ``degraded`` means the service is still measuring and answering
        queries but something needs attention (WAL detached and retrying,
        windows shed under overload, a sealer restart, a degraded shard
        pool); ``failing`` means durability or liveness is actually broken
        (WAL permanently failed or sealed epochs lost, sealer dead past
        its restart budget).
        """
        reasons: List[str] = []
        rank = 0  # 0 ok, 1 degraded, 2 failing

        def note(level: int, reason: str) -> None:
            nonlocal rank
            reasons.append(reason)
            rank = max(rank, level)

        wal = self._wal
        wal_status = wal.status() if wal is not None else None
        if wal_status is not None:
            if wal_status["state"] == "degraded":
                note(1, f"wal degraded: {wal_status['last_error']}")
            elif wal_status["state"] == "failed":
                note(2, f"wal failed: {wal_status['last_error']}")
            if wal_status["lost_seals"]:
                # Losses while storage is still unreachable are an active
                # failure; after a successful reattach they are a scar --
                # the log is whole again from the retain window onward.
                note(
                    2 if wal_status["state"] != "ok" else 1,
                    f"wal: {wal_status['lost_seals']} sealed epoch(s) "
                    "never reached stable storage",
                )
        if self._sealer_failed:
            note(2, f"sealer: {self._sealer_failed}")
        elif self.sealer_restarts:
            note(1, f"sealer restarted {self.sealer_restarts} time(s)")
        if self.sealer_missed_deadlines:
            note(
                1,
                f"sealer missed {self.sealer_missed_deadlines} deadline(s)",
            )
        if self.dropped_windows:
            note(
                1,
                f"shed {self.dropped_windows} window(s) "
                f"({self.dropped_packets} packets) under overload",
            )
        report = self.last_shard_report
        degraded_reason = getattr(report, "degraded", None)
        if degraded_reason:
            note(1, f"shard pool degraded: {degraded_reason}")
        return {
            "status": ("ok", "degraded", "failing")[rank],
            "reasons": reasons,
            "wal_state": wal_status["state"] if wal_status else None,
            "sealer_alive": (
                self._wall_thread.is_alive()
                if self._wall_thread is not None
                else None
            ),
            "sealer_restarts": self.sealer_restarts,
            "dropped_packets": self.dropped_packets,
            "dropped_windows": self.dropped_windows,
            "epoch": self._epoch_index,
            "sealed_epochs": len(self._ring),
        }

    # -- internals ----------------------------------------------------------

    def _effective_batch(self) -> int:
        if self.batch_size is not None and self.batch_size > 0:
            return self.batch_size
        return _default_batch_size()

    def _flush_pending(self) -> List[SealedEpoch]:
        if not self._pending_fields:
            return []
        from repro.traffic.packet import Packet

        chunk = Trace.from_packets([Packet(**f) for f in self._pending_fields])
        self._pending_fields = []
        return self._ingest_chunk(chunk)

    def _ingest_chunk(self, trace: Trace) -> List[SealedEpoch]:
        sealed: List[SealedEpoch] = []
        remaining = trace
        stall_s = self.max_stall_ms / 1e3 if self.max_stall_ms else None
        with _RECORDER.span("service.ingest", cat="service", packets=len(trace)):
            while len(remaining):
                # The lock is re-acquired per window so a wall-clock sealer
                # can interleave at window boundaries mid-chunk.  With a
                # stall bound, a window that cannot get the lock in time is
                # shed whole rather than queueing behind a stuck seal.
                if stall_s is not None:
                    if not self._lock.acquire(timeout=stall_s):
                        remaining = self._shed_window(remaining)
                        continue
                else:
                    self._lock.acquire()
                try:
                    take = self._room_for(remaining)
                    if take == 0:
                        sealed.append(self._seal())
                        continue
                    window, remaining = _split_trace(remaining, take)
                    self._process(window)
                    self._account(window)
                    if self._boundary_reached():
                        sealed.append(self._seal())
                finally:
                    self._lock.release()
        return sealed

    def _shed_window(self, remaining: Trace) -> Trace:
        """Drop one window's worth of the chunk with exact accounting.

        Shed packets never touch the registers or the packet counters:
        ``dropped_packets`` / ``dropped_windows`` are the only trace they
        leave, so sealed state stays exact for the traffic that *was*
        ingested and the loss is fully machine-readable.
        """
        take = min(len(remaining), self._effective_batch())
        window, rest = _split_trace(remaining, take)
        del window
        self.dropped_packets += take
        self.dropped_windows += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_INGEST_SHED,
                packets=take,
                dropped_packets=self.dropped_packets,
                dropped_windows=self.dropped_windows,
            )
            _TELEMETRY.registry.counter(
                "flymon_ingest_shed_packets_total"
            ).inc(take)
            _TELEMETRY.registry.counter(
                "flymon_ingest_shed_windows_total"
            ).inc()
        return rest

    def _room_for(self, trace: Trace) -> int:
        """How many of the chunk's leading packets fit in this epoch."""
        if self.epoch_packets is not None:
            return min(len(trace), self.epoch_packets - self._epoch_fill)
        if self.epoch_duration_us is not None:
            ts = trace.columns["timestamp"]
            if self._epoch_start_ts is None:
                self._epoch_start_ts = int(ts[0])
            end = self._epoch_start_ts + self.epoch_duration_us
            if self._epoch_fill == 0 and int(ts[0]) >= end:
                # The window is empty and the next packet lies beyond it: a
                # trace time gap.  Seal exactly one empty epoch to mark the
                # discontinuity, then fast-forward the epoch grid to the
                # step holding the next packet -- without this, a multi-hour
                # gap would spin one empty seal (watchers, series, ring
                # churn) per epoch_duration_us step.
                last = self._ring[-1] if self._ring else None
                if last is None or last.packets != 0:
                    return 0  # seal the single gap-marking empty epoch
                steps = (int(ts[0]) - self._epoch_start_ts) // self.epoch_duration_us
                self._epoch_start_ts += steps * self.epoch_duration_us
                end = self._epoch_start_ts + self.epoch_duration_us
            return int(np.searchsorted(ts, end, side="left"))
        if self.epoch_wall_ms is not None:
            # Bounded windows keep the per-window lock hold short so the
            # wall-clock sealer gets in between them.
            return min(len(trace), self._effective_batch())
        return len(trace)  # manual rotation: everything is one open window

    def _boundary_reached(self) -> bool:
        if self.epoch_packets is not None:
            return self._epoch_fill >= self.epoch_packets
        return False  # duration mode seals via _room_for() == 0

    def _account(self, window: Trace) -> None:
        n = len(window)
        self._epoch_fill += n
        self._packets_total += n
        if n:
            ts = window.columns["timestamp"]
            lo, hi = int(ts[0]), int(ts[-1])
            if self._epoch_min_ts is None or lo < self._epoch_min_ts:
                self._epoch_min_ts = lo
            if self._epoch_max_ts is None or hi > self._epoch_max_ts:
                self._epoch_max_ts = hi

    def _process(self, window: Trace) -> None:
        if len(window) == 0:
            return
        t0 = time.perf_counter()
        try:
            if self.workers > 1:
                self.last_shard_report = self.controller.process_trace_sharded(
                    window,
                    self.workers,
                    batch_size=self._effective_batch(),
                    backend=self.backend,
                    runtime=self.shard_runtime,
                )
                return
            if self.batch_size == 0:
                # Scalar reference path: differential tests only.
                self.controller.process_trace(window)
                return
            self.controller.process_trace(window, batch_size=self._effective_batch())
        finally:
            self.ingest_ms_total += (time.perf_counter() - t0) * 1e3

    def _hosting_rows(self, handles: Sequence[TaskHandle]):
        registers: Dict[Tuple[int, int], object] = {}
        for handle in handles:
            for row in handle.rows:
                registers[(row.group.group_id, row.cmu.index)] = row.cmu.register
        return registers

    def _seal(self, reset_handles: Optional[Sequence[TaskHandle]] = None) -> SealedEpoch:
        with self._lock:
            return self._seal_locked(reset_handles=reset_handles)

    def _seal_locked(
        self, reset_handles: Optional[Sequence[TaskHandle]] = None
    ) -> SealedEpoch:
        t0 = time.perf_counter()
        with _RECORDER.span(
            "service.rotate", cat="service", epoch=self._epoch_index,
            packets=self._epoch_fill,
        ):
            with _RECORDER.span("rotate.snapshot", cat="service"):
                handles = self.controller.tasks
                registers = self._hosting_rows(handles)
                cells = {
                    key: register.snapshot_cells()
                    for key, register in registers.items()
                }
            with _RECORDER.span("rotate.digests", cat="service"):
                digest_sets: Dict[Tuple[int, int, int], set] = {}
                for handle in handles:
                    for row in handle.rows:
                        drained = row.cmu.drain_digests(handle.task_id)
                        if drained:
                            digest_sets[
                                (row.group.group_id, row.cmu.index, handle.task_id)
                            ] = drained
            sealed = SealedEpoch(
                index=self._epoch_index,
                packets=self._epoch_fill,
                start_ts=self._epoch_min_ts,
                end_ts=self._epoch_max_ts,
                cells=cells,
                registers=registers,
                task_ids=[handle.task_id for handle in handles],
                digest_sets=digest_sets,
            )
            self._ring.append(sealed)

            # Capture the WAL's per-task payload before watchers can
            # reconfigure (a resize removes the old deployment, after which
            # its rows can no longer be interpreted).
            wal_tasks = (
                self._wal.capture_epoch_tasks(sealed, handles)
                if self._wal is not None
                else None
            )

            # Reset first so the next epoch starts fresh even if a watcher's
            # reaction (or a series estimator) raises; sealed queries keep
            # working because they read the snapshot, not the registers.
            with _RECORDER.span("rotate.reset", cat="service"):
                for handle in (
                    reset_handles if reset_handles is not None else handles
                ):
                    handle.reset()

            with _RECORDER.span("rotate.series", cat="service"):
                self._evaluate_series(sealed)
            with _RECORDER.span("rotate.watchers", cat="service"):
                self._evaluate_watchers(sealed)

            # Persistent shard runtime: the resident worker replicas already
            # self-reset after every run, so sealing an epoch in place is a
            # broadcast no-op that only bumps the workers' seal counters (and
            # scrubs any straggler state).  Ephemeral runs have no pool and
            # skip this entirely.
            pool = getattr(self.controller, "_shard_pool", None)
            if pool is not None and not pool.closed:
                with _RECORDER.span("rotate.pool", cat="service"):
                    pool.seal_epoch(self._epoch_index)

            sealed.seal_ms = (time.perf_counter() - t0) * 1e3

            # Window bookkeeping advances *before* the WAL append: a
            # storage failure surfaced here (WalWriteError under
            # ``--wal-policy fail``) must leave the sealed epoch intact
            # and the next window clean, not re-seal the same index.
            self._epoch_index += 1
            self._epoch_fill = 0
            self._epoch_min_ts = None
            self._epoch_max_ts = None
            if self.epoch_duration_us is not None:
                if self._epoch_start_ts is not None:
                    self._epoch_start_ts += self.epoch_duration_us

            if self._wal is not None:
                with _RECORDER.span("rotate.wal", cat="service"):
                    self._wal.append_seal(sealed, wal_tasks)
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_EPOCH_SEAL,
                epoch=sealed.index,
                packets=sealed.packets,
                tasks=len(sealed.task_ids),
                seal_ms=sealed.seal_ms,
                watchers_fired=sum(
                    1 for e in sealed.watcher_events if getattr(e, "fired", False)
                ),
            )
            _TELEMETRY.registry.counter("flymon_epochs_total").inc()
            # The metric is in milliseconds, so the histogram needs the ms
            # bucket ladder -- the default buckets are seconds-scaled and
            # would park every observation in the top bucket.
            _TELEMETRY.registry.histogram(
                "flymon_epoch_seal_ms", buckets=DEFAULT_MS_BUCKETS
            ).observe(sealed.seal_ms)
        return sealed

    def _evaluate_series(self, sealed: SealedEpoch) -> None:
        from repro.service.queries import resolve

        for name, query in self._series.items():
            sealed.outputs[name] = resolve(query, sealed)

    def _evaluate_watchers(self, sealed: SealedEpoch) -> None:
        for watcher in self.watchers:
            event = watcher.evaluate(self, sealed)
            sealed.watcher_events.append(event)
            self.watcher_log.append(event)
            if _TELEMETRY.enabled and event.fired:
                _TELEMETRY.events.emit(
                    EV_WATCHER_FIRED,
                    epoch=sealed.index,
                    watcher=event.watcher,
                    value=event.value,
                    threshold=event.threshold,
                    direction=event.direction,
                )
                _TELEMETRY.registry.counter("flymon_watchers_fired_total").inc()
                if event.action is not None:
                    _TELEMETRY.events.emit(
                        EV_WATCHER_ACTION,
                        epoch=sealed.index,
                        watcher=event.watcher,
                        action=event.action,
                        outcome=event.outcome,
                        error=event.error,
                    )


def _split_trace(trace: Trace, take: int) -> Tuple[Trace, Trace]:
    """Split a trace at ``take`` packets into (head, tail) column views."""
    if take >= len(trace):
        return trace, Trace.empty()
    head = Trace({f: trace.columns[f][:take] for f in PACKET_FIELDS})
    tail = Trace({f: trace.columns[f][take:] for f in PACKET_FIELDS})
    return head, tail
