"""FlyMon reproduction: on-the-fly task reconfiguration for network measurement.

This package reproduces the system described in *FlyMon: Enabling On-the-Fly
Task Reconfiguration for Network Measurement* (SIGCOMM 2022) in pure Python:

* :mod:`repro.dataplane` -- an RMT (Tofino-like) switch substrate: PHV, hash
  units with dynamic masking, match-action tables, SALU registers, MAU stages,
  resource accounting, and a runtime-rule API with a latency model.
* :mod:`repro.traffic` -- packets, flows, and synthetic trace generators.
* :mod:`repro.sketches` -- standalone baseline sketching algorithms.
* :mod:`repro.core` -- the FlyMon contribution: Composable Measurement Units
  (CMUs), CMU Groups, dynamic memory management, cross-stacking, the task
  compiler and the control plane.
* :mod:`repro.analysis` -- accuracy metrics and control-plane estimators.
* :mod:`repro.experiments` -- harnesses regenerating every paper table/figure.
"""

from repro.core.controller import FlyMonController
from repro.core.task import Attribute, MeasurementTask, TaskFilter

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "FlyMonController",
    "MeasurementTask",
    "TaskFilter",
    "__version__",
]
