"""Deterministic fault injection for the control plane and shard workers.

FlyMon's headline claim is *safe* on-the-fly reconfiguration: tasks can be
added, resized, and re-filtered on a live switch without corrupting
co-resident tasks.  Proving that under failure requires failures on demand.
This module provides a seedable registry of **named fault sites** that the
robustness tests (and ``repro verify``) arm to exercise every rollback path:

====================  =====================================================
site                  where it fires
====================  =====================================================
``rule_apply``        :meth:`repro.dataplane.runtime.StagedInstall.apply`,
                      before each southbound rule (raises mid-batch)
``alloc_exhausted``   :meth:`repro.core.memory.BuddyAllocator.allocate`
                      (surfaces as ``OutOfMemoryError``)
``key_denied``        :meth:`repro.core.compression.CompressedKeyManager.
                      acquire` (surfaces as ``KeyExhaustedError``)
``shard_crash``       shard-worker entry in
                      :mod:`repro.dataplane.sharding` (raises; with the
                      ``kill`` argument the worker process hard-exits)
``shard_timeout``     shard-worker entry (sleeps the configured seconds so
                      the dispatcher's per-shard timeout trips)
``wal_append``        :meth:`repro.service.wal.ServiceWal` record append,
                      before the write (``kill`` SIGKILLs the process,
                      ``torn`` writes half the record then SIGKILLs)
``wal_fsync``         the WAL's per-append ``os.fsync`` (raises ``OSError``,
                      as a dying disk would)
``wal_roll``          WAL segment roll, before the new segment's compaction
                      base is written (``kill``/``torn`` as ``wal_append``)
``disk_full``         the WAL's record write (surfaces as ``OSError``
                      with ``ENOSPC``)
====================  =====================================================

Arms come from code (``FAULTS.arm(...)``) or from the ``FLYMON_FAULTS``
environment variable, a comma/semicolon-separated spec:

* ``site`` -- fire on the site's first hit;
* ``site@N`` -- fire on the Nth hit (1-based), then disarm (one-shot);
* ``site@N=ARG`` -- same, carrying an argument (e.g. ``shard_timeout@1=0.2``
  sleeps 0.2 s; ``shard_crash@1=kill`` hard-exits the worker process);
* ``site%P`` -- fire each hit with probability ``P`` (persistent, drawn
  from the injector's seeded RNG);
* ``seed=N`` / ``name=value`` -- free-form options (``seed`` seeds the RNG;
  the robustness test schedules read ``seed``/``rounds``).

Deterministic arms are **one-shot**: once fired they disarm in that
process, so a bounded-retry path (e.g. a shard re-dispatched after a crash)
succeeds on the next attempt.  Probabilistic arms persist.

Injection is off unless a site is armed; the per-hit cost is one dict
lookup on control-plane paths only (never in the per-packet datapath).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SITE_RULE_APPLY = "rule_apply"
SITE_ALLOC_EXHAUSTED = "alloc_exhausted"
SITE_KEY_DENIED = "key_denied"
SITE_SHARD_CRASH = "shard_crash"
SITE_SHARD_TIMEOUT = "shard_timeout"
SITE_WAL_APPEND = "wal_append"
SITE_WAL_FSYNC = "wal_fsync"
SITE_WAL_ROLL = "wal_roll"
SITE_DISK_FULL = "disk_full"
SITE_MEMBER_SEAL = "member_seal"

FAULT_SITES = (
    SITE_RULE_APPLY,
    SITE_ALLOC_EXHAUSTED,
    SITE_KEY_DENIED,
    SITE_SHARD_CRASH,
    SITE_SHARD_TIMEOUT,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_WAL_ROLL,
    SITE_DISK_FULL,
    SITE_MEMBER_SEAL,
)

#: Environment variable holding the default injection spec.
ENV_VAR = "FLYMON_FAULTS"


class FaultError(RuntimeError):
    """An injected failure (never raised unless a site was armed)."""

    def __init__(self, site: str, context: Optional[dict] = None) -> None:
        self.site = site
        self.context = dict(context or {})
        detail = f" ({self.context})" if self.context else ""
        super().__init__(f"injected fault at site {site!r}{detail}")


class FaultSpecError(ValueError):
    """A malformed ``FLYMON_FAULTS`` spec or an unknown site name."""


@dataclass
class FaultArm:
    """One armed fault: deterministic (``hit``) or probabilistic (``prob``)."""

    site: str
    hit: int = 1
    prob: Optional[float] = None
    arg: Optional[str] = None

    def describe(self) -> str:
        shape = f"%{self.prob}" if self.prob is not None else f"@{self.hit}"
        suffix = f"={self.arg}" if self.arg is not None else ""
        return f"{self.site}{shape}{suffix}"


def parse_spec(
    spec: str,
) -> Tuple[List[FaultArm], Dict[str, str]]:
    """Parse a ``FLYMON_FAULTS`` spec into arms and free-form options."""
    arms: List[FaultArm] = []
    options: Dict[str, str] = {}
    for raw in spec.replace(";", ",").split(","):
        entry = raw.strip()
        if not entry:
            continue
        arg: Optional[str] = None
        if "=" in entry:
            entry, arg = entry.split("=", 1)
            entry = entry.strip()
            arg = arg.strip()
        prob: Optional[float] = None
        hit = 1
        if "%" in entry:
            name, prob_text = entry.split("%", 1)
            try:
                prob = float(prob_text)
            except ValueError as exc:
                raise FaultSpecError(f"bad probability in {raw!r}") from exc
            if not 0.0 < prob <= 1.0:
                raise FaultSpecError(f"probability out of (0, 1] in {raw!r}")
        elif "@" in entry:
            name, hit_text = entry.split("@", 1)
            try:
                hit = int(hit_text)
            except ValueError as exc:
                raise FaultSpecError(f"bad hit index in {raw!r}") from exc
            if hit < 1:
                raise FaultSpecError(f"hit index must be >= 1 in {raw!r}")
        else:
            name = entry
        name = name.strip()
        if name in FAULT_SITES:
            arms.append(FaultArm(site=name, hit=hit, prob=prob, arg=arg))
        elif arg is not None and "%" not in entry and "@" not in entry:
            options[name] = arg  # e.g. seed=2026, rounds=25
        else:
            raise FaultSpecError(
                f"unknown fault site {name!r} (known: {', '.join(FAULT_SITES)})"
            )
    return arms, options


class FaultInjector:
    """Counts hits per site and fires armed faults deterministically."""

    def __init__(self, spec: Optional[str] = None, seed: int = 0) -> None:
        self._arms: Dict[str, List[FaultArm]] = {}
        self._hits: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._fired: List[dict] = []
        self.options: Dict[str, str] = {}
        self._seed = seed
        self._rng = random.Random(seed)
        if spec:
            self.configure(spec)

    # -- arming --------------------------------------------------------------

    def configure(self, spec: str) -> "FaultInjector":
        """Arm every entry of a ``FLYMON_FAULTS``-syntax spec."""
        arms, options = parse_spec(spec)
        self.options.update(options)
        if "seed" in options:
            try:
                self.reseed(int(options["seed"]))
            except ValueError as exc:
                raise FaultSpecError(f"bad seed {options['seed']!r}") from exc
        for arm in arms:
            self._arms.setdefault(arm.site, []).append(arm)
        return self

    def arm(
        self,
        site: str,
        hit: int = 1,
        prob: Optional[float] = None,
        arg: Optional[str] = None,
    ) -> FaultArm:
        """Arm one site programmatically (tests and ``repro verify``)."""
        self._check_site(site)
        armed = FaultArm(site=site, hit=hit, prob=prob, arg=arg)
        self._arms.setdefault(site, []).append(armed)
        return armed

    def disarm(self, site: Optional[str] = None) -> None:
        """Drop arms for one site (or all); hit counters keep counting."""
        if site is None:
            self._arms.clear()
        else:
            self._arms.pop(site, None)

    def reset(self) -> None:
        """Back to the pristine state: no arms, zero hits, reseeded RNG."""
        self._arms.clear()
        self._fired.clear()
        self.options.clear()
        self._hits = {site: 0 for site in FAULT_SITES}
        self._rng = random.Random(self._seed)

    def reseed(self, seed: int) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    # -- inspection ----------------------------------------------------------

    @property
    def armed(self) -> bool:
        return any(self._arms.values())

    def arms(self, site: Optional[str] = None) -> List[FaultArm]:
        if site is not None:
            return list(self._arms.get(site, ()))
        return [arm for arms in self._arms.values() for arm in arms]

    def hit_count(self, site: str) -> int:
        self._check_site(site)
        return self._hits[site]

    def fired(self) -> List[dict]:
        """Log of every injected fault: site, hit number, arm, context."""
        return list(self._fired)

    # -- firing --------------------------------------------------------------

    def trip(self, site: str, **context: object):
        """Count a hit; if an arm triggers, consume it and return its
        argument (``True`` when the arm carries none), else ``None``.

        Call sites that must surface a site-appropriate exception (allocator
        exhaustion, key denial) test ``trip()`` and raise their own type;
        everything else uses :meth:`fire`.
        """
        hits = self._hits
        if site not in hits:
            self._check_site(site)
        hits[site] += 1
        arms = self._arms.get(site)
        if not arms:
            return None
        n = hits[site]
        for arm in arms:
            if arm.prob is not None:
                if self._rng.random() >= arm.prob:
                    continue
            elif n != arm.hit:
                continue
            if arm.prob is None:
                arms.remove(arm)  # deterministic arms are one-shot
            self._record(arm, n, context)
            return arm.arg if arm.arg is not None else True
        return None

    def fire(self, site: str, **context: object) -> None:
        """:meth:`trip`, raising :class:`FaultError` when triggered."""
        if self.trip(site, **context) is not None:
            raise FaultError(site, context)

    def _record(self, arm: FaultArm, hit: int, context: dict) -> None:
        entry = {
            "site": arm.site,
            "hit": hit,
            "arm": arm.describe(),
            "context": {k: str(v) for k, v in context.items()},
        }
        self._fired.append(entry)
        from repro.telemetry import EV_FAULT_INJECTED, TELEMETRY

        if TELEMETRY.enabled:
            TELEMETRY.registry.counter(
                "flymon_faults_injected_total", site=arm.site
            ).inc()
            TELEMETRY.events.emit(EV_FAULT_INJECTED, **entry)

    def _check_site(self, site: str) -> None:
        if site not in FAULT_SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} (known: {', '.join(FAULT_SITES)})"
            )


#: The process-wide injector; instrumented modules consult this instance.
#: Armed from ``FLYMON_FAULTS`` at import so spawned shard workers (which
#: re-import) inherit the same schedule as forked ones.
FAULTS = FaultInjector(os.environ.get(ENV_VAR) or None)


def configure_from_env() -> FaultInjector:
    """Re-read ``FLYMON_FAULTS`` into the global injector (CLI entry)."""
    FAULTS.reset()
    spec = os.environ.get(ENV_VAR)
    if spec:
        FAULTS.configure(spec)
    return FAULTS
