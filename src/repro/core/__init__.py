"""FlyMon core: the paper's contribution.

* :mod:`repro.core.operations` -- the reduced stateful operation set,
* :mod:`repro.core.task` -- the task abstraction (filter/key/attribute/memory),
* :mod:`repro.core.compression` -- compressed keys and the shared compression stage,
* :mod:`repro.core.params` -- parameter selection and preparation-stage processors,
* :mod:`repro.core.address_translation` / :mod:`repro.core.memory` -- dynamic memory,
* :mod:`repro.core.cmu` / :mod:`repro.core.cmu_group` -- the CMU datapath,
* :mod:`repro.core.placement` -- cross-stacking onto the RMT pipeline,
* :mod:`repro.core.algorithms` -- built-in algorithms on CMUs,
* :mod:`repro.core.compiler` / :mod:`repro.core.controller` -- the control plane.
"""

from repro.core.cmu import Cmu, CmuTaskConfig, TaskConflictError
from repro.core.cmu_group import CmuGroup
from repro.core.controller import FlyMonController, PlacementError, TaskHandle
from repro.core.memory import MODE_ACCURATE, MODE_EFFICIENT, BuddyAllocator, MemRange
from repro.core.task import Attribute, AttributeSpec, MeasurementTask, TaskFilter

__all__ = [
    "Attribute",
    "AttributeSpec",
    "BuddyAllocator",
    "Cmu",
    "CmuGroup",
    "CmuTaskConfig",
    "FlyMonController",
    "MODE_ACCURATE",
    "MODE_EFFICIENT",
    "MeasurementTask",
    "MemRange",
    "PlacementError",
    "TaskConflictError",
    "TaskFilter",
    "TaskHandle",
]
