"""Undo-log transactions for control-plane reconfiguration.

Every public mutation of :class:`repro.core.controller.FlyMonController`
(``add_task``, ``remove_task``, ``update_task_filter``, ``resize_task``,
``add_split_task``) runs inside a :class:`ReconfigTransaction`.  Each step
that changes shared state records an inverse action; if the operation raises
at any point, :meth:`ReconfigTransaction.rollback` replays the inverses in
reverse order, leaving the controller, key pools, memory allocators, and
runtime rule table bit-identical to their pre-call state.

Two kinds of entries are recorded:

* **closures** -- e.g. :meth:`repro.dataplane.runtime.StagedInstall.revert`
  for an applied rule batch, or the re-install closure that
  :meth:`repro.dataplane.runtime.RuntimeApi.remove_deployment` records;
* **snapshots** -- cheap control-plane stores (key-manager refcounts, buddy
  allocator free lists, the controller's handle table) captured through
  their ``snapshot()``/``restore()`` pair via :meth:`snapshot`.

Operations record their control-store snapshots *first* so they run *last*
during rollback: data-plane unwinding (reverting rules, restoring hash
masks and register cells) happens before the control stores are reset.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.telemetry import (
    EV_TXN_ROLLBACK,
    RECORDER as _RECORDER,
    TELEMETRY as _TELEMETRY,
)

STATE_OPEN = "open"
STATE_COMMITTED = "committed"
STATE_ROLLED_BACK = "rolled_back"


class TxnRollbackError(RuntimeError):
    """An undo action itself failed during rollback.

    The transaction keeps unwinding the remaining entries before raising
    this, but state consistency can no longer be guaranteed.
    """


class ReconfigTransaction:
    """An undo log for one control-plane operation.

    Use as a context manager: the body's mutations record their inverses;
    an exception triggers :meth:`rollback` (and is re-raised), a clean exit
    triggers :meth:`commit` (which discards the log).

    Transactions nest by *sharing*: a compound operation (``resize_task``,
    ``add_split_task``) passes its transaction down to the primitive calls,
    which record into it instead of opening their own -- so one failure
    anywhere unwinds the whole compound operation.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = STATE_OPEN
        self._undo: List[Tuple[str, Callable[[], None]]] = []

    # -- recording -----------------------------------------------------------

    def record(self, description: str, action: Callable[[], None]) -> None:
        """Append an inverse action (run in reverse order on rollback)."""
        if self.state != STATE_OPEN:
            raise RuntimeError(f"transaction {self.name!r} is {self.state}")
        self._undo.append((description, action))

    def snapshot(self, description: str, store) -> None:
        """Capture ``store.snapshot()`` now; restore it on rollback."""
        state = store.snapshot()
        self.record(description, lambda: store.restore(state))

    @property
    def entries(self) -> Tuple[str, ...]:
        """Descriptions of the recorded inverses, in record order."""
        return tuple(description for description, _ in self._undo)

    # -- resolution ----------------------------------------------------------

    def commit(self) -> None:
        """Discard the undo log; the operation's effects are now permanent."""
        if self.state != STATE_OPEN:
            raise RuntimeError(f"transaction {self.name!r} is {self.state}")
        self.state = STATE_COMMITTED
        self._undo.clear()

    def rollback(self, cause: Optional[BaseException] = None) -> None:
        """Replay the recorded inverses in reverse order.

        Rolling back an already-resolved transaction is a no-op.  Failures
        of individual undo actions do not stop the unwinding; they are
        collected and surfaced as a :class:`TxnRollbackError` at the end.
        """
        if self.state != STATE_OPEN:
            return
        self.state = STATE_ROLLED_BACK
        entries = self._undo
        self._undo = []
        errors: List[Tuple[str, BaseException]] = []
        with _RECORDER.span(
            "txn.rollback", cat="control", txn=self.name, entries=len(entries)
        ):
            for description, action in reversed(entries):
                try:
                    action()
                except BaseException as exc:  # noqa: BLE001 - keep unwinding
                    errors.append((description, exc))
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter("flymon_rollbacks_total").inc()
            _TELEMETRY.events.emit(
                EV_TXN_ROLLBACK,
                name=self.name,
                entries=len(entries),
                undo_errors=len(errors),
                cause=type(cause).__name__ if cause is not None else None,
            )
        if errors:
            failed = ", ".join(description for description, _ in errors)
            raise TxnRollbackError(
                f"transaction {self.name!r}: {len(errors)} undo action(s) "
                f"failed ({failed}); state may be inconsistent"
            ) from (errors[0][1] if cause is None else cause)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "ReconfigTransaction":
        if self.state != STATE_OPEN:
            raise RuntimeError(f"transaction {self.name!r} is {self.state}")
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is None:
            if self.state == STATE_OPEN:
                self.commit()
        else:
            self.rollback(cause=exc)
        return False


def in_transaction(name: str, transaction: Optional[ReconfigTransaction]):
    """The transaction a primitive operation should record into.

    Returns ``(txn, owned)``: the caller's transaction when one was passed
    (``owned=False`` -- the outer operation resolves it), or a fresh one
    (``owned=True`` -- the primitive commits/rolls back itself).
    """
    if transaction is not None:
        return transaction, False
    return ReconfigTransaction(name), True
