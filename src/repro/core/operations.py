"""The reduced stateful operation set (§3.1.2, Appendix A).

FlyMon implements ten sketching algorithms with only three pre-loaded SALU
operations (leaving one of Tofino's four action slots as expansion room):

* ``Cond-ADD(p1, p2)`` -- add ``p1`` while the counter is below ``p2``
  (``p2 = max`` degenerates to CMS's unconditional ADD; finite ``p2`` gives
  SuMax's conservative update, saturating tower counters, and Counter
  Braids' overflow detection),
* ``MAX(p1)`` -- keep the per-bucket maximum,
* ``AND-OR(p1, p2)`` -- bit-wise AND when ``p2 == 0``, OR otherwise
  (Bloom Filter inserts, BeauCoup coupon collection).

Result-bus semantics: a Tofino SALU can export either the pre- or the
post-modification word per register action.  Appendix A's pseudocode returns
the post-update value; the combinatorial tasks of §4 require the pre-update
word for MAX (inter-arrival needs the *previous* arrival time) and AND-OR
(new-flow detection needs the *previous* bitmap), while Appendix D's Counter
Braids needs Cond-ADD's post-update value (0 signals saturation).  We
configure the exports accordingly and document the choice here.
"""

from __future__ import annotations

from repro.dataplane.register import Register, RegisterAction

OP_COND_ADD = "cond_add"
OP_MAX = "max"
OP_AND_OR = "and_or"
#: The expansion example of §6: filling the reserved fourth action slot with
#: XOR enables Odd Sketch (traffic-set similarity).
OP_XOR = "xor"

REDUCED_OPERATION_SET = (OP_COND_ADD, OP_MAX, OP_AND_OR)
EXTENDED_OPERATION_SET = REDUCED_OPERATION_SET + (OP_XOR,)


def _cond_add(stored: int, p1: int, p2: int):
    """Add ``p1`` if ``stored < p2``; export the post-update value, else 0."""
    if stored < p2:
        new = stored + p1
        return new, new
    return stored, 0


def _max(stored: int, p1: int, p2: int):
    """Keep the maximum of ``stored`` and ``p1``; export the pre-update value
    on update (the previous maximum), else 0."""
    if stored < p1:
        return p1, stored
    return stored, 0


def _and_or(stored: int, p1: int, p2: int):
    """AND with ``p1`` when ``p2 == 0``, OR otherwise; export the pre-update
    word (so membership of a just-inserted item is still observable)."""
    if p2 == 0:
        return stored & p1, stored
    return stored | p1, stored


def _xor(stored: int, p1: int, p2: int):
    """Bit-wise XOR with ``p1`` (Odd Sketch's parity flip); exports the
    pre-update word."""
    return stored ^ p1, stored


def load_reduced_operation_set(register: Register, with_xor: bool = True) -> None:
    """Pre-load the FlyMon operations into a register's SALU.

    ``with_xor`` also fills the fourth (reserved) action slot with XOR --
    the §6 expansion that enables Odd Sketch.  Pass ``False`` to model the
    paper's as-published three-operation configuration.
    """
    register.load_action(RegisterAction(OP_COND_ADD, _cond_add))
    register.load_action(RegisterAction(OP_MAX, _max))
    register.load_action(RegisterAction(OP_AND_OR, _and_or))
    if with_xor:
        register.load_action(RegisterAction(OP_XOR, _xor))
