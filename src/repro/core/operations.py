"""The reduced stateful operation set (§3.1.2, Appendix A).

FlyMon implements ten sketching algorithms with only three pre-loaded SALU
operations (leaving one of Tofino's four action slots as expansion room):

* ``Cond-ADD(p1, p2)`` -- add ``p1`` while the counter is below ``p2``
  (``p2 = max`` degenerates to CMS's unconditional ADD; finite ``p2`` gives
  SuMax's conservative update, saturating tower counters, and Counter
  Braids' overflow detection),
* ``MAX(p1)`` -- keep the per-bucket maximum,
* ``AND-OR(p1, p2)`` -- bit-wise AND when ``p2 == 0``, OR otherwise
  (Bloom Filter inserts, BeauCoup coupon collection).

Result-bus semantics: a Tofino SALU can export either the pre- or the
post-modification word per register action.  Appendix A's pseudocode returns
the post-update value; the combinatorial tasks of §4 require the pre-update
word for MAX (inter-arrival needs the *previous* arrival time) and AND-OR
(new-flow detection needs the *previous* bitmap), while Appendix D's Counter
Braids needs Cond-ADD's post-update value (0 signals saturation).  We
configure the exports accordingly and document the choice here.
"""

from __future__ import annotations

import numpy as np

from repro.dataplane.register import (
    Register,
    RegisterAction,
    chain_all,
    segmented_compose_masks,
    segmented_cummax,
    segmented_cumsum,
    segmented_cumxor,
)

OP_COND_ADD = "cond_add"
OP_MAX = "max"
OP_AND_OR = "and_or"
#: The expansion example of §6: filling the reserved fourth action slot with
#: XOR enables Odd Sketch (traffic-set similarity).
OP_XOR = "xor"

REDUCED_OPERATION_SET = (OP_COND_ADD, OP_MAX, OP_AND_OR)
EXTENDED_OPERATION_SET = REDUCED_OPERATION_SET + (OP_XOR,)


def _cond_add(stored: int, p1: int, p2: int):
    """Add ``p1`` if ``stored < p2``; export the post-update value, else 0."""
    if stored < p2:
        new = stored + p1
        return new, new
    return stored, 0


def _max(stored: int, p1: int, p2: int):
    """Keep the maximum of ``stored`` and ``p1``; export the pre-update value
    on update (the previous maximum), else 0."""
    if stored < p1:
        return p1, stored
    return stored, 0


def _and_or(stored: int, p1: int, p2: int):
    """AND with ``p1`` when ``p2 == 0``, OR otherwise; export the pre-update
    word (so membership of a just-inserted item is still observable)."""
    if p2 == 0:
        return stored & p1, stored
    return stored | p1, stored


def _xor(stored: int, p1: int, p2: int):
    """Bit-wise XOR with ``p1`` (Odd Sketch's parity flip); exports the
    pre-update word."""
    return stored ^ p1, stored


# -- vectorized kernels -------------------------------------------------------
#
# Element-wise duals of the scalar actions over int64 arrays, used by
# Register.execute_batch.  Each returns (new_values, results) pre-masking;
# the register masks to the bucket width on store/export, exactly like the
# scalar path.


def _cond_add_batch(stored: np.ndarray, p1: np.ndarray, p2: np.ndarray):
    updated = stored < p2
    new_values = np.where(updated, stored + p1, stored)
    return new_values, np.where(updated, new_values, 0)


def _max_batch(stored: np.ndarray, p1: np.ndarray, p2: np.ndarray):
    updated = stored < p1
    return np.where(updated, p1, stored), np.where(updated, stored, 0)


def _and_or_batch(stored: np.ndarray, p1: np.ndarray, p2: np.ndarray):
    return np.where(p2 == 0, stored & p1, stored | p1), stored


def _xor_batch(stored: np.ndarray, p1: np.ndarray, p2: np.ndarray):
    return stored ^ p1, stored


# -- chain kernels ------------------------------------------------------------
#
# Whole duplicate-bucket chains folded in closed form (see
# RegisterAction.chain_fn): rows arrive sorted by bucket in arrival order,
# ``stored`` holds each bucket's pre-chain value, ``seg_start`` marks chain
# starts.  Each returns (per-row post-state, per-row exports, validity).


def _cond_add_chain(stored, p1, p2, seg_start, value_mask):
    """Running sums, valid only while every step's condition held and no
    intermediate exceeded the bucket width (else saturation/wrap makes the
    fold non-linear and the chain is re-run exactly)."""
    post = stored + segmented_cumsum(p1, seg_start)
    prev = post - p1
    ok = chain_all((prev < p2) & (post <= value_mask), seg_start)
    return post, post, ok


def _max_chain(stored, p1, p2, seg_start, value_mask):
    """Running maxima; always exact.  The export is the pre-update word on
    update (the previous maximum), else 0 -- exactly the scalar action."""
    cm = segmented_cummax(p1, seg_start)
    prev = np.empty_like(cm)
    prev[1:] = cm[:-1]
    prev[seg_start] = stored[seg_start]
    prev = np.maximum(prev, stored)
    updated = prev < p1
    return np.maximum(prev, p1), np.where(updated, prev, 0), None


def _and_or_chain(stored, p1, p2, seg_start, value_mask):
    """AND/OR chains composed as (and-mask, or-mask) pairs; always exact."""
    A = np.where(p2 == 0, p1, value_mask)
    B = np.where(p2 == 0, 0, p1)
    A, B = segmented_compose_masks(A, B, seg_start)
    pre_a = np.empty_like(A)
    pre_b = np.empty_like(B)
    pre_a[1:] = A[:-1]
    pre_b[1:] = B[:-1]
    pre_a[seg_start] = value_mask
    pre_b[seg_start] = 0
    return (stored & A) | B, (stored & pre_a) | pre_b, None


def _xor_chain(stored, p1, p2, seg_start, value_mask):
    """Running parity; always exact (exports the pre-update word)."""
    inc = segmented_cumxor(p1, seg_start)
    new_values = stored ^ inc
    return new_values, new_values ^ p1, None


def load_reduced_operation_set(register: Register, with_xor: bool = True) -> None:
    """Pre-load the FlyMon operations into a register's SALU.

    ``with_xor`` also fills the fourth (reserved) action slot with XOR --
    the §6 expansion that enables Odd Sketch.  Pass ``False`` to model the
    paper's as-published three-operation configuration.
    """
    register.load_action(
        RegisterAction(OP_COND_ADD, _cond_add, _cond_add_batch, _cond_add_chain)
    )
    register.load_action(RegisterAction(OP_MAX, _max, _max_batch, _max_chain))
    register.load_action(
        RegisterAction(OP_AND_OR, _and_or, _and_or_batch, _and_or_chain)
    )
    if with_xor:
        register.load_action(RegisterAction(OP_XOR, _xor, _xor_batch, _xor_chain))
