"""Parameter selection (initialization stage) and preprocessing (preparation
stage) for CMUs (§3.1, §3.2, §4).

A CMU's operation takes two parameters.  The *initialization* stage selects
each parameter's source -- a constant, a standard metadata field, one of the
group's compressed keys, or an upstream CMU's result (for combinatorial
tasks).  The *preparation* stage can then transform the first parameter with
a TCAM-backed mapping: one-hot coupon encoding (BeauCoup), bit selection
(bit-packed Bloom Filter), leading-zero ranks (HyperLogLog), overflow
indicators (Counter Braids), or the inter-arrival computation of §4.

Each processor reports the TCAM entries its mapping would occupy so the
preparation stage's resource accounting (Fig. 8 / Fig. 11) is grounded in
the actual rules installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.analysis.estimators import rho32, rho32_batch
from repro.core.compression import KeySelector


def result_field(group_id: int, cmu_index: int) -> str:
    """PHV field name carrying a CMU's operation result downstream."""
    return f"_cmu_result/{group_id}/{cmu_index}"


def param_field(group_id: int, cmu_index: int) -> str:
    """PHV field name carrying a CMU's processed first parameter downstream
    (e.g. the one-hot probe bit a Bloom-Filter CMU used)."""
    return f"_cmu_p1/{group_id}/{cmu_index}"


# ---------------------------------------------------------------------------
# Initialization-stage parameter selectors
# ---------------------------------------------------------------------------


class ParamSelector:
    """Where a parameter's raw value comes from (before preprocessing).

    :meth:`value_batch` is the columnar dual of :meth:`value`: ``batch`` is a
    :class:`repro.traffic.batch.PacketBatch`, ``compressed`` holds one int64
    array per hash unit *already aligned to* ``rows`` (the batch positions of
    this task's packets), and the result is one int64 array per row.
    """

    def value(self, fields: Mapping[str, int], compressed: Sequence[int]) -> int:
        raise NotImplementedError

    def value_batch(self, batch, compressed, rows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def vliw_slots(self) -> int:
        """VLIW instructions the selection costs in the initialization stage."""
        return 1


@dataclass(frozen=True)
class ConstParam(ParamSelector):
    constant: int

    def value(self, fields, compressed) -> int:
        return self.constant

    def value_batch(self, batch, compressed, rows) -> np.ndarray:
        return np.full(len(rows), self.constant, dtype=np.int64)


@dataclass(frozen=True)
class FieldParam(ParamSelector):
    """A standard metadata/header field (packet size, queue length, ...)."""

    field: str

    def value(self, fields, compressed) -> int:
        return int(fields.get(self.field, 0))

    def value_batch(self, batch, compressed, rows) -> np.ndarray:
        return batch.get(self.field)[rows]


@dataclass(frozen=True)
class CompressedKeyParam(ParamSelector):
    """A compressed key (Distinct/Existence attributes set parameters to
    compressed keys, §3.2)."""

    selector: KeySelector

    def value(self, fields, compressed) -> int:
        return self.selector.compute(compressed)

    def value_batch(self, batch, compressed, rows) -> np.ndarray:
        return self.selector.compute_batch(compressed)


@dataclass(frozen=True)
class ResultParam(ParamSelector):
    """An upstream CMU's exported result (combinatorial tasks, SuMax)."""

    group_id: int
    cmu_index: int

    def value(self, fields, compressed) -> int:
        return int(fields.get(result_field(self.group_id, self.cmu_index), 0))

    def value_batch(self, batch, compressed, rows) -> np.ndarray:
        return batch.get(result_field(self.group_id, self.cmu_index))[rows]


@dataclass(frozen=True)
class MinResultsParam(ParamSelector):
    """Minimum of several upstream results (SuMax's running minimum).

    A Cond-ADD that did not fire exports 0 (Appendix A); a zero therefore
    means "that row's counter already exceeds the running minimum", so zeros
    are skipped rather than letting them collapse the minimum -- otherwise
    one non-updating row would freeze every downstream row.
    """

    refs: Tuple[Tuple[int, int], ...]

    def value(self, fields, compressed) -> int:
        values = [
            int(fields.get(result_field(g, c), 0)) for g, c in self.refs
        ]
        nonzero = [v for v in values if v > 0]
        return min(nonzero) if nonzero else 0

    def value_batch(self, batch, compressed, rows) -> np.ndarray:
        stacked = np.stack(
            [batch.get(result_field(g, c))[rows] for g, c in self.refs]
        )
        sentinel = np.iinfo(np.int64).max
        masked = np.where(stacked > 0, stacked, sentinel)
        lowest = masked.min(axis=0)
        return np.where(lowest == sentinel, 0, lowest)

    def vliw_slots(self) -> int:
        return len(self.refs)


# ---------------------------------------------------------------------------
# Preparation-stage parameter processors
# ---------------------------------------------------------------------------


class ParamProcessor:
    """A preparation-stage transform of the first parameter.

    :meth:`apply_batch` is the columnar dual of :meth:`apply` over the rows
    of one task within a batch, element-wise identical to the scalar form.
    """

    def apply(self, value: int, fields: Mapping[str, int]) -> int:
        raise NotImplementedError

    def apply_batch(self, values: np.ndarray, batch, rows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def tcam_entries(self) -> int:
        """TCAM entries the mapping occupies in the preparation stage."""
        return 0

    def runtime_entries(self) -> int:
        """TCAM entries that must be installed *at deployment time*.

        Mappings that do not depend on task parameters (bit selection, rho
        ranks, overflow indicators) are compile-time const entries in the P4
        program -- they occupy TCAM but cost no runtime rules.  Only
        task-parameterized mappings (BeauCoup's threshold-tuned coupons)
        install entries at deployment, which is why the paper reports
        BeauCoup as the slowest deployment (§5.1).
        """
        return 0


@dataclass(frozen=True)
class IdentityProcessor(ParamProcessor):
    def apply(self, value, fields) -> int:
        return value

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        return values


@dataclass(frozen=True)
class OneHotCouponProcessor(ParamProcessor):
    """BeauCoup's coupon draw: map a uniform hash value to at most one
    one-hot coupon bit (0 when no coupon is drawn).

    ``prob`` is the per-coupon draw probability; the TCAM mapping needs one
    entry per coupon plus the no-draw default.
    """

    num_coupons: int
    prob: float

    def __post_init__(self) -> None:
        if not 1 <= self.num_coupons <= 32:
            raise ValueError("num_coupons must be in [1, 32]")
        if not 0.0 < self.prob <= 1.0 / self.num_coupons:
            raise ValueError("per-coupon probability infeasible")

    def apply(self, value, fields) -> int:
        width = int(self.prob * 2.0**32)
        if width == 0:
            return 0
        idx = (value & 0xFFFFFFFF) // width
        return (1 << idx) if idx < self.num_coupons else 0

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        width = int(self.prob * 2.0**32)
        if width == 0:
            return np.zeros(len(values), dtype=np.int64)
        idx = (values & 0xFFFFFFFF) // width
        drawn = idx < self.num_coupons
        return np.where(drawn, np.left_shift(1, np.where(drawn, idx, 0)), 0)

    def tcam_entries(self) -> int:
        return self.num_coupons + 1

    def runtime_entries(self) -> int:
        # The coupon windows depend on the query threshold: installed live.
        return self.num_coupons + 1


@dataclass(frozen=True)
class BitSelectProcessor(ParamProcessor):
    """Bit-packed Bloom Filter (§4): select one of the bucket's bits."""

    bucket_bits: int

    def apply(self, value, fields) -> int:
        return 1 << (value % self.bucket_bits)

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        return np.left_shift(1, values % self.bucket_bits)

    def tcam_entries(self) -> int:
        return self.bucket_bits


@dataclass(frozen=True)
class RhoProcessor(ParamProcessor):
    """HyperLogLog's rank: position of the leftmost 1-bit of the hash value
    (after skipping the bits used for bucket addressing)."""

    skip_bits: int = 0

    def apply(self, value, fields) -> int:
        return rho32(value, skip_bits=self.skip_bits)

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        return rho32_batch(values, skip_bits=self.skip_bits)

    def tcam_entries(self) -> int:
        # One prefix entry per possible leading-zero count.
        return 32 - self.skip_bits + 1


@dataclass(frozen=True)
class ComplementProcessor(ParamProcessor):
    """Bit-complement within ``width`` bits.

    FlyMon's HLL "changes to track the leftmost 1" (§4): storing the MAX of
    the complemented hash value is equivalent to tracking the minimum hash,
    whose leading-zero count gives the HLL rank -- with zero TCAM entries
    (an ALU complement), which is why the paper prefers it over TCAM-based
    rho encoding.
    """

    width: int = 16

    def apply(self, value, fields) -> int:
        return (~value) & ((1 << self.width) - 1)

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        return (~values) & ((1 << self.width) - 1)


@dataclass(frozen=True)
class OverflowIndicatorProcessor(ParamProcessor):
    """Counter Braids' carry (Appendix D): the upstream Cond-ADD exports 0
    exactly when its layer-1 counter saturated; emit the high-layer
    increment then, otherwise 0."""

    increment: int = 1

    def apply(self, value, fields) -> int:
        return self.increment if value == 0 else 0

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        return np.where(values == 0, self.increment, 0).astype(np.int64)

    def tcam_entries(self) -> int:
        return 2


@dataclass(frozen=True)
class InterarrivalProcessor(ParamProcessor):
    """Inter-arrival computation (§4): given the upstream MAX's exported
    previous arrival time, produce ``now - previous``.

    New flows (previous == 0, or flagged new by an upstream Bloom-Filter CMU
    whose pre-update word missed the membership bit) yield interval 0.
    """

    time_field: str = "timestamp"
    bloom_group: int = -1
    bloom_cmu: int = -1
    bloom_bit_width: int = 16

    def apply(self, value, fields) -> int:
        if value == 0:
            return 0
        if self.bloom_group >= 0:
            old_word = int(
                fields.get(result_field(self.bloom_group, self.bloom_cmu), 0)
            )
            bit = int(fields.get(param_field(self.bloom_group, self.bloom_cmu), 0))
            if bit and not (old_word & bit):
                return 0  # first packet of this flow
        now = int(fields.get(self.time_field, 0))
        return max(0, now - value)

    def apply_batch(self, values, batch, rows) -> np.ndarray:
        now = batch.get(self.time_field)[rows]
        out = np.maximum(0, now - values)
        if self.bloom_group >= 0:
            old_word = batch.get(result_field(self.bloom_group, self.bloom_cmu))[rows]
            bit = batch.get(param_field(self.bloom_group, self.bloom_cmu))[rows]
            out = np.where((bit != 0) & ((old_word & bit) == 0), 0, out)
        return np.where(values == 0, 0, out)

    def tcam_entries(self) -> int:
        return 2
