"""The shared compression stage and compressed-key management (§3.1.1, §3.2).

One CMU Group's CMUs share a compression stage of ``k`` dynamic hash units.
Each unit is runtime-configured (hash-mask rules) to compress some partial
key of the candidate key set into a 32-bit value; a CMU's key selector then
uses one unit's output, the XOR of two (which composes keys: ``C(SrcIP) ^
C(DstIP)`` acts as an IP-pair key), and/or a bit slice of the result (the
SketchLib trick simulating independent hashes per CMU).  With ``k`` units a
group can therefore offer ``k(k+1)/2`` distinct keys.

:class:`CompressedKeyManager` is the control-plane side: it reference-counts
mask configurations, reuses already-configured units (the greedy strategy of
§3.4), composes requested keys from existing units by XOR when possible, and
reports the hash-mask rules a new configuration requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dataplane.hashing import DynamicHashUnit, HashMask
from repro.faults import FAULTS, SITE_KEY_DENIED
from repro.telemetry import TELEMETRY as _TELEMETRY

HASH_KEY_BITS = 32


@dataclass(frozen=True)
class KeySelector:
    """How a CMU derives its key/parameter from the compressed keys.

    ``units`` is one or two hash-unit slots (two means XOR composition);
    ``offset``/``width`` select a bit slice of the combined value.
    """

    units: Tuple[int, ...]
    offset: int = 0
    width: int = HASH_KEY_BITS

    def __post_init__(self) -> None:
        if not 1 <= len(self.units) <= 2:
            raise ValueError("a key selector uses one or two hash units")
        if not 0 < self.width <= HASH_KEY_BITS:
            raise ValueError("slice width must be in (0, 32]")
        if not 0 <= self.offset <= HASH_KEY_BITS - self.width:
            raise ValueError("slice exceeds the 32-bit compressed key")

    def compute(self, compressed: Sequence[int]) -> int:
        value = 0
        for unit in self.units:
            value ^= compressed[unit]
        return (value >> self.offset) & ((1 << self.width) - 1)

    def compute_batch(self, compressed):
        """Columnar :meth:`compute`: ``compressed`` holds one int64 array per
        hash unit (aligned element-wise); returns the selected-key array."""
        value = compressed[self.units[0]]
        for unit in self.units[1:]:
            value = value ^ compressed[unit]
        return (value >> self.offset) & ((1 << self.width) - 1)

    def with_slice(self, offset: int, width: int) -> "KeySelector":
        return KeySelector(self.units, offset, width)


class KeyExhaustedError(RuntimeError):
    """No hash unit (or XOR composition) can provide the requested key."""


@dataclass
class KeyGrant:
    """Result of requesting a compressed key: the selector plus any
    hash-mask configurations that must be installed first."""

    selector: KeySelector
    new_masks: List[Tuple[int, HashMask]]

    @property
    def reused(self) -> bool:
        """Whether the grant was served purely from already-configured units
        (no hash-mask rules needed -- the fast path of §3.4)."""
        return not self.new_masks


class CompressedKeyManager:
    """Allocates compressed keys on a group's compression-stage hash units."""

    def __init__(self, units: Sequence[DynamicHashUnit]) -> None:
        self.units = list(units)
        self._refcounts: Dict[int, int] = {i: 0 for i in range(len(self.units))}
        #: Masks as committed by the control plane (units themselves only
        #: change when the install rules actually run).
        self._committed: Dict[int, Optional[HashMask]] = {
            i: None for i in range(len(self.units))
        }

    # -- inspection ---------------------------------------------------------

    def committed_masks(self) -> Dict[int, Optional[HashMask]]:
        return dict(self._committed)

    def refcounts(self) -> Dict[int, int]:
        """Per-unit reference counts (integrity audits / tests)."""
        return dict(self._refcounts)

    def snapshot(self) -> Dict[str, Dict]:
        """A restorable copy of refcounts and committed masks."""
        return {
            "refcounts": dict(self._refcounts),
            "committed": dict(self._committed),
        }

    def restore(self, state: Dict[str, Dict]) -> None:
        """Return to a :meth:`snapshot` (transaction rollback)."""
        self._refcounts = dict(state["refcounts"])
        self._committed = dict(state["committed"])

    def has_mask(self, mask_spec: Mapping[str, int]) -> bool:
        target = HashMask.of(mask_spec)
        return any(m == target for m in self._committed.values() if m is not None)

    def mask_overlap(self, mask_spec: Mapping[str, int]) -> int:
        """How many of the requested fields are already configured somewhere
        (used by the controller's greedy group choice)."""
        want = dict(mask_spec)
        score = 0
        for mask in self._committed.values():
            if mask is None:
                continue
            for name, bits in mask.field_bits:
                if want.get(name) == bits:
                    score += 1
        return score

    # -- allocation -----------------------------------------------------------

    def acquire(self, mask_spec: Mapping[str, int]) -> KeyGrant:
        """Grant a selector computing the compressed key for ``mask_spec``.

        Preference order (each step avoids hash-mask rules where possible):
        exact reuse -> XOR of two configured units -> configure a free unit
        for the remainder and XOR with a configured one -> configure a free
        unit with the whole key.  Raises :class:`KeyExhaustedError` when
        impossible.
        """
        target = HashMask.of(mask_spec)
        if target.is_empty:
            raise ValueError("cannot acquire an empty key")
        if FAULTS.armed and FAULTS.trip(SITE_KEY_DENIED, key=target.describe()):
            raise KeyExhaustedError(
                f"injected key-pool denial for {target.describe()}"
            )

        exact = self._find_committed(target)
        if exact is not None:
            self._refcounts[exact] += 1
            return self._granted(KeyGrant(KeySelector((exact,)), []))

        pair = self._find_xor_pair(target)
        if pair is not None:
            a, b = pair
            self._refcounts[a] += 1
            self._refcounts[b] += 1
            return self._granted(KeyGrant(KeySelector((a, b)), []))

        # Prefer configuring a free unit with only the *remainder* of the key
        # and composing by XOR (§3.4's example: an existing C(SrcIP) plus a
        # new C(SrcPort) yields SrcIP-SrcPort) -- the new unit stays reusable
        # as a plain key for future tasks.
        partial = self._find_partial_with_free(target)
        if partial is not None:
            existing, free, remainder = partial
            self._committed[free] = remainder
            self._refcounts[existing] += 1
            self._refcounts[free] += 1
            return self._granted(
                KeyGrant(KeySelector((existing, free)), [(free, remainder)])
            )

        free = self._find_free()
        if free is not None:
            self._committed[free] = target
            self._refcounts[free] += 1
            return self._granted(KeyGrant(KeySelector((free,)), [(free, target)]))

        raise KeyExhaustedError(
            f"no hash unit available for key {target.describe()} "
            f"(committed: {[m.describe() if m else '-' for m in self._committed.values()]})"
        )

    def acquire_pinned(
        self,
        units: Sequence[int],
        unit_masks: Mapping[int, Mapping[str, int]],
    ) -> KeyGrant:
        """Grant the *exact* selector ``units`` with the given per-unit masks.

        Pinned placement: a fabric member must reproduce the canonical
        layout's selector bit-for-bit (hash seeds depend on the unit index,
        so a different unit would hash differently).  Each pinned unit must
        either already be committed to the identical mask (reuse) or be
        completely free (configure).  Anything else is a conflict and raises
        :class:`KeyExhaustedError`.
        """
        targets: Dict[int, HashMask] = {}
        for unit in units:
            if unit not in self._committed:
                raise ValueError(f"hash unit {unit} does not exist")
            spec = unit_masks.get(unit)
            if spec is None:
                raise ValueError(f"no mask provided for pinned unit {unit}")
            targets[unit] = spec if isinstance(spec, HashMask) else HashMask.of(spec)
        if FAULTS.armed and FAULTS.trip(
            SITE_KEY_DENIED,
            key=",".join(m.describe() for m in targets.values()),
        ):
            raise KeyExhaustedError("injected key-pool denial for pinned grant")
        new_masks: List[Tuple[int, HashMask]] = []
        for unit, target in targets.items():
            committed = self._committed[unit]
            if committed == target:
                continue
            if committed is None and self._refcounts[unit] == 0:
                new_masks.append((unit, target))
            else:
                raise KeyExhaustedError(
                    f"pinned unit {unit} holds {committed.describe() if committed else '-'}, "
                    f"need {target.describe()}"
                )
        for unit, mask in new_masks:
            self._committed[unit] = mask
        for unit in units:
            self._refcounts[unit] += 1
        return self._granted(KeyGrant(KeySelector(tuple(units)), new_masks))

    @staticmethod
    def _granted(grant: KeyGrant) -> KeyGrant:
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter(
                "flymon_key_grants_total", reused=str(grant.reused).lower()
            ).inc()
        return grant

    def release(self, selector: KeySelector) -> None:
        """Drop references; fully-released units become reconfigurable."""
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter("flymon_key_releases_total").inc()
        for unit in selector.units:
            if self._refcounts[unit] > 0:
                self._refcounts[unit] -= 1
            if self._refcounts[unit] == 0:
                self._committed[unit] = None

    # -- internals ---------------------------------------------------------------

    def _find_committed(self, target: HashMask) -> Optional[int]:
        for i, mask in self._committed.items():
            if mask == target:
                return i
        return None

    def _find_free(self) -> Optional[int]:
        for i, mask in self._committed.items():
            if mask is None and self._refcounts[i] == 0:
                return i
        return None

    def _find_xor_pair(self, target: HashMask) -> Optional[Tuple[int, int]]:
        want = target.as_dict()
        configured = [
            (i, m.as_dict()) for i, m in self._committed.items() if m is not None
        ]
        for ai in range(len(configured)):
            for bi in range(ai + 1, len(configured)):
                a, am = configured[ai]
                b, bm = configured[bi]
                if set(am) & set(bm):
                    continue  # overlapping fields: XOR does not compose
                union = dict(am)
                union.update(bm)
                if union == want:
                    return a, b
        return None

    def _find_partial_with_free(
        self, target: HashMask
    ) -> Optional[Tuple[int, int, HashMask]]:
        want = target.as_dict()
        free = self._find_free()
        if free is None:
            return None
        for i, mask in self._committed.items():
            if mask is None:
                continue
            have = mask.as_dict()
            if all(want.get(name) == bits for name, bits in have.items()):
                remainder = {k: v for k, v in want.items() if k not in have}
                if remainder:
                    return i, free, HashMask.of(remainder)
        return None


def row_slices(depth: int, address_bits: int) -> List[Tuple[int, int]]:
    """Bit slices giving each of ``depth`` rows a distinct sub-part of the
    compressed key (§3.2: e.g. bits 0-15 / 8-23 / 16-31 for three CMUs).

    Returns ``(offset, width)`` pairs with ``width >= address_bits``.
    """
    if not 0 < address_bits <= HASH_KEY_BITS:
        raise ValueError("address_bits must be in (0, 32]")
    slices = []
    span = HASH_KEY_BITS - address_bits
    for row in range(depth):
        offset = 0 if depth == 1 else (span * row) // max(1, depth - 1)
        slices.append((offset, address_bits))
    return slices
