"""CMU Groups (§3.2): three CMUs sharing a compression stage.

A group owns ``compression_units`` dynamic hash units (the paper's setting
dedicates 3 of the 6 per-stage hash distribution units to compression; the
other 3 are consumed by SALU addressing in the operation stage) and three
CMUs.  Its four pipeline stages (Compression / Initialization / Preparation
/ Operation) have the per-stage resource demands of the Figure 8 table,
exposed for the cross-stacking mapper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cmu import Cmu
from repro.core.compression import CompressedKeyManager
from repro.dataplane.hashing import DynamicHashUnit
from repro.dataplane.phv import STANDARD_HEADER_FIELDS, FieldSpec
from repro.dataplane.resources import ResourceVector, sram_blocks_for
from repro.telemetry import TELEMETRY as _TELEMETRY

#: Stage labels in pipeline order.
STAGE_COMPRESSION = "compression"
STAGE_INITIALIZATION = "initialization"
STAGE_PREPARATION = "preparation"
STAGE_OPERATION = "operation"
GROUP_STAGES = (
    STAGE_COMPRESSION,
    STAGE_INITIALIZATION,
    STAGE_PREPARATION,
    STAGE_OPERATION,
)


class CmuGroup:
    """A group of CMUs with a shared compression stage."""

    def __init__(
        self,
        group_id: int,
        num_cmus: int = 3,
        compression_units: int = 3,
        register_size: int = 1 << 16,
        bucket_bits: int = 16,
        candidate_fields: Sequence[FieldSpec] = STANDARD_HEADER_FIELDS,
        seed_base: int = 0xC0DE,
    ) -> None:
        if num_cmus <= 0 or compression_units <= 0:
            raise ValueError("num_cmus and compression_units must be positive")
        self.group_id = group_id
        self.candidate_fields = tuple(candidate_fields)
        #: Kept for replica cloning (sharded execution rebuilds per-worker
        #: groups with identical hash seeding from these parameters).
        self.seed_base = seed_base
        self.hash_units = [
            DynamicHashUnit(i, self.candidate_fields, seed=seed_base + (group_id << 10) + i)
            for i in range(compression_units)
        ]
        self.keys = CompressedKeyManager(self.hash_units)
        self.cmus = [
            Cmu(group_id, i, register_size, bucket_bits) for i in range(num_cmus)
        ]
        #: Cached telemetry handle (bound on first use while enabled).
        self._packet_counter = None

    # -- data plane ---------------------------------------------------------

    def compress(self, fields) -> List[int]:
        """The compression stage: one 32-bit key per hash unit."""
        return [unit.compute(fields) for unit in self.hash_units]

    def process(self, fields: Dict[str, int]) -> None:
        """Run one packet through all four stages of the group."""
        if _TELEMETRY.enabled:
            if self._packet_counter is None:
                self._packet_counter = _TELEMETRY.registry.counter(
                    "flymon_group_packets_total", group=str(self.group_id)
                )
            self._packet_counter.inc()
        compressed = self.compress(fields)
        for cmu in self.cmus:
            cmu.process(fields, compressed)

    def compress_batch(self, batch) -> List:
        """Columnar :meth:`compress`: one int64 key array per hash unit."""
        return [unit.compute_batch(batch) for unit in self.hash_units]

    def process_batch(self, batch) -> None:
        """Run a whole :class:`~repro.traffic.batch.PacketBatch` through all
        four stages -- bit-identical to :meth:`process` per packet in order.

        The compressed keys depend only on header fields (never on CMU
        exports), so they are computed once up front; CMUs then run in
        pipeline order over the whole batch, each reading upstream exports
        from the batch's result columns.
        """
        if _TELEMETRY.enabled:
            if self._packet_counter is None:
                self._packet_counter = _TELEMETRY.registry.counter(
                    "flymon_group_packets_total", group=str(self.group_id)
                )
            self._packet_counter.inc(len(batch))
        compressed = self.compress_batch(batch)
        for cmu in self.cmus:
            cmu.process_batch(batch, compressed)

    # -- capacity queries ------------------------------------------------------

    @property
    def num_cmus(self) -> int:
        return len(self.cmus)

    @property
    def register_size(self) -> int:
        return self.cmus[0].register_size

    @property
    def bucket_bits(self) -> int:
        return self.cmus[0].bucket_bits

    def max_selectable_keys(self) -> int:
        """``k(k+1)/2`` distinct keys from ``k`` shared hash units (§3.1)."""
        k = len(self.hash_units)
        return k * (k + 1) // 2

    def control_digest(self) -> tuple:
        """A hashable summary of the group's hash-unit masks, key-manager
        accounting, and per-CMU state (see :meth:`repro.core.cmu.Cmu.
        control_digest`).  Equal digests mean bit-identical group state."""
        masks = tuple(
            unit.mask.describe() if unit.mask is not None else None
            for unit in self.hash_units
        )
        committed = tuple(
            (i, mask.describe() if mask is not None else None)
            for i, mask in sorted(self.keys.committed_masks().items())
        )
        refcounts = tuple(sorted(self.keys.refcounts().items()))
        return (
            masks,
            committed,
            refcounts,
            tuple(cmu.control_digest() for cmu in self.cmus),
        )

    # -- resource model (Figure 8) -----------------------------------------------

    def stage_demands(self) -> Dict[str, ResourceVector]:
        """Per-stage resource demand of this group.

        Calibrated to the Figure 8 table: C uses half the hash units, O uses
        the other half (SALU addressing) plus 3 SALUs; I and P split VLIW
        and TCAM as published.
        """
        k = len(self.hash_units)
        n = self.num_cmus
        sram = n * sram_blocks_for(self.register_size, self.bucket_bits)
        return {
            STAGE_COMPRESSION: ResourceVector(hash_units=k, vliw=2, table_ids=1),
            STAGE_INITIALIZATION: ResourceVector(vliw=8, tcam_blocks=3, table_ids=n),
            STAGE_PREPARATION: ResourceVector(vliw=2, tcam_blocks=12, table_ids=n),
            STAGE_OPERATION: ResourceVector(
                hash_units=n, vliw=8, salus=n, sram_blocks=sram, table_ids=n
            ),
        }

    def phv_demand_bits(self) -> int:
        """PHV bits the group statically reserves: one 32-bit compressed key
        per hash unit plus one result/param export word per CMU."""
        return 32 * len(self.hash_units) + 2 * 16 * self.num_cmus

    def __repr__(self) -> str:
        return f"CmuGroup(id={self.group_id}, cmus={self.num_cmus})"
