"""Epoch-driven measurement loops.

Sketch state is meaningful per measurement epoch: the control plane reads
and resets registers at epoch boundaries (§2.1's "single pass ... within a
measurement epoch").  :class:`EpochRunner` packages that loop: split a trace
into epochs, process each, hand the deployed tasks to a per-epoch collector
callback, and reset state for the next window.

The runner is a thin wrapper over the streaming engine
(:class:`~repro.service.engine.MeasurementService` in manual-rotation mode),
so epoch processing rides the same batched/sharded fast paths as the
long-running service and every rotation produces a queryable
:class:`~repro.service.engine.SealedEpoch` alongside the collector outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.controller import FlyMonController, TaskHandle
from repro.traffic.trace import Trace


@dataclass
class EpochResult:
    """One epoch's collected outputs."""

    epoch: int
    packets: int
    outputs: Dict[str, object] = field(default_factory=dict)
    #: The epoch's sealed register snapshot (queryable after the run).
    sealed: Optional[object] = None


class EpochRunner:
    """Runs a controller across measurement epochs with automatic resets.

    ``collectors`` maps an output name to a callback receiving
    ``(epoch_index, epoch_trace)`` and returning any value (typically a
    query against a task handle); results are gathered per epoch and state
    is reset afterwards.  By default *every* controller deployment resets
    at each boundary; :meth:`track` narrows the reset to specific handles
    (tasks meant to accumulate across epochs stay untouched).
    """

    def __init__(self, controller: FlyMonController) -> None:
        self.controller = controller
        self._handles: List[TaskHandle] = []
        self._collectors: Dict[str, Callable[[int, Trace], object]] = {}

    def track(self, handle: TaskHandle) -> TaskHandle:
        """Narrow the end-of-epoch reset to this handle (and other tracked
        ones).  Without any tracked handle, all deployments reset."""
        self._handles.append(handle)
        return handle

    def collect(self, name: str, fn: Callable[[int, Trace], object]) -> None:
        if name in self._collectors:
            raise ValueError(f"collector {name!r} already registered")
        self._collectors[name] = fn

    def run(
        self,
        trace: Trace,
        num_epochs: int,
        on_epoch_start: Optional[Callable[[int], None]] = None,
        workers: int = 1,
        batch_size: Optional[int] = None,
    ) -> List[EpochResult]:
        """Process ``trace`` in ``num_epochs`` windows; returns per-epoch
        collector outputs.  ``on_epoch_start`` hooks control-plane actions
        (task inserts/removals/resizes) at epoch boundaries.

        ``workers``/``batch_size`` pick the datapath: ``workers > 1`` shards
        each window over parallel replicas, ``batch_size`` sets the
        vectorized engine's chunk size (``0`` forces the scalar reference
        loop); both are bit-identical to scalar replay.
        """
        from repro.service.engine import MeasurementService

        service = MeasurementService(
            self.controller,
            retain=max(1, num_epochs),
            workers=workers,
            batch_size=batch_size,
        )
        results: List[EpochResult] = []
        for epoch, window in enumerate(trace.split_epochs(num_epochs)):
            if on_epoch_start is not None:
                on_epoch_start(epoch)
            service.ingest(window)
            # Collectors read live state (old contract), before the seal
            # snapshots it and resets for the next window.
            outputs = {
                name: fn(epoch, window) for name, fn in self._collectors.items()
            }
            sealed = service.rotate(reset_handles=self._handles or None)
            results.append(
                EpochResult(
                    epoch=epoch,
                    packets=len(window),
                    outputs=outputs,
                    sealed=sealed,
                )
            )
        return results
