"""Epoch-driven measurement loops.

Sketch state is meaningful per measurement epoch: the control plane reads
and resets registers at epoch boundaries (§2.1's "single pass ... within a
measurement epoch").  :class:`EpochRunner` packages that loop: split a trace
into epochs, process each, hand the deployed tasks to a per-epoch collector
callback, and reset state for the next window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.controller import FlyMonController, TaskHandle
from repro.traffic.trace import Trace


@dataclass
class EpochResult:
    """One epoch's collected outputs."""

    epoch: int
    packets: int
    outputs: Dict[str, object] = field(default_factory=dict)


class EpochRunner:
    """Runs a controller across measurement epochs with automatic resets.

    ``collectors`` maps an output name to a callback receiving
    ``(epoch_index, epoch_trace)`` and returning any value (typically a
    query against a task handle); results are gathered per epoch and every
    registered handle is reset afterwards.
    """

    def __init__(self, controller: FlyMonController) -> None:
        self.controller = controller
        self._handles: List[TaskHandle] = []
        self._collectors: Dict[str, Callable[[int, Trace], object]] = {}

    def track(self, handle: TaskHandle) -> TaskHandle:
        """Register a handle for end-of-epoch reset."""
        self._handles.append(handle)
        return handle

    def collect(self, name: str, fn: Callable[[int, Trace], object]) -> None:
        if name in self._collectors:
            raise ValueError(f"collector {name!r} already registered")
        self._collectors[name] = fn

    def run(
        self,
        trace: Trace,
        num_epochs: int,
        on_epoch_start: Optional[Callable[[int], None]] = None,
    ) -> List[EpochResult]:
        """Process ``trace`` in ``num_epochs`` windows; returns per-epoch
        collector outputs.  ``on_epoch_start`` hooks control-plane actions
        (task inserts/removals/resizes) at epoch boundaries."""
        results: List[EpochResult] = []
        for epoch, window in enumerate(trace.split_epochs(num_epochs)):
            if on_epoch_start is not None:
                on_epoch_start(epoch)
            self.controller.process_trace(window)
            outputs = {
                name: fn(epoch, window) for name, fn in self._collectors.items()
            }
            results.append(
                EpochResult(epoch=epoch, packets=len(window), outputs=outputs)
            )
            for handle in self._handles:
                handle.reset()
        return results
