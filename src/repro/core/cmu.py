"""The Composable Measurement Unit (§3.1, §3.2).

One CMU is a SALU + register pair plus its share of the group's four
pipeline stages.  At runtime it hosts multiple concurrent measurement tasks
(disjoint filters, disjoint memory partitions); per packet it:

1. matches the packet against its task-selection table (initialization),
2. computes the task's key from the group's compressed keys and selects the
   two parameters,
3. translates the address into the task's memory partition and preprocesses
   the first parameter (preparation),
4. executes the task's stateful operation and exports the result to the PHV
   for downstream CMUs (operation).

The task-selection table is a real ternary table (filters are TCAM
matches); preparation-stage rule footprints are tracked per task so resource
accounting reflects what a hardware deployment would install.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.address_translation import make_translation
from repro.core.compression import KeySelector
from repro.core.operations import load_reduced_operation_set
from repro.core.memory import MemRange
from repro.core.params import (
    IdentityProcessor,
    ParamProcessor,
    ParamSelector,
    param_field,
    result_field,
)
from repro.core.task import TaskFilter
from repro.dataplane.hashing import HashFunction
from repro.dataplane.register import Register
from repro.dataplane.tables import TableEntry, TernaryMatchTable
from repro.telemetry import TELEMETRY as _TELEMETRY

#: Filter fields every task-selection table matches on.
FILTER_FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")


@dataclass(frozen=True)
class CmuTaskConfig:
    """One task's compiled configuration on one CMU.

    ``alarm_threshold`` arms data-plane reporting: when the operation's
    exported result reaches it, the packet's key (extracted per
    ``digest_key``) is pushed to the CMU's digest queue -- Tofino's digest
    mechanism, which is how threshold-based heavy-hitter detection reports
    flows without the control plane enumerating candidates (§4).
    """

    task_id: int
    filter: TaskFilter
    key_selector: KeySelector
    p1: ParamSelector
    p2: ParamSelector
    p1_processor: ParamProcessor
    mem: MemRange
    op: str
    strategy: str = "tcam"
    sample_prob: float = 1.0
    priority: int = 0
    alarm_threshold: Optional[int] = None
    digest_key: Optional[object] = None  # FlowKeyDef, kept loose for layering
    #: Address translation resolved at install time -- on hardware the
    #: translation *is* a set of rules installed once per task, so building
    #: it per packet was pure model overhead.  ``Cmu.install_task`` fills it.
    cached_translation: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def translation(self, register_size: int):
        cached = self.cached_translation
        if cached is not None and cached.register_size == register_size:
            return cached
        return make_translation(self.strategy, register_size, self.mem)


class TaskConflictError(RuntimeError):
    """A task's filter intersects an existing task on the same CMU."""


@dataclass(frozen=True)
class CmuTaskPlan:
    """A task's configuration flattened for batched execution.

    Built once per install/update/remove (never per packet or per batch):
    everything :meth:`Cmu.process_batch` needs -- the resolved address
    translation, the sampling threshold in hash units, and whether the alarm
    path is armed -- so the batch loop is pure numpy kernels plus dictionary-
    free attribute reads.
    """

    config: CmuTaskConfig
    translation: object
    sample_threshold: Optional[float]  # None = always run; else hash < threshold
    alarm_armed: bool


class Cmu:
    """One Composable Measurement Unit inside a CMU Group."""

    def __init__(
        self,
        group_id: int,
        index: int,
        register_size: int = 1 << 16,
        bucket_bits: int = 16,
    ) -> None:
        self.group_id = group_id
        self.index = index
        self.register = Register(register_size, bucket_bits)
        load_reduced_operation_set(self.register)
        self.task_table = TernaryMatchTable(
            f"cmug{group_id}/cmu{index}/select_task", FILTER_FIELDS
        )
        self._configs: Dict[int, CmuTaskConfig] = {}
        self._plans: Dict[int, CmuTaskPlan] = {}
        self._entries: Dict[int, TableEntry] = {}
        #: Preparation-stage TCAM entries per task (address translation +
        #: parameter preprocessing) -- the Fig. 11a accounting.
        self._prep_tcam: Dict[int, int] = {}
        self._sample_hash = HashFunction(0x5A5A ^ (group_id << 8) ^ index)
        #: Data-plane digests: {task_id: set of reported flow keys}.
        self._digests: Dict[int, set] = {}
        #: Optional :class:`repro.dataplane.sharding.ShardJournal` -- when a
        #: sharded worker sets it, :meth:`process_batch` records each tracked
        #: task's post-sampling (rows, index, p1, p2) stream so the merge can
        #: replay state-dependent operations exactly.
        self.journal = None
        #: Cached telemetry handle (bound on first use while enabled).
        self._access_counter = None

    # -- control plane ------------------------------------------------------

    @property
    def register_size(self) -> int:
        return self.register.size

    @property
    def bucket_bits(self) -> int:
        return self.register.bit_width

    @property
    def task_ids(self) -> List[int]:
        return sorted(self._configs)

    def config(self, task_id: int) -> CmuTaskConfig:
        return self._configs[task_id]

    def task_plans(self) -> Dict[int, CmuTaskPlan]:
        """The compiled per-task plans, in install order (read-only copy)."""
        return dict(self._plans)

    def has_conflict(self, task_filter: TaskFilter) -> bool:
        """Whether the filter intersects any task already on this CMU
        (§3.3: a SALU executes at most one task per packet)."""
        return any(
            cfg.filter.intersects(task_filter) for cfg in self._configs.values()
        )

    def install_task(self, config: CmuTaskConfig) -> None:
        """Install a compiled task (the apply side of its runtime rules)."""
        if config.task_id in self._configs:
            raise ValueError(f"task {config.task_id} already on CMU {self.index}")
        if self.has_conflict(config.filter) and config.sample_prob >= 1.0:
            raise TaskConflictError(
                f"task {config.task_id}'s filter intersects an existing task "
                f"on cmug{self.group_id}/cmu{self.index}"
            )
        if config.mem.end > self.register_size:
            raise ValueError("task memory range exceeds the register")
        entry = TableEntry.build(
            config.filter.to_ternary(),
            action="set_task",
            args={"task_id": config.task_id},
            priority=config.priority,
        )
        translation = make_translation(config.strategy, self.register_size, config.mem)
        config = replace(config, cached_translation=translation)
        self.task_table.insert(entry)
        self._entries[config.task_id] = entry
        self._configs[config.task_id] = config
        self._plans[config.task_id] = self._compile_plan(config)
        prep = config.p1_processor.tcam_entries()
        if config.strategy == "tcam":
            prep += translation.tcam_entries()
        self._prep_tcam[config.task_id] = prep

    def update_task_filter(self, task_id: int, new_filter: TaskFilter) -> None:
        """Swap a running task's filter (one table-rule update, §3.4).

        Register state is untouched: the task keeps measuring, only its
        traffic selection changes.  Conflicts with co-located tasks are
        re-checked against the new filter.
        """
        config = self._configs.get(task_id)
        if config is None:
            raise KeyError(f"task {task_id} is not on this CMU")
        others = [
            cfg for tid, cfg in self._configs.items() if tid != task_id
        ]
        if config.sample_prob >= 1.0 and any(
            cfg.filter.intersects(new_filter) for cfg in others
        ):
            raise TaskConflictError(
                f"new filter for task {task_id} intersects a co-located task"
            )
        old_entry = self._entries[task_id]
        new_entry = TableEntry.build(
            new_filter.to_ternary(),
            action="set_task",
            args={"task_id": task_id},
            priority=config.priority,
        )
        self.task_table.insert(new_entry)
        self.task_table.remove(old_entry)
        self._entries[task_id] = new_entry
        new_config = replace(config, filter=new_filter)
        self._configs[task_id] = new_config
        self._plans[task_id] = self._compile_plan(new_config)

    def remove_task(self, task_id: int) -> None:
        entry = self._entries.pop(task_id, None)
        if entry is not None:
            self.task_table.remove(entry)
        self._configs.pop(task_id, None)
        self._plans.pop(task_id, None)
        self._prep_tcam.pop(task_id, None)

    def _compile_plan(self, config: CmuTaskConfig) -> CmuTaskPlan:
        return CmuTaskPlan(
            config=config,
            translation=config.translation(self.register_size),
            sample_threshold=(
                config.sample_prob * 2.0**32 if config.sample_prob < 1.0 else None
            ),
            alarm_armed=(
                config.alarm_threshold is not None and config.digest_key is not None
            ),
        )

    def prep_tcam_entries(self) -> int:
        return sum(self._prep_tcam.values())

    def control_digest(self) -> tuple:
        """A hashable summary of this CMU's task and register state.

        Two CMUs with equal digests host the same tasks (filters, memory
        ranges, operations, key selectors) over bit-identical register
        contents -- the equality integrity audits and checkpoint round-trip
        tests assert.
        """
        import zlib

        tasks = tuple(
            (
                tid,
                cfg.filter.describe(),
                cfg.mem.base,
                cfg.mem.length,
                cfg.op,
                tuple(cfg.key_selector.units),
                cfg.key_selector.offset,
                cfg.key_selector.width,
            )
            for tid, cfg in sorted(self._configs.items())
        )
        register_crc = zlib.crc32(
            self.register.read_range(0, self.register_size).tobytes()
        )
        return (tasks, register_crc)

    def drain_digests(self, task_id: int) -> set:
        """Pop the task's accumulated alarm digests (control-plane read)."""
        return self._digests.pop(task_id, set())

    def peek_digests(self, task_id: int) -> set:
        return set(self._digests.get(task_id, set()))

    def read_task_memory(self, task_id: int) -> np.ndarray:
        cfg = self._configs[task_id]
        return self.register.read_range(cfg.mem.base, cfg.mem.length)

    def reset_task_memory(self, task_id: int) -> None:
        cfg = self._configs[task_id]
        self.register.reset_range(cfg.mem.base, cfg.mem.length)

    def index_for(self, task_id: int, compressed: Sequence[int]) -> int:
        """The physical bucket a packet with these compressed keys touches."""
        cfg = self._configs[task_id]
        address = cfg.key_selector.compute(compressed)
        return cfg.translation(self.register_size).translate(address)

    # -- data plane -----------------------------------------------------------

    def process(self, fields: Dict[str, int], compressed: Sequence[int]) -> None:
        """Run one packet through initialization/preparation/operation."""
        action, args = self.task_table.lookup(fields)
        if action != "set_task":
            return
        config = self._configs.get(args["task_id"])
        if config is None:
            return
        if config.sample_prob < 1.0 and not self._sampled(config, fields):
            return
        # Initialization: key + raw parameters.
        address = config.key_selector.compute(compressed)
        p1 = config.p1.value(fields, compressed)
        p2 = config.p2.value(fields, compressed)
        # Preparation: address translation + parameter preprocessing.
        index = config.translation(self.register_size).translate(address)
        p1 = config.p1_processor.apply(p1, fields)
        # Operation: stateful update; export result and processed p1.
        result = self.register.execute(config.op, index, p1, p2)
        if _TELEMETRY.enabled:
            if self._access_counter is None:
                self._access_counter = _TELEMETRY.registry.counter(
                    "flymon_register_accesses_total",
                    group=str(self.group_id),
                    cmu=str(self.index),
                )
            self._access_counter.inc()
        fields[result_field(self.group_id, self.index)] = result
        fields[param_field(self.group_id, self.index)] = p1
        # Data-plane alarm digest (threshold-crossing report).
        if (
            config.alarm_threshold is not None
            and config.digest_key is not None
            and result >= config.alarm_threshold
        ):
            self._digests.setdefault(config.task_id, set()).add(
                config.digest_key.extract(fields)
            )

    def process_batch(self, batch, compressed: Sequence[np.ndarray]) -> None:
        """Run a whole :class:`~repro.traffic.batch.PacketBatch` through the
        CMU -- bit-identical to calling :meth:`process` per packet in order.

        Equivalence rests on three structural facts: the task table selects
        exactly one task per packet (so per-task row sets partition the
        batch), co-located tasks occupy disjoint memory partitions (the
        allocator's invariant, so per-task execution order cannot interact),
        and within one task :meth:`Register.execute_batch` serializes
        duplicate buckets by occurrence rank.  ``compressed`` holds one int64
        array per hash unit, full batch length.
        """
        if not self._plans:
            return
        n = len(batch)
        if n == 0:
            return
        task_ids = self.task_table.classify_batch(batch, "task_id", n)
        total_rows = 0
        for task_id, plan in self._plans.items():
            rows = np.nonzero(task_ids == task_id)[0]
            if rows.size == 0:
                continue
            config = plan.config
            if plan.sample_threshold is not None:
                rows = rows[self._sampled_batch(config, batch, rows)]
                if rows.size == 0:
                    continue
            total_rows += rows.size
            comp_rows = [c[rows] for c in compressed]
            # Initialization: key + raw parameters.
            address = config.key_selector.compute_batch(comp_rows)
            p1 = config.p1.value_batch(batch, comp_rows, rows)
            p2 = config.p2.value_batch(batch, comp_rows, rows)
            # Preparation: address translation + parameter preprocessing.
            index = plan.translation.translate_batch(address)
            p1 = config.p1_processor.apply_batch(p1, batch, rows)
            if self.journal is not None and self.journal.wants(
                self.group_id, self.index, task_id
            ):
                self.journal.record(
                    self.group_id, self.index, task_id, rows, index, p1, p2
                )
            # Operation: stateful update; export result and processed p1.
            results = self.register.execute_batch(config.op, index, p1, p2)
            batch.ensure(result_field(self.group_id, self.index))[rows] = results
            batch.ensure(param_field(self.group_id, self.index))[rows] = p1
            if plan.alarm_armed:
                hits = rows[results >= config.alarm_threshold]
                if hits.size:
                    digests = self._digests.setdefault(task_id, set())
                    key_rows = self._digest_key_rows(config.digest_key, batch, hits)
                    digests.update(map(tuple, key_rows.tolist()))
        if total_rows and _TELEMETRY.enabled:
            if self._access_counter is None:
                self._access_counter = _TELEMETRY.registry.counter(
                    "flymon_register_accesses_total",
                    group=str(self.group_id),
                    cmu=str(self.index),
                )
            self._access_counter.inc(total_rows)

    @staticmethod
    def _digest_key_rows(digest_key, batch, rows: np.ndarray) -> np.ndarray:
        """Columnar ``FlowKeyDef.extract`` for the alarm rows."""
        from repro.traffic.flows import FIELD_WIDTHS

        cols = []
        for name, bits in digest_key.parts:
            width = FIELD_WIDTHS[name]
            col = batch.get(name)[rows] & ((1 << width) - 1)
            cols.append(col >> (width - bits))
        return np.stack(cols, axis=1)

    def _sampled_batch(
        self, config: CmuTaskConfig, batch, rows: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_sampled`: boolean keep-mask over ``rows``."""
        ts = batch.get("timestamp")[rows].astype(np.uint64)
        src = batch.get("src_ip")[rows].astype(np.uint64)
        mixed = (
            (ts << np.uint64(32))
            ^ (src << np.uint64(8))
            ^ np.uint64(config.task_id & 0xFF)
        )
        h = self._sample_hash.hash_int_batch(mixed, width=64)
        return h < config.sample_prob * 2.0**32

    def _sampled(self, config: CmuTaskConfig, fields: Mapping[str, int]) -> bool:
        """Deterministic per-packet coin for probabilistic execution (§5.3)."""
        h = self._sample_hash.hash_int(
            (int(fields.get("timestamp", 0)) << 32)
            ^ (int(fields.get("src_ip", 0)) << 8)
            ^ (config.task_id & 0xFF),
            width=64,
        )
        return h < config.sample_prob * 2.0**32

    def __repr__(self) -> str:
        return (
            f"Cmu(group={self.group_id}, index={self.index}, "
            f"tasks={self.task_ids})"
        )
