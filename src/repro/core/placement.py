"""Cross-stacking CMU Groups onto the RMT pipeline (§3.2, Fig. 8, Fig. 13b).

Each CMU Group needs four consecutive MAU stages with *different* dominant
resources per stage, so groups are stacked shifted by one stage: group ``j``
occupies stages ``j .. j+3``.  A 12-stage pipeline therefore fits 9 groups
(27 CMUs), and per-stage utilization of each resource stays below capacity
because at most one compression, one initialization, one preparation, and
one operation stage land on any given MAU stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cmu_group import GROUP_STAGES, STAGE_OPERATION, CmuGroup
from repro.dataplane.phv import FieldSpec
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.resources import ResourceVector


@dataclass(frozen=True)
class GroupPlacement:
    """Which MAU stage hosts each of one group's four stages."""

    group_id: int
    first_stage: int

    def stage_of(self, stage_name: str) -> int:
        return self.first_stage + GROUP_STAGES.index(stage_name)

    @property
    def stages(self) -> Dict[str, int]:
        return {name: self.stage_of(name) for name in GROUP_STAGES}


def max_groups(num_stages: int) -> int:
    """How many cross-stacked groups fit in ``num_stages`` MAU stages."""
    return max(0, num_stages - len(GROUP_STAGES) + 1)


def plan_cross_stacking(num_stages: int, num_groups: Optional[int] = None) -> List[GroupPlacement]:
    """Shift-one-stage placements for up to ``num_groups`` groups."""
    limit = max_groups(num_stages)
    if num_groups is None:
        num_groups = limit
    if num_groups > limit:
        raise ValueError(
            f"{num_groups} groups do not fit in {num_stages} stages "
            f"(max {limit})"
        )
    return [GroupPlacement(g, g) for g in range(num_groups)]


def apply_placements(
    pipeline: Pipeline,
    groups: List[CmuGroup],
    placements: List[GroupPlacement],
) -> None:
    """Charge each group's per-stage demands to the pipeline (admission-
    controlled), plus its PHV reservation, and attach the group's packet
    processing as a hook on its operation stage.

    The hook makes ``Pipeline.process`` the real datapath: a packet
    traversing the pipeline executes each placed group's four-stage logic at
    that group's operation stage, in pipeline order -- which is also what
    keeps multi-group PHV result chaining correct.
    """
    if len(groups) != len(placements):
        raise ValueError("groups and placements must align")
    for group, placement in zip(groups, placements):
        demands = group.stage_demands()
        for stage_name, demand in demands.items():
            stage = pipeline.stage(placement.stage_of(stage_name))
            stage.allocate(f"cmug{group.group_id}/{stage_name}", demand)
        pipeline.stage(placement.stage_of(STAGE_OPERATION)).add_hook(
            group.process, group.process_batch
        )
        pipeline.phv_layout.allocate(
            FieldSpec(f"cmug{group.group_id}/keys", group.phv_demand_bits())
        )


def plan_spliced_stacking(num_stages: int) -> List[GroupPlacement]:
    """Appendix E: splice 3 extra CMU Groups from the pipeline's triangle
    areas via mirror + recirculation.

    Regular cross-stacking leaves the start and end of the pipeline
    under-used (no complete 4-stage window remains).  By mirroring packets to
    a recirculate port, a group's stages may *wrap around* the pipeline end:
    group ``j >= max_groups`` starts at stage ``j`` and continues from stage
    0 on the recirculated pass.  A 12-stage pipeline then hosts 12 groups
    (9 regular + 3 spliced) at the price of recirculation bandwidth for
    packets whose tasks live on spliced groups.
    """
    regular = plan_cross_stacking(num_stages)
    spliced = [
        GroupPlacement(g, g) for g in range(max_groups(num_stages), num_stages)
    ]
    return regular + spliced


def apply_spliced_placements(
    pipeline: Pipeline,
    groups: List[CmuGroup],
    placements: List[GroupPlacement],
) -> None:
    """Like :func:`apply_placements` but stage indices wrap modulo the
    pipeline length (the recirculated second pass)."""
    if len(groups) != len(placements):
        raise ValueError("groups and placements must align")
    n = pipeline.num_stages
    for group, placement in zip(groups, placements):
        for stage_name, demand in group.stage_demands().items():
            stage = pipeline.stage(placement.stage_of(stage_name) % n)
            stage.allocate(f"cmug{group.group_id}/{stage_name}", demand)
        # No datapath hook here: a spliced group's operation stage wraps to
        # the *front* of the pipeline and physically runs on the
        # recirculated second pass, so single-pass hook ordering would be
        # wrong.  Spliced placement stays resource-accounting only.
        pipeline.phv_layout.allocate(
            FieldSpec(f"cmug{group.group_id}/keys", group.phv_demand_bits())
        )


def recirculation_overhead(
    spliced_traffic_fraction: float, num_spliced_groups: int = 3
) -> float:
    """Extra pipeline bandwidth consumed by mirroring + recirculating the
    packets that execute tasks on spliced groups (Appendix E: "only packets
    that need to perform the tasks on these spliced CMU Groups will incur
    additional bandwidth overhead")."""
    if not 0.0 <= spliced_traffic_fraction <= 1.0:
        raise ValueError("traffic fraction must be in [0, 1]")
    if num_spliced_groups <= 0:
        return 0.0
    return spliced_traffic_fraction  # one extra pass per mirrored packet


def stacking_utilization(num_stages: int, reference_group: Optional[CmuGroup] = None) -> Dict[str, float]:
    """Hash/SALU (and other) utilization for a fully stacked ``num_stages``
    pipeline (Figure 13b's series)."""
    pipeline = Pipeline(num_stages=num_stages)
    count = max_groups(num_stages)
    groups = [
        reference_group if reference_group is not None and g == 0 else CmuGroup(g)
        for g in range(count)
    ]
    apply_placements(pipeline, groups, plan_cross_stacking(num_stages, count))
    return pipeline.utilization()


def cmus_deployable(
    candidate_key_bits: int,
    phv_free_bits: int,
    num_stages: int = 12,
    with_compression: bool = True,
    cmus_per_group: int = 3,
    compressed_key_bits: int = 96,
) -> int:
    """How many CMUs fit, limited by PHV (Figure 13c).

    Without compression every CMU must statically copy the full candidate
    key set into the PHV; with FlyMon's less-copy strategy a whole *group*
    shares ``compressed_key_bits`` (three 32-bit compressed keys).  Both are
    additionally capped by the stage budget (9 groups x 3 CMUs in 12
    stages).
    """
    stage_cap = max_groups(num_stages) * cmus_per_group
    if with_compression:
        groups_by_phv = phv_free_bits // compressed_key_bits
        return min(stage_cap, groups_by_phv * cmus_per_group)
    cmus_by_phv = phv_free_bits // max(1, candidate_key_bits)
    return min(stage_cap, cmus_by_phv)
