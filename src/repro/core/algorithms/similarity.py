"""Odd Sketch on CMUs: traffic-set similarity (the §6 expansion example).

Loading XOR into the SALU's reserved fourth action slot turns a CMU into an
Odd Sketch: the key slice addresses a bucket and a one-hot bit of it is
parity-flipped per packet.  Two odd-sketch tasks over the same key on the
same CMU Group (e.g. two filters, or two epochs) share the exact hash path,
so XOR-ing their parity arrays estimates the symmetric difference of their
flow sets -- set similarity entirely from data-plane state.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.algorithms.base import CmuAlgorithm, PlanContext, register_algorithm
from repro.core.cmu import CmuTaskConfig
from repro.core.compression import HASH_KEY_BITS
from repro.core.operations import OP_XOR
from repro.core.params import BitSelectProcessor, CompressedKeyParam, ConstParam
from repro.sketches.oddsketch import jaccard_from_difference, symmetric_difference_estimate


@register_algorithm
class FlyMonOddSketch(CmuAlgorithm):
    """A single-row parity array over distinct flow keys."""

    name = "odd_sketch"

    def num_rows(self) -> int:
        return 1

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        row = ctx.rows[0]
        address_bits = ctx.address_bits(row)
        key = row.key_grant.selector.with_slice(0, address_bits)
        bit_source = row.key_grant.selector.with_slice(HASH_KEY_BITS - 16, 16)
        return [
            CmuTaskConfig(
                task_id=ctx.task_id,
                filter=ctx.task.filter,
                key_selector=key,
                p1=CompressedKeyParam(bit_source),
                p2=ConstParam(0),
                p1_processor=BitSelectProcessor(ctx.bucket_bits),
                mem=row.mem,
                op=OP_XOR,
                strategy=ctx.strategy,
                sample_prob=ctx.task.sample_prob,
                priority=ctx.priority,
            )
        ]

    # -- estimation --------------------------------------------------------

    def parity_bits(self) -> np.ndarray:
        """The flat parity bit array (length x bucket_bits booleans)."""
        stored = self.rows[0].read()
        bucket_bits = self.rows[0].cmu.bucket_bits
        out = np.zeros(len(stored) * bucket_bits, dtype=bool)
        for i, word in enumerate(stored):
            word = int(word)
            base = i * bucket_bits
            while word:
                bit = (word & -word).bit_length() - 1
                out[base + bit] = True
                word &= word - 1
        return out

    @property
    def num_bits(self) -> int:
        return self.rows[0].mem.length * self.rows[0].cmu.bucket_bits

    def estimate_size(self) -> float:
        """Estimated number of distinct flows observed (odd multiplicity)."""
        odd = int(self.parity_bits().sum())
        return symmetric_difference_estimate(odd, self.num_bits)

    def symmetric_difference(self, other: "FlyMonOddSketch") -> float:
        """Estimated size of the symmetric difference of two tasks' flow
        sets.  Both tasks must share the hash path: same CMU Group, same key
        selector, and equal-size memory partitions."""
        self._check_compatible(other)
        odd = int(np.logical_xor(self.parity_bits(), other.parity_bits()).sum())
        return symmetric_difference_estimate(odd, self.num_bits)

    def jaccard(self, other: "FlyMonOddSketch") -> float:
        """Jaccard similarity of the two tasks' flow sets."""
        return jaccard_from_difference(
            self.estimate_size(),
            other.estimate_size(),
            self.symmetric_difference(other),
        )

    def _check_compatible(self, other: "FlyMonOddSketch") -> None:
        mine, theirs = self.rows[0], other.rows[0]
        if mine.group is not theirs.group:
            raise ValueError("odd sketches must live on the same CMU Group")
        if mine.mem.length != theirs.mem.length:
            raise ValueError("odd sketches must have equal-size partitions")
        if mine.config.key_selector.units != theirs.config.key_selector.units:
            raise ValueError("odd sketches must use the same compressed key")
