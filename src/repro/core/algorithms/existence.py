"""Existence-attribute algorithm: Bloom Filter on CMUs (§4)."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.algorithms.base import (
    CmuAlgorithm,
    PlanContext,
    fields_from_flow,
    register_algorithm,
)
from repro.core.cmu import CmuTaskConfig
from repro.core.compression import HASH_KEY_BITS
from repro.core.operations import OP_AND_OR
from repro.core.params import (
    BitSelectProcessor,
    CompressedKeyParam,
    ConstParam,
    IdentityProcessor,
)


@register_algorithm
class FlyMonBloom(CmuAlgorithm):
    """Bloom Filter with FlyMon's bit-packing optimization (§4).

    CMU buckets have a uniform width; using a whole bucket as one Bloom bit
    wastes it.  The optimized variant ("w/ Opt" in Fig. 14g) addresses a
    bucket with the key slice and uses a second slice, one-hot encoded in
    the preparation stage, to touch a single bit -- every bucket bit becomes
    a usable filter bit.  Construct with ``optimized=False`` for the naive
    one-bit-per-bucket baseline the figure compares against.
    """

    name = "bloom"

    def __init__(self, task, optimized: bool = True) -> None:
        super().__init__(task)
        self.optimized = optimized

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        configs = []
        for i, row in enumerate(ctx.rows):
            key = ctx.sliced_key(i)
            if self.optimized:
                bit_source = row.key_grant.selector.with_slice(
                    HASH_KEY_BITS - 16, 16
                )
                p1 = CompressedKeyParam(bit_source)
                processor = BitSelectProcessor(ctx.bucket_bits)
            else:
                p1 = ConstParam(1)
                processor = IdentityProcessor()
            configs.append(
                CmuTaskConfig(
                    task_id=ctx.task_id,
                    filter=ctx.task.filter,
                    key_selector=key,
                    p1=p1,
                    p2=ConstParam(1),  # OR side of AND-OR
                    p1_processor=processor,
                    mem=row.mem,
                    op=OP_AND_OR,
                    strategy=ctx.strategy,
                    sample_prob=ctx.task.sample_prob,
                    priority=ctx.priority,
                )
            )
        return configs

    def contains(self, flow: Tuple[int, ...]) -> bool:
        """Membership probe: every row's addressed bit must be set."""
        fields = self._fields_for(flow)
        for row in self.rows:
            _, value, p1 = row.probe(fields)
            if self.optimized:
                if not value & p1:
                    return False
            elif value == 0:
                return False
        return True

    def query_set(self, flows: Iterable[Tuple[int, ...]]) -> set:
        return {flow for flow in flows if self.contains(flow)}

    def effective_bits(self) -> int:
        """Usable filter bits per row under the current configuration."""
        bucket_bits = self.rows[0].cmu.bucket_bits if self.rows else 0
        length = self.rows[0].mem.length if self.rows else 0
        return length * (bucket_bits if self.optimized else 1)


@register_algorithm
class FlyMonBloomNaive(FlyMonBloom):
    """The unoptimized baseline of Fig. 14g: one filter bit per bucket."""

    name = "bloom_naive"

    def __init__(self, task) -> None:
        super().__init__(task, optimized=False)
