"""Frequency-attribute algorithms on CMUs (§4, Appendix D)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.entropy import entropy_from_distribution
from repro.analysis.estimators import mrac_em
from repro.core.algorithms.base import (
    CmuAlgorithm,
    PlanContext,
    register_algorithm,
)
from repro.core.cmu import CmuTaskConfig
from repro.core.operations import OP_COND_ADD
from repro.core.params import (
    ConstParam,
    FieldParam,
    IdentityProcessor,
    MinResultsParam,
    OverflowIndicatorProcessor,
    ResultParam,
)
from repro.core.task import MeasurementTask


def _p1_for_frequency(task: MeasurementTask):
    """Frequency(1) counts packets; Frequency('pkt_bytes') counts bytes."""
    param = task.attribute.param
    if isinstance(param, int):
        return ConstParam(param)
    if isinstance(param, str):
        return FieldParam(param)
    raise TypeError(f"frequency parameter must be int or field name, not {param!r}")


class _CounterQueryMixin:
    """Shared min-over-rows point query with sampling compensation."""

    def query(self, flow: Tuple[int, ...]) -> float:
        values = self.row_values(flow)
        estimate = float(min(values)) if values else 0.0
        return estimate / self.task.sample_prob

    def heavy_hitters(self, candidates: Iterable[Tuple[int, ...]], threshold: int) -> Set:
        return {flow for flow in candidates if self.query(flow) >= threshold}

    def data_plane_heavy_hitters(self) -> Set:
        """Threshold-crossing flows reported by data-plane digests.

        Available when the task was deployed with ``threshold`` set: each
        row digests flows whose counter crossed it, and a flow is a heavy
        hitter when *every* row reported it (equivalent to the min-over-rows
        estimate crossing the threshold) -- no candidate enumeration needed.
        """
        digest_sets = [
            row.cmu.peek_digests(row.task_id) for row in self.rows
        ]
        if not digest_sets:
            return set()
        out = digest_sets[0]
        for digests in digest_sets[1:]:
            out = out & digests
        return out


@register_algorithm
class FlyMonCms(_CounterQueryMixin, CmuAlgorithm):
    """Count-Min Sketch: ``d`` Cond-ADD rows with ``p2 = +inf`` (§4).

    Setting the conditional's bound to the counter maximum turns Cond-ADD
    into CMS's unconditional ADD (counters saturate instead of wrapping).
    """

    name = "cms"

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        p1 = _p1_for_frequency(ctx.task)
        p2 = ConstParam((1 << ctx.bucket_bits) - 1)
        configs = []
        for i, row in enumerate(ctx.rows):
            configs.append(
                CmuTaskConfig(
                    task_id=ctx.task_id,
                    filter=ctx.task.filter,
                    key_selector=ctx.sliced_key(i),
                    p1=p1,
                    p2=p2,
                    p1_processor=IdentityProcessor(),
                    mem=row.mem,
                    op=OP_COND_ADD,
                    strategy=ctx.strategy,
                    sample_prob=ctx.task.sample_prob,
                    priority=ctx.priority,
                    alarm_threshold=ctx.task.threshold,
                    digest_key=ctx.task.key if ctx.task.threshold else None,
                )
            )
        return configs


@register_algorithm
class FlyMonMrac(_CounterQueryMixin, CmuAlgorithm):
    """MRAC: a single counter row; the distribution is recovered by EM.

    The data plane is identical to a one-row CMS (§4 / Appendix D: "MRAC and
    Count-Min Sketch implementations are identical in the data plane"); the
    difference is entirely control-plane analysis.
    """

    name = "mrac"

    def num_rows(self) -> int:
        return 1

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        return FlyMonCms.build_configs(self, ctx)

    def estimate_distribution(self, **kwargs) -> Dict[int, float]:
        counters = self.rows[0].read()
        return mrac_em(counters, len(counters), **kwargs)

    def estimate_entropy(self, **kwargs) -> float:
        return entropy_from_distribution(self.estimate_distribution(**kwargs))

    def estimate_flow_count(self, **kwargs) -> float:
        return float(sum(self.estimate_distribution(**kwargs).values()))


@register_algorithm
class FlyMonSuMaxSum(_CounterQueryMixin, CmuAlgorithm):
    """SuMax(Sum): approximate conservative update across chained groups.

    Each row's Cond-ADD only fires while its counter is below the running
    minimum of the previous rows' post-update values, which the rows export
    through the PHV -- hence one CMU per (pipeline-ordered) group (§4,
    Table 3: CMUG usage 3).
    """

    name = "sumax_sum"

    def groups_needed(self) -> int:
        return self.task.depth

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        p1 = _p1_for_frequency(ctx.task)
        max_value = (1 << ctx.bucket_bits) - 1
        configs = []
        for i, row in enumerate(ctx.rows):
            if i == 0:
                p2 = ConstParam(max_value)
            else:
                refs = tuple(
                    (ctx.rows[j].group.group_id, ctx.rows[j].cmu.index)
                    for j in range(i)
                )
                p2 = MinResultsParam(refs)
            configs.append(
                CmuTaskConfig(
                    task_id=ctx.task_id,
                    filter=ctx.task.filter,
                    key_selector=ctx.sliced_key(i),
                    p1=p1,
                    p2=p2,
                    p1_processor=IdentityProcessor(),
                    mem=row.mem,
                    op=OP_COND_ADD,
                    strategy=ctx.strategy,
                    sample_prob=ctx.task.sample_prob,
                    priority=ctx.priority,
                    alarm_threshold=ctx.task.threshold,
                    digest_key=ctx.task.key if ctx.task.threshold else None,
                )
            )
        return configs


#: Tower rows: (counter_bits, memory multiplier vs. the task's base request).
TOWER_LAYOUT = ((2, 4), (4, 2), (8, 1))


@register_algorithm
class FlyMonTower(CmuAlgorithm):
    """TowerSketch on CMUs (Appendix D, Fig. 15a).

    Rows emulate small counters inside the uniform 16-bit buckets by
    counting in the buckets' most-significant bits: ``p1`` represents "1"
    at the counter's bit offset and ``p2`` is the saturation bound.
    Address translation gives each row its own array length.
    """

    name = "tower"

    def num_rows(self) -> int:
        return len(TOWER_LAYOUT)

    def row_memory(self, base_memory: int) -> List[int]:
        return [base_memory * mult for _, mult in TOWER_LAYOUT]

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        configs = []
        for i, row in enumerate(ctx.rows):
            bits, _ = TOWER_LAYOUT[i]
            shift = ctx.bucket_bits - bits
            configs.append(
                CmuTaskConfig(
                    task_id=ctx.task_id,
                    filter=ctx.task.filter,
                    key_selector=ctx.sliced_key(i),
                    p1=ConstParam(1 << shift),
                    p2=ConstParam(((1 << bits) - 1) << shift),
                    p1_processor=IdentityProcessor(),
                    mem=row.mem,
                    op=OP_COND_ADD,
                    strategy=ctx.strategy,
                    sample_prob=ctx.task.sample_prob,
                    priority=ctx.priority,
                )
            )
        return configs

    def query(self, flow: Tuple[int, ...]) -> float:
        best = None
        for i, value in enumerate(self.row_values(flow)):
            bits, _ = TOWER_LAYOUT[i]
            shift = self.rows[i].cmu.bucket_bits - bits
            counter = value >> shift
            if counter >= (1 << bits) - 1:
                continue  # saturated: +infinity
            best = counter if best is None else min(best, counter)
        if best is None:
            best = (1 << TOWER_LAYOUT[-1][0]) - 1
        return best / self.task.sample_prob

    def heavy_hitters(self, candidates, threshold: int) -> set:
        return {flow for flow in candidates if self.query(flow) >= threshold}


@register_algorithm
class FlyMonCounterBraids(CmuAlgorithm):
    """Two-layer Counter Braids on chained CMUs (Appendix D, Fig. 15b).

    The low layer counts in a few high bits of the bucket; its Cond-ADD
    exports 0 exactly when the counter saturated, and the high-layer CMU
    (next group) turns that 0 into a +1 on its own bucket.  The per-flow
    estimate is ``low`` when unsaturated, else ``low_sat + high``.
    """

    name = "counter_braids"
    layer1_bits = 4

    def num_rows(self) -> int:
        return 2

    def groups_needed(self) -> int:
        return 2

    def row_memory(self, base_memory: int) -> List[int]:
        return [base_memory, max(1, base_memory // 4)]

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        bits = self.layer1_bits
        shift = ctx.bucket_bits - bits
        low_row, high_row = ctx.rows
        low = CmuTaskConfig(
            task_id=ctx.task_id,
            filter=ctx.task.filter,
            key_selector=ctx.sliced_key(0),
            p1=ConstParam(1 << shift),
            p2=ConstParam(((1 << bits) - 1) << shift),
            p1_processor=IdentityProcessor(),
            mem=low_row.mem,
            op=OP_COND_ADD,
            strategy=ctx.strategy,
            sample_prob=ctx.task.sample_prob,
            priority=ctx.priority,
        )
        high = CmuTaskConfig(
            task_id=ctx.task_id,
            filter=ctx.task.filter,
            key_selector=ctx.sliced_key(1),
            p1=ResultParam(low_row.group.group_id, low_row.cmu.index),
            p2=ConstParam((1 << ctx.bucket_bits) - 1),
            p1_processor=OverflowIndicatorProcessor(increment=1),
            mem=high_row.mem,
            op=OP_COND_ADD,
            strategy=ctx.strategy,
            sample_prob=ctx.task.sample_prob,
            priority=ctx.priority,
        )
        return [low, high]

    def query(self, flow: Tuple[int, ...]) -> float:
        low_value, high_value = self.row_values(flow)
        bits = self.layer1_bits
        shift = self.rows[0].cmu.bucket_bits - bits
        sat = (1 << bits) - 1
        low = low_value >> shift
        estimate = low if low < sat else sat + high_value
        return estimate / self.task.sample_prob

    def heavy_hitters(self, candidates, threshold: int) -> set:
        return {flow for flow in candidates if self.query(flow) >= threshold}
