"""Distinct-attribute algorithms on CMUs (§4)."""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.analysis.estimators import (
    coupon_collector_inversion,
    hll_estimate,
    linear_counting_estimate,
    tune_coupon_probability,
)
from repro.core.algorithms.base import (
    CmuAlgorithm,
    PlanContext,
    fields_from_flow,
    register_algorithm,
)
from repro.core.cmu import CmuTaskConfig
from repro.core.compression import HASH_KEY_BITS
from repro.core.operations import OP_AND_OR, OP_MAX
from repro.core.params import (
    BitSelectProcessor,
    CompressedKeyParam,
    ComplementProcessor,
    ConstParam,
    IdentityProcessor,
    OneHotCouponProcessor,
)
from repro.core.task import MeasurementTask
from repro.traffic.flows import FlowKeyDef


def _param_keydef(task: MeasurementTask) -> FlowKeyDef:
    param = task.attribute.param
    if not isinstance(param, FlowKeyDef):
        raise TypeError("distinct attribute needs a FlowKeyDef parameter")
    return param


@register_algorithm
class FlyMonHll(CmuAlgorithm):
    """Single-key distinct counting via the MAX operation (§4).

    Both the key and ``p1`` are set to the flow key's compressed value: the
    key slice locates a bucket and ``p1`` (a disjoint slice, complemented in
    the preparation stage) is MAX-tracked.  The stored maximum of the
    complemented hash equals the minimum hash, whose leading-zero count is
    the HLL rank -- no TCAM entries needed, matching the paper's stated
    preference over rho-encoding implementations.
    """

    name = "hll"
    rho_bits = 16

    def num_rows(self) -> int:
        return 1

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        row = ctx.rows[0]
        address_bits = ctx.address_bits(row)
        key = row.key_grant.selector.with_slice(0, address_bits)
        rho_source = row.key_grant.selector.with_slice(
            HASH_KEY_BITS - self.rho_bits, self.rho_bits
        )
        return [
            CmuTaskConfig(
                task_id=ctx.task_id,
                filter=ctx.task.filter,
                key_selector=key,
                p1=CompressedKeyParam(rho_source),
                p2=ConstParam(0),
                p1_processor=ComplementProcessor(self.rho_bits),
                mem=row.mem,
                op=OP_MAX,
                strategy=ctx.strategy,
                sample_prob=ctx.task.sample_prob,
                priority=ctx.priority,
            )
        ]

    def estimate(self) -> float:
        """Cardinality estimate from the stored complement maxima."""
        stored = self.rows[0].read()
        mask = (1 << self.rho_bits) - 1
        ranks = np.zeros(len(stored), dtype=np.int64)
        for i, value in enumerate(stored):
            if value == 0:
                continue  # empty bucket
            min_hash = (~int(value)) & mask
            if min_hash == 0:
                ranks[i] = self.rho_bits + 1
            else:
                ranks[i] = self.rho_bits - min_hash.bit_length() + 1
        return hll_estimate(ranks)


@register_algorithm
class FlyMonBeauCoup(CmuAlgorithm):
    """Multi-key distinct counting via coupon collection (§4).

    Key and ``p1`` are two different compressed keys (e.g. ``C(DstIP)`` and
    ``C(SrcIP)``); the preparation stage maps ``p1`` to a one-hot coupon and
    the AND-OR operation (OR side) collects it.  Instead of the original
    checksums, FlyMon uses ``d`` coupon tables and reports a key only when
    every table's coupons are complete (the CMS-style collision damping the
    paper describes).
    """

    name = "beaucoup"
    #: 32 coupons fill the uniform 32-bit buckets; more coupons mean a
    #: sharper coupon-collector threshold (lower detection variance).
    default_coupons = 32

    def __init__(self, task: MeasurementTask) -> None:
        super().__init__(task)
        if task.threshold is None:
            raise ValueError("beaucoup needs task.threshold for coupon tuning")
        self.num_coupons = min(self.default_coupons, 32)
        self.coupon_prob = tune_coupon_probability(self.num_coupons, task.threshold)

    def needs_param_key(self) -> bool:
        return True

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        if ctx.bucket_bits < self.num_coupons:
            self.num_coupons = ctx.bucket_bits
            self.coupon_prob = tune_coupon_probability(
                self.num_coupons, ctx.task.threshold
            )
        configs = []
        for i, row in enumerate(ctx.rows):
            assert row.param_grant is not None
            configs.append(
                CmuTaskConfig(
                    task_id=ctx.task_id,
                    filter=ctx.task.filter,
                    key_selector=ctx.sliced_key(i),
                    p1=CompressedKeyParam(row.param_grant.selector),
                    p2=ConstParam(1),  # select the OR side of AND-OR
                    p1_processor=OneHotCouponProcessor(
                        self.num_coupons, self.coupon_prob
                    ),
                    mem=row.mem,
                    op=OP_AND_OR,
                    strategy=ctx.strategy,
                    sample_prob=ctx.task.sample_prob,
                    priority=ctx.priority,
                )
            )
        return configs

    @property
    def full_mask(self) -> int:
        return (1 << self.num_coupons) - 1

    def alarms(self, candidates: Iterable[Tuple[int, ...]]) -> Set:
        """Candidate keys whose coupons are complete in every table."""
        out = set()
        for flow in candidates:
            values = self.row_values(flow)
            if all(v & self.full_mask == self.full_mask for v in values):
                out.add(flow)
        return out

    def estimate_distinct(self, flow: Tuple[int, ...]) -> float:
        values = self.row_values(flow)
        estimates = sorted(
            coupon_collector_inversion(
                bin(v & self.full_mask).count("1"), self.num_coupons, self.coupon_prob
            )
            for v in values
        )
        return estimates[len(estimates) // 2]


@register_algorithm
class FlyMonLinearCounting(CmuAlgorithm):
    """Single-key distinct counting on a bit-packed bitmap.

    Data plane identical to the optimized Bloom Filter with one row
    (Appendix D: "the same is true for Linear Counting and Bloom Filter");
    the estimate inverts the zero-bit fraction.
    """

    name = "linear_counting"

    def num_rows(self) -> int:
        return 1

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        row = ctx.rows[0]
        address_bits = ctx.address_bits(row)
        key = row.key_grant.selector.with_slice(0, address_bits)
        bit_source = row.key_grant.selector.with_slice(
            HASH_KEY_BITS - 16, 16
        )
        return [
            CmuTaskConfig(
                task_id=ctx.task_id,
                filter=ctx.task.filter,
                key_selector=key,
                p1=CompressedKeyParam(bit_source),
                p2=ConstParam(1),
                p1_processor=BitSelectProcessor(ctx.bucket_bits),
                mem=row.mem,
                op=OP_AND_OR,
                strategy=ctx.strategy,
                sample_prob=ctx.task.sample_prob,
                priority=ctx.priority,
            )
        ]

    def estimate(self) -> float:
        stored = self.rows[0].read()
        bucket_bits = self.rows[0].cmu.bucket_bits
        total_bits = len(stored) * bucket_bits
        ones = int(sum(bin(int(v)).count("1") for v in stored))
        return linear_counting_estimate(total_bits, total_bits - ones)
