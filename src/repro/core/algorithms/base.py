"""Algorithm framework: planning contexts, row bindings, and the registry."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.cmu import Cmu, CmuTaskConfig
from repro.core.cmu_group import CmuGroup
from repro.core.compression import KeyGrant, KeySelector, row_slices
from repro.core.memory import MemRange
from repro.core.task import Attribute, MeasurementTask
from repro.traffic.flows import FIELD_WIDTHS, FlowKeyDef


def fields_from_flow(key_def: FlowKeyDef, flow: Tuple[int, ...]) -> Dict[str, int]:
    """Reconstruct packet-like fields from a flow-key tuple.

    Ground-truth flow keys carry prefix-shifted values; placing them back in
    the high bits reproduces exactly what the data-plane hash units saw.
    """
    out = {}
    for (name, bits), part in zip(key_def.parts, flow):
        width = FIELD_WIDTHS[name]
        out[name] = (int(part) << (width - bits)) & ((1 << width) - 1)
    return out


@dataclass
class RowSlot:
    """One row assigned by the controller: a CMU plus its memory range and
    the compressed-key grants acquired on that CMU's group."""

    group: CmuGroup
    cmu: Cmu
    mem: MemRange
    key_grant: KeyGrant
    param_grant: Optional[KeyGrant] = None


@dataclass
class PlanContext:
    """Everything an algorithm needs to emit per-row configurations."""

    task: MeasurementTask
    task_id: int
    rows: List[RowSlot]
    strategy: str = "tcam"
    priority: int = 0

    @property
    def register_size(self) -> int:
        return self.rows[0].cmu.register_size

    @property
    def bucket_bits(self) -> int:
        return self.rows[0].cmu.bucket_bits

    def address_bits(self, row: RowSlot) -> int:
        return row.cmu.register_size.bit_length() - 1

    def sliced_key(self, row_index: int) -> KeySelector:
        """The row's key selector restricted to its distinct sub-slice of the
        compressed key (§3.2's simulated-independence trick)."""
        row = self.rows[row_index]
        slices = row_slices(len(self.rows), self.address_bits(row))
        offset, width = slices[row_index]
        return row.key_grant.selector.with_slice(offset, width)


@dataclass
class RowBinding:
    """A deployed row, used by the control plane for queries."""

    group: CmuGroup
    cmu: Cmu
    task_id: int

    @property
    def config(self) -> CmuTaskConfig:
        return self.cmu.config(self.task_id)

    @property
    def mem(self) -> MemRange:
        return self.config.mem

    def read(self) -> np.ndarray:
        return self.cmu.read_task_memory(self.task_id)

    def reset(self) -> None:
        self.cmu.reset_task_memory(self.task_id)

    def value_for_fields(self, fields: Dict[str, int]) -> int:
        """The bucket value a packet with these fields would touch."""
        compressed = self.group.compress(fields)
        index = self.cmu.index_for(self.task_id, compressed)
        return self.cmu.register.read(index)

    def probe(self, fields: Dict[str, int]) -> Tuple[int, int, int]:
        """``(bucket_index, bucket_value, processed_p1)`` for a packet --
        lets membership-style queries recompute the probe bit the data
        plane would use."""
        compressed = self.group.compress(fields)
        cfg = self.config
        index = self.cmu.index_for(self.task_id, compressed)
        value = self.cmu.register.read(index)
        p1 = cfg.p1_processor.apply(cfg.p1.value(fields, compressed), fields)
        return index, value, p1


class CmuAlgorithm:
    """Base class for built-in algorithms.

    Subclasses declare their shape (rows per group, number of groups) and
    implement :meth:`build_configs`; after deployment the controller attaches
    :attr:`rows` (bindings) and the instance answers queries.
    """

    name: str = ""
    attribute: Optional[Attribute] = None

    def __init__(self, task: MeasurementTask) -> None:
        self.task = task
        self.rows: List[RowBinding] = []

    # -- shape -----------------------------------------------------------------

    def num_rows(self) -> int:
        """Total CMU rows the deployment needs."""
        return self.task.depth

    def groups_needed(self) -> int:
        """1 for in-group algorithms; >1 when rows chain across groups."""
        return 1

    def needs_param_key(self) -> bool:
        """Whether a second compressed key (the attribute parameter) is
        required on each group."""
        return False

    def rows_layout(self) -> List[int]:
        """Rows per group, group-major (e.g. ``[3]`` in-group, ``[1, 1, 1]``
        chained)."""
        groups = self.groups_needed()
        if groups == 1:
            return [self.num_rows()]
        per_group, extra = divmod(self.num_rows(), groups)
        if extra:
            raise ValueError("rows must divide evenly across groups")
        return [per_group] * groups

    def row_memory(self, base_memory: int) -> List[int]:
        """Requested bucket counts per row (before quantization)."""
        return [base_memory] * self.num_rows()

    # -- compile ----------------------------------------------------------------

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        raise NotImplementedError

    # -- query helpers -------------------------------------------------------------

    def bind(self, rows: List[RowBinding]) -> None:
        self.rows = rows

    def read_rows(self) -> List[np.ndarray]:
        return [row.read() for row in self.rows]

    def reset(self) -> None:
        for row in self.rows:
            row.reset()

    def _fields_for(self, flow: Tuple[int, ...]) -> Dict[str, int]:
        return fields_from_flow(self.task.key, flow)

    def row_values(self, flow: Tuple[int, ...]) -> List[int]:
        fields = self._fields_for(flow)
        return [row.value_for_fields(fields) for row in self.rows]


#: name -> class; populated by the concrete algorithm modules.
ALGORITHM_REGISTRY: Dict[str, Type[CmuAlgorithm]] = {}


def register_algorithm(cls: Type[CmuAlgorithm]) -> Type[CmuAlgorithm]:
    if not cls.name:
        raise ValueError("algorithm class needs a name")
    ALGORITHM_REGISTRY[cls.name] = cls
    return cls


#: The compiler's default algorithm per attribute (§3.4: "a dedicated
#: compiler selects a built-in algorithm according to the attribute").
_DEFAULTS = {
    Attribute.FREQUENCY: "cms",
    Attribute.DISTINCT: "beaucoup",
    Attribute.EXISTENCE: "bloom",
    Attribute.MAX: "sumax_max",
}


def default_algorithm_for(task: MeasurementTask) -> str:
    if task.algorithm is not None:
        if task.algorithm not in ALGORITHM_REGISTRY:
            raise KeyError(f"unknown algorithm {task.algorithm!r}")
        return task.algorithm
    kind = task.attribute.kind
    # Single-key distinct counting (no grouping parameter vs. key) defaults
    # to HLL per §4's flow-cardinality task.
    return _DEFAULTS[kind]
