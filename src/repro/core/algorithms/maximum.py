"""Max-attribute algorithm: SuMax(Max) on CMUs (§4, Table 3)."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.algorithms.base import CmuAlgorithm, PlanContext, register_algorithm
from repro.core.cmu import CmuTaskConfig
from repro.core.operations import OP_MAX
from repro.core.params import ConstParam, FieldParam, IdentityProcessor


@register_algorithm
class FlyMonSuMaxMax(CmuAlgorithm):
    """Per-flow maximum of a metadata parameter (queue length, queue delay,
    packet interval ...): ``d`` MAX rows; the point query is the minimum over
    rows (collisions only inflate a row's maximum, never deflate it)."""

    name = "sumax_max"

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        param = ctx.task.attribute.param
        if not isinstance(param, str):
            raise TypeError("max attribute needs a metadata field name parameter")
        configs = []
        for i, row in enumerate(ctx.rows):
            configs.append(
                CmuTaskConfig(
                    task_id=ctx.task_id,
                    filter=ctx.task.filter,
                    key_selector=ctx.sliced_key(i),
                    p1=FieldParam(param),
                    p2=ConstParam(0),
                    p1_processor=IdentityProcessor(),
                    mem=row.mem,
                    op=OP_MAX,
                    strategy=ctx.strategy,
                    sample_prob=ctx.task.sample_prob,
                    priority=ctx.priority,
                )
            )
        return configs

    def query(self, flow: Tuple[int, ...]) -> int:
        values = self.row_values(flow)
        return min(values) if values else 0
