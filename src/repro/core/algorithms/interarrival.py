"""Maximum packet inter-arrival time: the combinatorial 3-CMU task of §4.

Each *chain* spans three CMUs in three pipeline-ordered groups:

1. a Bloom-Filter CMU (AND-OR) whose pre-update word tells downstream
   whether the flow is new,
2. a last-arrival CMU (MAX over timestamps) whose pre-update word is the
   flow's previous arrival time,
3. an interval CMU whose preparation stage computes ``now - previous``
   (zeroed for new flows) and whose MAX operation tracks the flow's largest
   gap.

``depth`` parallel chains reduce hash-collision inflation; the query takes
the minimum over chains (Fig. 14f's d parameter).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.algorithms.base import CmuAlgorithm, PlanContext, register_algorithm
from repro.core.cmu import CmuTaskConfig
from repro.core.compression import HASH_KEY_BITS
from repro.core.operations import OP_AND_OR, OP_MAX
from repro.core.params import (
    BitSelectProcessor,
    CompressedKeyParam,
    ConstParam,
    FieldParam,
    IdentityProcessor,
    InterarrivalProcessor,
    ResultParam,
)


@register_algorithm
class FlyMonMaxInterarrival(CmuAlgorithm):
    """Max inter-arrival time over ``depth`` chains of three CMUs."""

    name = "max_interarrival"

    def num_rows(self) -> int:
        return 3 * self.task.depth

    def groups_needed(self) -> int:
        return 3

    def build_configs(self, ctx: PlanContext) -> List[CmuTaskConfig]:
        d = ctx.task.depth
        configs: List[CmuTaskConfig] = [None] * (3 * d)  # type: ignore[list-item]
        for chain in range(d):
            bloom_row = ctx.rows[chain]
            arrival_row = ctx.rows[d + chain]
            interval_row = ctx.rows[2 * d + chain]

            bit_source = bloom_row.key_grant.selector.with_slice(
                HASH_KEY_BITS - 16, 16
            )
            configs[chain] = CmuTaskConfig(
                task_id=ctx.task_id,
                filter=ctx.task.filter,
                key_selector=ctx.sliced_key(chain),
                p1=CompressedKeyParam(bit_source),
                p2=ConstParam(1),  # OR: insert the flow
                p1_processor=BitSelectProcessor(ctx.bucket_bits),
                mem=bloom_row.mem,
                op=OP_AND_OR,
                strategy=ctx.strategy,
                sample_prob=ctx.task.sample_prob,
                priority=ctx.priority,
            )
            configs[d + chain] = CmuTaskConfig(
                task_id=ctx.task_id,
                filter=ctx.task.filter,
                key_selector=ctx.sliced_key(d + chain),
                p1=FieldParam("timestamp"),
                p2=ConstParam(0),
                p1_processor=IdentityProcessor(),
                mem=arrival_row.mem,
                op=OP_MAX,
                strategy=ctx.strategy,
                sample_prob=ctx.task.sample_prob,
                priority=ctx.priority,
            )
            configs[2 * d + chain] = CmuTaskConfig(
                task_id=ctx.task_id,
                filter=ctx.task.filter,
                key_selector=ctx.sliced_key(2 * d + chain),
                p1=ResultParam(arrival_row.group.group_id, arrival_row.cmu.index),
                p2=ConstParam(0),
                p1_processor=InterarrivalProcessor(
                    time_field="timestamp",
                    bloom_group=bloom_row.group.group_id,
                    bloom_cmu=bloom_row.cmu.index,
                ),
                mem=interval_row.mem,
                op=OP_MAX,
                strategy=ctx.strategy,
                sample_prob=ctx.task.sample_prob,
                priority=ctx.priority,
            )
        return configs

    def query(self, flow: Tuple[int, ...]) -> int:
        """Max inter-arrival estimate: minimum over the chains' interval rows."""
        d = self.task.depth
        fields = self._fields_for(flow)
        values = [
            self.rows[2 * d + chain].value_for_fields(fields) for chain in range(d)
        ]
        return min(values) if values else 0
