"""Built-in algorithms implemented on CMUs (§4, Appendix D, Table 3).

Each algorithm knows (a) how to compile a measurement task into per-CMU
configurations over the rows the controller assigned to it, and (b) how to
turn register reads back into answers (the control-plane analysis half of
the decomposition in §3.1.2).

Registry:

========================  ===========  ==========  =============
algorithm                 attribute    rows        CMU Groups
========================  ===========  ==========  =============
``cms``                   frequency    d (def. 3)  1
``sumax_sum``             frequency    d           d (chained)
``mrac``                  frequency    1           1
``tower``                 frequency    3           1
``counter_braids``        frequency    2           2 (chained)
``hll``                   distinct     1           1
``beaucoup``              distinct     d           1
``linear_counting``       distinct     1           1
``bloom``                 existence    d           1
``sumax_max``             max          d           1
``max_interarrival``      max          3 x d       3 (chained)
========================  ===========  ==========  =============
"""

from repro.core.algorithms.base import ALGORITHM_REGISTRY, CmuAlgorithm, RowBinding, default_algorithm_for
from repro.core.algorithms.distinct import FlyMonBeauCoup, FlyMonHll, FlyMonLinearCounting
from repro.core.algorithms.existence import FlyMonBloom
from repro.core.algorithms.frequency import (
    FlyMonCms,
    FlyMonCounterBraids,
    FlyMonMrac,
    FlyMonSuMaxSum,
    FlyMonTower,
)
from repro.core.algorithms.interarrival import FlyMonMaxInterarrival
from repro.core.algorithms.maximum import FlyMonSuMaxMax
from repro.core.algorithms.similarity import FlyMonOddSketch

__all__ = [
    "ALGORITHM_REGISTRY",
    "CmuAlgorithm",
    "FlyMonBeauCoup",
    "FlyMonBloom",
    "FlyMonCms",
    "FlyMonCounterBraids",
    "FlyMonHll",
    "FlyMonLinearCounting",
    "FlyMonMaxInterarrival",
    "FlyMonMrac",
    "FlyMonOddSketch",
    "FlyMonSuMaxMax",
    "FlyMonSuMaxSum",
    "FlyMonTower",
    "RowBinding",
    "default_algorithm_for",
]
