"""FlyMon's control plane (§3.4).

:class:`FlyMonController` owns the deployed CMU Groups, compiles measurement
tasks into runtime rules, manages compressed keys and register memory, and
answers queries by reading data-plane state back through each task's
algorithm instance.

Placement strategy (§3.4): tasks are placed greedily, preferring group
windows that already have the needed compressed keys configured, then the
lowest-numbered window with enough free CMUs and memory.  Multi-group
algorithms (SuMax(Sum), Counter Braids, max inter-arrival) get windows of
pipeline-consecutive groups so their PHV result chaining follows stage
order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.algorithms import ALGORITHM_REGISTRY, default_algorithm_for
from repro.core.algorithms.base import CmuAlgorithm, PlanContext, RowBinding, RowSlot
from repro.core.cmu import Cmu
from repro.core.cmu_group import CmuGroup
from repro.core.compiler import compile_deployment
from repro.core.compression import KeyExhaustedError, KeyGrant
from repro.core.memory import (
    BuddyAllocator,
    MODE_ACCURATE,
    MemRange,
    OutOfMemoryError,
    round_memory,
)
from repro.core.placement import apply_placements, max_groups, plan_cross_stacking
from repro.core.task import (
    Attribute,
    MeasurementTask,
    next_task_id,
    reserve_task_id,
    task_from_dict,
    task_to_dict,
)
from repro.core.txn import ReconfigTransaction, in_transaction
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.runtime import InstallReport, RuntimeApi
from repro.telemetry import (
    EV_CHECKPOINT,
    EV_KEY_GRANT,
    EV_KEY_RELEASE,
    EV_PLACEMENT_DECISION,
    EV_RESTORE,
    EV_TASK_ADD,
    EV_TASK_FILTER_UPDATE,
    EV_TASK_REMOVE,
    EV_TASK_RESIZE,
    EV_TASK_SPLIT,
    RECORDER as _RECORDER,
    TELEMETRY as _TELEMETRY,
    update_resource_gauges,
)
from repro.traffic.flows import FlowKeyDef
from repro.traffic.trace import Trace


def _pin_copy(pin: Dict[str, object]) -> Dict[str, object]:
    """A detached JSON-safe copy of a placement pin (history records must
    not alias caller-owned structures)."""
    import copy

    return copy.deepcopy(pin)


class PlacementError(RuntimeError):
    """No group window can host the task (keys, CMUs, or memory exhausted).

    When raised from :meth:`FlyMonController.resize_task`'s fallback path,
    ``restored_handle`` is the original task's handle, valid again because
    the transaction rollback re-installed the original deployment.
    """

    restored_handle: Optional["TaskHandle"] = None


@dataclass
class TaskHandle:
    """A deployed task: its algorithm instance answers queries."""

    task_id: int
    task: MeasurementTask
    algorithm: CmuAlgorithm
    algorithm_name: str
    rows: List[RowBinding]
    install_report: InstallReport
    groups_used: Tuple[int, ...]
    _grants: List[Tuple[CmuGroup, KeyGrant]] = field(default_factory=list, repr=False)
    _mem: List[Tuple[Cmu, MemRange]] = field(default_factory=list, repr=False)

    @property
    def deployment_ms(self) -> float:
        return self.install_report.latency_ms

    @property
    def rules_installed(self) -> int:
        return self.install_report.rules_installed

    def read_rows(self):
        return self.algorithm.read_rows()

    def reset(self) -> None:
        self.algorithm.reset()


@dataclass
class SplitTaskHandle:
    """A task deployed as disjoint half-space subtasks (§3.1.1).

    Per-flow queries route to the subtask whose filter owns the flow; set
    queries union the subtasks' reports.
    """

    task: MeasurementTask
    subtasks: Tuple[TaskHandle, ...]

    def _owner(self, fields: Dict[str, int]) -> TaskHandle:
        for sub in self.subtasks:
            if sub.task.filter.matches(fields):
                return sub
        raise KeyError("flow matches no subtask filter")

    def query(self, flow: Tuple[int, ...]) -> float:
        from repro.core.algorithms.base import fields_from_flow

        fields = fields_from_flow(self.task.key, flow)
        return self._owner(fields).algorithm.query(flow)

    def heavy_hitters(self, candidates, threshold: int) -> set:
        return {flow for flow in candidates if self.query(flow) >= threshold}

    def reset(self) -> None:
        for sub in self.subtasks:
            sub.reset()


@dataclass(frozen=True)
class IntegrityReport:
    """Outcome of :meth:`FlyMonController.verify_integrity`."""

    checks: int
    problems: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        if self.ok:
            return f"integrity OK ({self.checks} checks)"
        lines = [f"integrity FAILED ({len(self.problems)} problem(s)):"]
        lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)


class FlyMonController:
    """Task and resource management over a set of CMU Groups."""

    def __init__(
        self,
        num_groups: int = 9,
        num_cmus: int = 3,
        compression_units: int = 3,
        register_size: int = 1 << 16,
        bucket_bits: int = 32,
        strategy: str = "tcam",
        memory_mode: str = MODE_ACCURATE,
        num_stages: int = 12,
        place_on_pipeline: bool = True,
        preconfigure_keys: Sequence[FlowKeyDef] = (),
        seed_base: int = 0xC0DE,
    ) -> None:
        #: JSON-safe constructor arguments, replayed by checkpoints.
        self._init_params: Dict[str, object] = {
            "num_groups": num_groups,
            "num_cmus": num_cmus,
            "compression_units": compression_units,
            "register_size": register_size,
            "bucket_bits": bucket_bits,
            "strategy": strategy,
            "memory_mode": memory_mode,
            "num_stages": num_stages,
            "place_on_pipeline": place_on_pipeline,
            "preconfigure_keys": [
                [list(part) for part in key.parts] for key in preconfigure_keys
            ],
            "seed_base": seed_base,
        }
        limit = max_groups(num_stages)
        if num_groups > limit:
            raise ValueError(
                f"{num_groups} groups exceed the {num_stages}-stage pipeline "
                f"budget of {limit}"
            )
        self.groups = [
            CmuGroup(
                g,
                num_cmus=num_cmus,
                compression_units=compression_units,
                register_size=register_size,
                bucket_bits=bucket_bits,
                seed_base=seed_base,
            )
            for g in range(num_groups)
        ]
        self.strategy = strategy
        self.memory_mode = memory_mode
        self.runtime = RuntimeApi()
        self.pipeline: Optional[Pipeline] = None
        if place_on_pipeline:
            self.pipeline = Pipeline(num_stages=num_stages)
            apply_placements(
                self.pipeline, self.groups, plan_cross_stacking(num_stages, num_groups)
            )
        self._allocators: Dict[Tuple[int, int], BuddyAllocator] = {
            (group.group_id, cmu.index): BuddyAllocator(
                cmu.register_size,
                owner=f"cmug{group.group_id}/cmu{cmu.index}",
            )
            for group in self.groups
            for cmu in group.cmus
        }
        self._handles: Dict[int, TaskHandle] = {}
        # Persistent shard worker pool (lazily created by the persistent
        # shard runtime); mutators flag it dirty so resident worker replicas
        # re-sync, by delta, before the next sharded run.
        self._shard_pool = None
        # Committed reconfiguration history (add/remove/filter updates, in
        # execution order).  Replaying it on a fresh controller reproduces
        # the exact placement -- groups, CMUs, memory bases -- of the live
        # one, which a final-tasks-only replay cannot guarantee after
        # removes/resizes left allocator holes.  Only committed operations
        # are recorded (rolled-back transactions never appear); operations
        # run inside a caller-owned transaction the controller cannot see
        # committing mark the history incomplete instead.
        self._history: List[Dict[str, object]] = []
        self._history_complete = True
        # Observers of committed operations (e.g. a service WAL appending
        # delta records); called with the same JSON-safe dict that lands in
        # the history, after it is recorded.
        self._op_listeners: List = []
        # Pre-configured compressed keys (§5's setting): masks are installed
        # at startup and held, so task deployments that use these keys never
        # pay a hash-mask rule at runtime.
        self._preconfigured: List[Tuple[CmuGroup, KeyGrant]] = []
        for group in self.groups:
            for key in preconfigure_keys:
                grant = group.keys.acquire(key.mask_spec())
                for unit_index, mask in grant.new_masks:
                    group.hash_units[unit_index].set_mask(mask)
                self._preconfigured.append((group, grant))

    # ------------------------------------------------------------------
    # Task management interfaces
    # ------------------------------------------------------------------

    def add_task(
        self,
        task: MeasurementTask,
        transaction: Optional[ReconfigTransaction] = None,
        _record: bool = True,
    ) -> TaskHandle:
        """Deploy a measurement task; returns a queryable handle.

        Raises :class:`PlacementError` if no window of groups can provide
        the compressed keys, conflict-free CMUs, and memory the task needs.
        Runs transactionally: a failure at any point (key grant, memory
        claim, rule install) rolls every prior step back, leaving key pools,
        allocators, and the runtime rule table bit-identical to the pre-call
        state.  Pass ``transaction`` to record into an enclosing compound
        operation's undo log instead of resolving locally.
        """
        txn, owned = in_transaction("add_task", transaction)
        try:
            with _RECORDER.span("ctl.add_task", cat="control"):
                handle = self._add_task_txn(task, txn)
        except BaseException as exc:
            if owned:
                txn.rollback(cause=exc)
            raise
        if owned:
            txn.commit()
            if _record:
                self._record_op("add", ref=handle.task_id, task=task_to_dict(task))
        elif _record:
            self._history_complete = False
        self._notify_pool()
        return handle

    def _add_task_txn(
        self, task: MeasurementTask, txn: ReconfigTransaction
    ) -> TaskHandle:
        algorithm_name = default_algorithm_for(task)
        algorithm = ALGORITHM_REGISTRY[algorithm_name](task)
        task_id = next_task_id()

        layout = algorithm.rows_layout()
        base_memory = round_memory(task.memory, self.memory_mode)
        row_memory = [
            round_memory(m, self.memory_mode)
            for m in algorithm.row_memory(base_memory)
        ]

        window, score, error = self._find_window(task, algorithm, layout, row_memory)
        if window is None:
            raise PlacementError(error or "no feasible placement")
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_PLACEMENT_DECISION,
                task_id=task_id,
                algorithm=algorithm_name,
                groups=[g.group_id for g in window],
                key_reuse_score=score,
                rows=len(row_memory),
            )

        self._snapshot_control_stores(txn)
        rows, grants = self._claim_window(
            task, algorithm, layout, row_memory, window, task_id=task_id
        )
        ctx = PlanContext(
            task=task,
            task_id=task_id,
            rows=rows,
            strategy=self.strategy,
            priority=task_id,
        )
        configs = algorithm.build_configs(ctx)
        rules = compile_deployment(ctx, configs)
        report = self.runtime.install(
            rules, deployment=f"task{task_id}", transaction=txn
        )

        bindings = [RowBinding(row.group, row.cmu, task_id) for row in rows]
        algorithm.bind(bindings)
        handle = TaskHandle(
            task_id=task_id,
            task=task,
            algorithm=algorithm,
            algorithm_name=algorithm_name,
            rows=bindings,
            install_report=report,
            groups_used=tuple(g.group_id for g in window),
            _grants=grants,
            _mem=[(row.cmu, row.mem) for row in rows],
        )
        self._handles[task_id] = handle
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_TASK_ADD,
                task_id=task_id,
                algorithm=algorithm_name,
                memory=base_memory,
                groups=list(handle.groups_used),
                rules=report.rules_installed,
                latency_ms=report.latency_ms,
            )
            _TELEMETRY.registry.counter("flymon_task_adds_total").inc()
            _TELEMETRY.registry.gauge("flymon_tasks_active").set(len(self._handles))
        return handle

    # ------------------------------------------------------------------
    # Pinned placement (fabric federation)
    # ------------------------------------------------------------------
    #
    # Hash-unit seeds depend on (group_id, unit index), TCAM priorities on
    # the task id, and sampling on both -- so two controllers produce
    # bit-identical registers for the same traffic only when a task lands at
    # *identical* coordinates on both.  ``export_placement`` serializes a
    # deployed task's coordinates; ``add_task_pinned`` reproduces them on
    # another controller exactly (or fails cleanly).

    def export_placement(self, handle: TaskHandle) -> Dict[str, object]:
        """JSON-safe placement coordinates of a deployed task.

        The returned pin -- task id, per-group key/param units with their
        hash masks, and per-row (cmu, base, length) claims -- is everything
        :meth:`add_task_pinned` needs to install the same task at the same
        coordinates on a different controller.
        """
        needs_param = handle.algorithm.needs_param_key()
        grants_by_group: Dict[int, List[KeyGrant]] = {}
        group_order: List[int] = []
        for group, grant in handle._grants:
            gid = group.group_id
            if gid not in grants_by_group:
                grants_by_group[gid] = []
                group_order.append(gid)
            grants_by_group[gid].append(grant)
        rows_by_group: Dict[int, List[Dict[str, int]]] = {
            gid: [] for gid in group_order
        }
        for binding, (cmu, mem) in zip(handle.rows, handle._mem):
            rows_by_group[binding.group.group_id].append(
                {"cmu": cmu.index, "base": mem.base, "length": mem.length}
            )
        groups = []
        for gid in group_order:
            committed = self.groups[gid].keys.committed_masks()
            key_grant = grants_by_group[gid][0]
            spec: Dict[str, object] = {
                "group_id": gid,
                "key_units": list(key_grant.selector.units),
                "key_masks": [
                    [unit, dict(committed[unit].as_dict())]
                    for unit in key_grant.selector.units
                ],
                "rows": rows_by_group[gid],
            }
            if needs_param:
                param_grant = grants_by_group[gid][1]
                spec["param_units"] = list(param_grant.selector.units)
                spec["param_masks"] = [
                    [unit, dict(committed[unit].as_dict())]
                    for unit in param_grant.selector.units
                ]
            groups.append(spec)
        return {"task_id": handle.task_id, "groups": groups}

    def add_task_pinned(
        self,
        task: MeasurementTask,
        pin: Dict[str, object],
        transaction: Optional[ReconfigTransaction] = None,
        _record: bool = True,
    ) -> TaskHandle:
        """Deploy ``task`` at the exact coordinates recorded in ``pin``.

        Transactional like :meth:`add_task`; raises :class:`PlacementError`
        if any pinned coordinate (group, hash unit, CMU, memory range) is
        occupied incompatibly.  The pinned task id is reserved against the
        process-wide counter so later plain adds cannot collide with it.
        """
        txn, owned = in_transaction("add_task_pinned", transaction)
        try:
            with _RECORDER.span("ctl.add_task_pinned", cat="control"):
                handle = self._add_task_pinned_txn(task, pin, txn)
        except BaseException as exc:
            if owned:
                txn.rollback(cause=exc)
            raise
        if owned:
            txn.commit()
            if _record:
                self._record_op(
                    "add_pinned",
                    ref=handle.task_id,
                    task=task_to_dict(task),
                    pin=_pin_copy(pin),
                )
        elif _record:
            self._history_complete = False
        self._notify_pool()
        return handle

    def _add_task_pinned_txn(
        self, task: MeasurementTask, pin: Dict[str, object], txn: ReconfigTransaction
    ) -> TaskHandle:
        algorithm_name = default_algorithm_for(task)
        algorithm = ALGORITHM_REGISTRY[algorithm_name](task)
        task_id = int(pin["task_id"])
        if task_id in self._handles:
            raise PlacementError(f"pinned task id {task_id} is already deployed")
        reserve_task_id(task_id)

        layout = algorithm.rows_layout()
        group_specs = list(pin["groups"])
        if len(group_specs) != len(layout):
            raise PlacementError(
                f"pin spans {len(group_specs)} group(s); "
                f"{algorithm_name} needs {len(layout)}"
            )

        self._snapshot_control_stores(txn)
        rows: List[RowSlot] = []
        grants: List[Tuple[CmuGroup, KeyGrant]] = []
        try:
            for gspec, rows_here in zip(group_specs, layout):
                gid = int(gspec["group_id"])
                if not 0 <= gid < len(self.groups):
                    raise PlacementError(f"pinned group {gid} does not exist")
                group = self.groups[gid]
                row_specs = list(gspec["rows"])
                if len(row_specs) != rows_here:
                    raise PlacementError(
                        f"group {gid}: pin carries {len(row_specs)} row(s), "
                        f"layout needs {rows_here}"
                    )
                key_grant = group.keys.acquire_pinned(
                    [int(u) for u in gspec["key_units"]],
                    {int(unit): mask for unit, mask in gspec["key_masks"]},
                )
                grants.append((group, key_grant))
                self._emit_key_grant(task_id, group, key_grant, role="key")
                param_grant = None
                if algorithm.needs_param_key():
                    param_grant = group.keys.acquire_pinned(
                        [int(u) for u in gspec["param_units"]],
                        {int(unit): mask for unit, mask in gspec["param_masks"]},
                    )
                    grants.append((group, param_grant))
                    self._emit_key_grant(task_id, group, param_grant, role="param")
                for rspec in row_specs:
                    cmu_index = int(rspec["cmu"])
                    if not 0 <= cmu_index < len(group.cmus):
                        raise PlacementError(
                            f"group {gid}: pinned CMU {cmu_index} does not exist"
                        )
                    cmu = group.cmus[cmu_index]
                    if cmu.has_conflict(task.filter) and task.sample_prob >= 1.0:
                        raise PlacementError(
                            f"cmug{gid}/cmu{cmu_index}: pinned filter "
                            "conflicts with a resident task"
                        )
                    allocator = self._allocators[(gid, cmu_index)]
                    mem = allocator.allocate_exact(
                        int(rspec["base"]), int(rspec["length"])
                    )
                    rows.append(
                        RowSlot(
                            group=group,
                            cmu=cmu,
                            mem=mem,
                            key_grant=key_grant,
                            param_grant=param_grant,
                        )
                    )
        except (KeyExhaustedError, OutOfMemoryError, ValueError) as exc:
            raise PlacementError(str(exc)) from exc

        ctx = PlanContext(
            task=task,
            task_id=task_id,
            rows=rows,
            strategy=self.strategy,
            priority=task_id,
        )
        configs = algorithm.build_configs(ctx)
        rules = compile_deployment(ctx, configs)
        report = self.runtime.install(
            rules, deployment=f"task{task_id}", transaction=txn
        )

        bindings = [RowBinding(row.group, row.cmu, task_id) for row in rows]
        algorithm.bind(bindings)
        handle = TaskHandle(
            task_id=task_id,
            task=task,
            algorithm=algorithm,
            algorithm_name=algorithm_name,
            rows=bindings,
            install_report=report,
            groups_used=tuple(int(g["group_id"]) for g in group_specs),
            _grants=grants,
            _mem=[(row.cmu, row.mem) for row in rows],
        )
        self._handles[task_id] = handle
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_TASK_ADD,
                task_id=task_id,
                algorithm=algorithm_name,
                memory=task.memory,
                groups=list(handle.groups_used),
                rules=report.rules_installed,
                latency_ms=report.latency_ms,
                pinned=True,
            )
            _TELEMETRY.registry.counter("flymon_task_adds_total").inc()
            _TELEMETRY.registry.gauge("flymon_tasks_active").set(len(self._handles))
        return handle

    def remove_task(
        self,
        handle: TaskHandle,
        transaction: Optional[ReconfigTransaction] = None,
        _record: bool = True,
    ) -> InstallReport:
        """Tear a task down and recycle its keys and memory.

        Transactional: a failure mid-teardown (or a rollback of the
        enclosing ``transaction``) re-installs the deployment and restores
        the key grants and memory claims, so the task is either fully
        deployed or fully recycled -- never half-removed.
        """
        txn, owned = in_transaction("remove_task", transaction)
        try:
            with _RECORDER.span(
                "ctl.remove_task", cat="control", task_id=handle.task_id
            ):
                report = self._remove_task_txn(handle, txn)
        except BaseException as exc:
            if owned:
                txn.rollback(cause=exc)
            raise
        if owned:
            txn.commit()
            if _record:
                self._record_op("remove", ref=handle.task_id)
        elif _record:
            self._history_complete = False
        self._notify_pool()
        return report

    def _record_op(self, op: str, **payload) -> None:
        entry = {"op": op, **payload}
        self._history.append(entry)
        for listener in self._op_listeners:
            listener(dict(entry))

    def add_op_listener(self, listener) -> None:
        """Call ``listener(entry)`` after every committed operation is
        recorded in the history.  ``entry`` is a fresh JSON-safe dict (the
        same shape :meth:`checkpoint` persists)."""
        self._op_listeners.append(listener)

    def remove_op_listener(self, listener) -> None:
        self._op_listeners.remove(listener)

    def _notify_pool(self) -> None:
        """Flag the persistent shard pool (if any) that rules changed.

        Cheap and safe to over-call: the pool re-diffs its replica mirror
        against the live groups on the next run, so a mutation that was
        rolled back simply produces an empty delta.
        """
        pool = self._shard_pool
        if pool is not None:
            pool.mark_dirty()

    def _remove_task_txn(
        self, handle: TaskHandle, txn: ReconfigTransaction
    ) -> InstallReport:
        if handle.task_id not in self._handles:
            raise KeyError(f"task {handle.task_id} is not deployed")
        self._snapshot_control_stores(txn)
        report = self.runtime.remove_deployment(
            f"task{handle.task_id}", transaction=txn
        )
        for cmu, mem in handle._mem:
            self._allocators[(cmu.group_id, cmu.index)].free(mem)
        for group, grant in handle._grants:
            group.keys.release(grant.selector)
            if _TELEMETRY.enabled:
                _TELEMETRY.events.emit(
                    EV_KEY_RELEASE,
                    task_id=handle.task_id,
                    group=group.group_id,
                    units=list(grant.selector.units),
                )
        del self._handles[handle.task_id]
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_TASK_REMOVE,
                task_id=handle.task_id,
                rules_removed=report.rules_installed,
                latency_ms=report.latency_ms,
            )
            _TELEMETRY.registry.counter("flymon_task_removes_total").inc()
            _TELEMETRY.registry.gauge("flymon_tasks_active").set(len(self._handles))
        return report

    def update_task_filter(
        self,
        handle: TaskHandle,
        new_filter,
        transaction: Optional[ReconfigTransaction] = None,
    ) -> TaskHandle:
        """Change a running task's filter in place (§3.4).

        One table rule per row; register state and memory are untouched, so
        the task keeps its accumulated measurements while its traffic
        selection changes.  Transactional: if any row's rule fails to apply,
        the rows already switched are rolled back to the old filter, so all
        CMUs stay consistent -- never a mix of old and new selection.
        """
        txn, owned = in_transaction("update_task_filter", transaction)
        try:
            with _RECORDER.span(
                "ctl.update_task_filter", cat="control", task_id=handle.task_id
            ):
                self._update_task_filter_txn(handle, new_filter, txn)
        except BaseException as exc:
            if owned:
                txn.rollback(cause=exc)
            raise
        if owned:
            txn.commit()
            self._record_op(
                "update_filter",
                ref=handle.task_id,
                filter=[
                    [name, value, plen]
                    for name, (value, plen) in new_filter.prefixes
                ],
            )
        else:
            self._history_complete = False
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_TASK_FILTER_UPDATE,
                task_id=handle.task_id,
                filter=new_filter.describe(),
                rules=len(handle.rows),
            )
        self._notify_pool()
        return handle

    def _update_task_filter_txn(
        self, handle: TaskHandle, new_filter, txn: ReconfigTransaction
    ) -> None:
        import dataclasses

        from repro.dataplane.runtime import RULE_KIND_TABLE, RuntimeRule

        old_task = handle.task
        old_filter = old_task.filter
        rules = [
            RuntimeRule(
                kind=RULE_KIND_TABLE,
                target=f"cmug{row.group.group_id}/cmu{row.cmu.index}/select_task",
                description=(
                    f"task {handle.task_id}: filter -> {new_filter.describe()}"
                ),
                apply=(
                    lambda cmu=row.cmu: cmu.update_task_filter(
                        handle.task_id, new_filter
                    )
                ),
                rollback=(
                    lambda cmu=row.cmu: cmu.update_task_filter(
                        handle.task_id, old_filter
                    )
                ),
            )
            for row in handle.rows
        ]

        def restore_handle_task() -> None:
            handle.task = old_task
            handle.algorithm.task = old_task

        txn.record(
            f"restore task {handle.task_id}'s filter on its handle",
            restore_handle_task,
        )
        self.runtime.install(rules, batch=True, transaction=txn)
        handle.task = dataclasses.replace(handle.task, filter=new_filter)
        handle.algorithm.task = handle.task

    def add_split_task(self, task: MeasurementTask, field: str = "src_ip") -> "SplitTaskHandle":
        """Deploy a task as two half-space subtasks (§3.1.1).

        Splitting a heavy task's filter halves each subtask's flow
        population (and collision probability) at the cost of extra CMUs.
        The returned handle routes per-flow queries to the matching subtask.
        Deployment is all-or-nothing: if the second subtask cannot be
        placed, the first is rolled back too.
        """
        import dataclasses

        low_filter, high_filter = task.filter.split(field)
        low_task = dataclasses.replace(task, filter=low_filter)
        high_task = dataclasses.replace(task, filter=high_filter)
        with _RECORDER.span("ctl.add_split_task", cat="control", field=field):
            with ReconfigTransaction("add_split_task") as txn:
                low = self.add_task(low_task, transaction=txn, _record=False)
                high = self.add_task(high_task, transaction=txn, _record=False)
        self._record_op("add", ref=low.task_id, task=task_to_dict(low_task))
        self._record_op("add", ref=high.task_id, task=task_to_dict(high_task))
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_TASK_SPLIT,
                field=field,
                subtask_ids=[low.task_id, high.task_id],
            )
        return SplitTaskHandle(task=task, subtasks=(low, high))

    def resize_task(self, handle: TaskHandle, new_memory: int) -> TaskHandle:
        """Reallocate a task with a new memory size.

        Preferred path (§6's strategy): deploy the new allocation first,
        divert traffic, then recycle the old one.  When the data plane
        cannot host both simultaneously (e.g. the resize stays within one
        fully-used group), fall back to remove-then-add inside one
        transaction; if even that fails the rollback re-installs the
        original deployment bit-identically -- ``handle`` stays valid, and
        the raised :class:`PlacementError` carries it as
        ``restored_handle``.  Measurement state starts fresh either way.
        """
        import dataclasses

        with _RECORDER.span(
            "ctl.resize_task", cat="control", task_id=handle.task_id,
            new_memory=new_memory,
        ):
            new_task = dataclasses.replace(handle.task, memory=new_memory)
            try:
                new_handle = self.add_task(new_task)
            except PlacementError:
                pass
            else:
                self.remove_task(handle)
                self._emit_resize(handle, new_handle, "make_before_break")
                return new_handle
            try:
                with ReconfigTransaction(
                    f"resize_task task{handle.task_id}"
                ) as txn:
                    self.remove_task(handle, transaction=txn, _record=False)
                    new_handle = self.add_task(
                        new_task, transaction=txn, _record=False
                    )
            except PlacementError as exc:
                # The rollback restored the original deployment (same task id,
                # same keys/memory/rules), so the caller's handle is live
                # again.
                exc.restored_handle = handle
                if _TELEMETRY.enabled:
                    _TELEMETRY.events.emit(
                        EV_TASK_RESIZE,
                        task_id=handle.task_id,
                        new_task_id=handle.task_id,
                        old_memory=handle.task.memory,
                        new_memory=new_memory,
                        strategy="restored",
                    )
                raise
            self._record_op("remove", ref=handle.task_id)
            self._record_op(
                "add", ref=new_handle.task_id, task=task_to_dict(new_task)
            )
            self._emit_resize(handle, new_handle, "remove_then_add")
            return new_handle

    def _emit_resize(
        self, old: TaskHandle, new: TaskHandle, strategy: str
    ) -> None:
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_TASK_RESIZE,
                task_id=old.task_id,
                new_task_id=new.task_id,
                old_memory=old.task.memory,
                new_memory=new.task.memory,
                strategy=strategy,
            )

    @property
    def tasks(self) -> List[TaskHandle]:
        return [self._handles[tid] for tid in sorted(self._handles)]

    # ------------------------------------------------------------------
    # Data-plane traversal
    # ------------------------------------------------------------------

    def process_packet(self, fields: Dict[str, int]) -> None:
        """Run one packet through every group in pipeline order.

        With a placed pipeline the packet traverses the MAU stages and each
        group executes at its operation stage (the hooks that
        :func:`apply_placements` attached); without one, groups run
        directly.  Either way the groups see the packet in pipeline order.
        """
        if self.pipeline is not None:
            self.pipeline.process(fields)
            return
        for group in self.groups:
            group.process(fields)

    def process_batch(self, batch) -> None:
        """Run a :class:`~repro.traffic.batch.PacketBatch` through every
        group in pipeline order -- the batched dual of :meth:`process_packet`,
        bit-identical to processing the batch's packets one at a time."""
        if self.pipeline is not None:
            self.pipeline.process_batch(batch)
            return
        for group in self.groups:
            group.process_batch(batch)

    def process_trace(
        self,
        trace: Trace,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Replay a trace through the datapath.

        ``batch_size=None`` keeps the scalar reference path (one dict per
        packet); an integer streams the trace as column-slice batches of that
        size through the vectorized engine instead.  ``workers > 1`` routes
        through :meth:`process_trace_sharded` (which implies batching).
        """
        if workers is not None and workers > 1:
            self.process_trace_sharded(trace, workers, batch_size=batch_size)
            return
        with _RECORDER.span(
            "ctl.trace", cat="dataplane", packets=len(trace),
            batched=batch_size is not None,
        ):
            if batch_size is not None:
                for batch in trace.iter_batches(batch_size):
                    self.process_batch(batch)
                return
            for fields in trace.iter_fields():
                self.process_packet(fields)

    def process_trace_sharded(
        self,
        trace: Trace,
        workers: int,
        batch_size: Optional[int] = None,
        backend: Optional[str] = None,
        collect_exports: bool = False,
        exact_exports: bool = False,
        runtime: Optional[str] = None,
    ):
        """Replay a trace through per-worker datapath replicas in parallel.

        Row shards run through cloned CMU groups; worker register state is
        merged back exactly (see :mod:`repro.dataplane.sharding`), so
        queries, digests, and register reads afterwards match a sequential
        replay bit for bit.  Returns the
        :class:`~repro.dataplane.sharding.ShardRunReport`.

        ``runtime`` (or ``FLYMON_SHARD_RUNTIME``) selects ``"ephemeral"``
        (fresh replicas per call) or ``"persistent"``, which keeps this
        controller's long-lived worker pool attached across calls and
        epochs (see :class:`~repro.dataplane.shard_pool.PersistentShardPool`).
        """
        from repro.dataplane.sharding import (
            RUNTIME_PERSISTENT,
            run_sharded,
            shard_runtime,
        )

        runtime = shard_runtime(runtime)
        pool = None
        if runtime == RUNTIME_PERSISTENT:
            pool = self.shard_pool(max(1, int(workers)), backend=backend)
        return run_sharded(
            self.groups,
            trace,
            workers,
            batch_size=batch_size,
            backend=backend,
            collect_exports=collect_exports,
            exact_exports=exact_exports,
            runtime=runtime,
            pool=pool,
        )

    def shard_pool(self, workers: int, backend: Optional[str] = None):
        """The controller's persistent shard pool, (re)created on demand.

        Returns ``None`` for the serial backend (which runs in-process and
        needs no pool).  An existing pool is replaced when the requested
        worker count or backend no longer matches.
        """
        from repro.dataplane.sharding import BACKEND_SERIAL, _resolve_backend
        from repro.dataplane.shard_pool import PersistentShardPool

        resolved = _resolve_backend(backend)
        if resolved == BACKEND_SERIAL:
            return None
        pool = self._shard_pool
        if pool is not None and (
            pool.closed or pool.workers != workers or pool.backend != resolved
        ):
            pool.close()
            pool = self._shard_pool = None
        if pool is None:
            pool = self._shard_pool = PersistentShardPool(
                self.groups, workers, backend=resolved
            )
        return pool

    def close_shard_pool(self) -> None:
        """Stop the persistent shard pool's workers, if one is attached."""
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None

    # ------------------------------------------------------------------
    # Resource management interfaces
    # ------------------------------------------------------------------

    def free_buckets(self) -> Dict[Tuple[int, int], int]:
        return {key: alloc.free_buckets for key, alloc in self._allocators.items()}

    def stats(self) -> Dict[str, object]:
        """Operator-facing resource snapshot: tasks, memory, keys, rules."""
        total_buckets = sum(
            cmu.register_size for g in self.groups for cmu in g.cmus
        )
        free = sum(self.free_buckets().values())
        key_usage = {
            group.group_id: {
                unit: (mask.describe() if mask else None)
                for unit, mask in group.keys.committed_masks().items()
            }
            for group in self.groups
        }
        return {
            "tasks": len(self._handles),
            "groups": len(self.groups),
            "cmus": sum(g.num_cmus for g in self.groups),
            "buckets_total": total_buckets,
            "buckets_free": free,
            "memory_utilization": 1.0 - free / total_buckets if total_buckets else 0.0,
            "largest_free_block": max(
                (a.largest_free_block() for a in self._allocators.values()),
                default=0,
            ),
            "compressed_keys": key_usage,
            "rules_installed": self.runtime.total_rules,
            "control_plane_ms": self.runtime.now_ms,
        }

    # ------------------------------------------------------------------
    # Integrity auditing and checkpoints
    # ------------------------------------------------------------------

    def verify_integrity(self) -> IntegrityReport:
        """Audit the cross-references between control-plane stores.

        Checks, per the invariants every (possibly rolled-back) operation
        must preserve:

        1. each buddy allocator's internal invariants (alignment, coverage,
           no overlap);
        2. handle memory claims <-> allocator occupancy, exactly;
        3. handle key grants (plus startup preconfiguration) <-> key-manager
           reference counts, exactly;
        4. deployed handles <-> runtime undo logs, exactly;
        5. handles' rows <-> CMU task tables (configs present, filters and
           memory ranges matching; no orphan tasks on any CMU).
        """
        problems: List[str] = []
        checks = 0

        for allocator in self._allocators.values():
            checks += 1
            problems.extend(allocator.integrity_problems())

        expected_mem: Dict[Tuple[int, int], Dict[int, int]] = {
            key: {} for key in self._allocators
        }
        for handle in self._handles.values():
            for cmu, mem in handle._mem:
                claims = expected_mem[(cmu.group_id, cmu.index)]
                if mem.base in claims:
                    problems.append(
                        f"task {handle.task_id}: duplicate claim at "
                        f"cmug{cmu.group_id}/cmu{cmu.index} base {mem.base}"
                    )
                claims[mem.base] = mem.length
        for key, allocator in self._allocators.items():
            checks += 1
            actual = {r.base: r.length for r in allocator.allocated_ranges}
            if actual != expected_mem[key]:
                problems.append(
                    f"{allocator.owner}: allocator occupancy {actual} != "
                    f"handle claims {expected_mem[key]}"
                )

        expected_refs: Dict[int, Dict[int, int]] = {
            group.group_id: {i: 0 for i in range(len(group.hash_units))}
            for group in self.groups
        }
        for group, grant in self._preconfigured:
            for unit in grant.selector.units:
                expected_refs[group.group_id][unit] += 1
        for handle in self._handles.values():
            for group, grant in handle._grants:
                for unit in grant.selector.units:
                    expected_refs[group.group_id][unit] += 1
        for group in self.groups:
            checks += 1
            actual_refs = group.keys.refcounts()
            if actual_refs != expected_refs[group.group_id]:
                problems.append(
                    f"cmug{group.group_id}: key refcounts {actual_refs} != "
                    f"expected {expected_refs[group.group_id]}"
                )
            for unit, mask in group.keys.committed_masks().items():
                if mask is not None and actual_refs.get(unit, 0) == 0:
                    problems.append(
                        f"cmug{group.group_id}/hash{unit}: committed mask "
                        f"{mask.describe()} with zero references"
                    )

        checks += 1
        expected_deployments = tuple(
            sorted(f"task{tid}" for tid in self._handles)
        )
        actual_deployments = self.runtime.deployments()
        if actual_deployments != expected_deployments:
            problems.append(
                f"runtime deployments {list(actual_deployments)} != deployed "
                f"tasks {list(expected_deployments)}"
            )

        hosted: Dict[Tuple[int, int], set] = {}
        for handle in self._handles.values():
            for cmu, mem in handle._mem:
                checks += 1
                hosted.setdefault((cmu.group_id, cmu.index), set()).add(
                    handle.task_id
                )
                if handle.task_id not in cmu.task_ids:
                    problems.append(
                        f"task {handle.task_id} missing from "
                        f"cmug{cmu.group_id}/cmu{cmu.index}'s task table"
                    )
                    continue
                config = cmu.config(handle.task_id)
                if (config.mem.base, config.mem.length) != (mem.base, mem.length):
                    problems.append(
                        f"task {handle.task_id} on cmug{cmu.group_id}/"
                        f"cmu{cmu.index}: installed range {config.mem} != "
                        f"claimed {mem}"
                    )
                if config.filter != handle.task.filter:
                    problems.append(
                        f"task {handle.task_id} on cmug{cmu.group_id}/"
                        f"cmu{cmu.index}: installed filter "
                        f"{config.filter.describe()} != handle's "
                        f"{handle.task.filter.describe()}"
                    )
        for group in self.groups:
            for cmu in group.cmus:
                checks += 1
                orphans = set(cmu.task_ids) - hosted.get(
                    (cmu.group_id, cmu.index), set()
                )
                if orphans:
                    problems.append(
                        f"cmug{cmu.group_id}/cmu{cmu.index}: orphan task(s) "
                        f"{sorted(orphans)} with no controller handle"
                    )

        return IntegrityReport(checks=checks, problems=tuple(problems))

    def control_digest(self) -> tuple:
        """A hashable summary of the full control+data-plane state (group
        digests plus runtime rule accounting); equal digests mean two
        controllers are bit-identical for measurement purposes."""
        return (
            tuple(group.control_digest() for group in self.groups),
            tuple(sorted(self._handles)),
            self.runtime.deployments(),
            self.runtime.total_rules,
        )

    def checkpoint(self) -> Dict[str, object]:
        """A JSON-safe snapshot: constructor parameters plus every deployed
        task, replayable by :meth:`from_checkpoint`.

        When the reconfiguration history is complete (no operations ran
        inside caller-owned transactions), it is included too:
        :meth:`from_checkpoint` then replays the full operation sequence,
        reproducing placement -- groups, CMUs, memory bases -- exactly,
        which sealed-state restores (see :mod:`repro.service.checkpoint`)
        depend on.
        """
        state = {
            "version": 1,
            "params": {
                key: (list(value) if isinstance(value, list) else value)
                for key, value in self._init_params.items()
            },
            "tasks": [task_to_dict(handle.task) for handle in self.tasks],
        }
        if self._history_complete:
            state["history"] = [dict(entry) for entry in self._history]
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(EV_CHECKPOINT, tasks=len(state["tasks"]))
        return state

    @classmethod
    def from_checkpoint(cls, state: Dict[str, object]) -> "FlyMonController":
        """Rebuild a controller from :meth:`checkpoint` output.

        With a recorded history the full add/remove/filter-update sequence
        is replayed, landing every surviving task at its exact live
        placement; otherwise deployments are replayed through
        :meth:`add_task` in checkpoint order.  Either way the replay is
        deterministic (task ids are fresh -- they come from the
        process-wide counter).
        """
        controller = cls.construct_from_params(state["params"])
        history = state.get("history")
        if history is not None:
            controller.replay_history(history)
        else:
            for task_data in state["tasks"]:
                controller.add_task(task_from_dict(task_data))
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(EV_RESTORE, tasks=len(state["tasks"]))
        return controller

    @classmethod
    def construct_from_params(
        cls, params: Dict[str, object]
    ) -> "FlyMonController":
        """Build an empty controller from checkpointed constructor params
        (the ``"params"`` section of :meth:`checkpoint` output)."""
        params = dict(params)
        params["preconfigure_keys"] = tuple(
            FlowKeyDef(tuple((name, bits) for name, bits in parts))
            for parts in params.get("preconfigure_keys", ())
        )
        return cls(**params)

    def replay_history(self, history) -> Dict[int, TaskHandle]:
        """Replay a recorded operation history onto this controller.

        Returns the ref map: original task id (as recorded in the history)
        -> the live handle it resolved to here.  Removed tasks are popped,
        so the returned map covers exactly the surviving deployments --
        WAL recovery uses it to re-key sealed-epoch records.
        """
        from repro.core.task import TaskFilter

        refs: Dict[int, TaskHandle] = {}
        for entry in history:
            op = entry["op"]
            if op == "add":
                refs[entry["ref"]] = self.add_task(
                    task_from_dict(entry["task"])
                )
            elif op == "add_pinned":
                refs[entry["ref"]] = self.add_task_pinned(
                    task_from_dict(entry["task"]), entry["pin"]
                )
            elif op == "remove":
                self.remove_task(refs.pop(entry["ref"]))
            elif op == "update_filter":
                self.update_task_filter(
                    refs[entry["ref"]],
                    TaskFilter(
                        tuple(
                            (name, (value, plen))
                            for name, value, plen in entry["filter"]
                        )
                    ),
                )
            else:
                raise ValueError(f"unknown history op {op!r}")
        return refs

    def utilization(self) -> Dict[str, float]:
        if self.pipeline is None:
            return {}
        return self.pipeline.utilization()

    def record_telemetry(self, scope: str = "pipeline") -> Dict[str, float]:
        """Publish live pipeline utilization as telemetry gauges."""
        utilization = self.utilization()
        if utilization:
            update_resource_gauges(utilization, _TELEMETRY.registry, scope=scope)
        _TELEMETRY.registry.gauge("flymon_tasks_active").set(len(self._handles))
        return utilization

    # ------------------------------------------------------------------
    # Placement internals
    # ------------------------------------------------------------------

    def _find_window(
        self,
        task: MeasurementTask,
        algorithm: CmuAlgorithm,
        layout: Sequence[int],
        row_memory: Sequence[int],
    ) -> Tuple[Optional[List[CmuGroup]], int, Optional[str]]:
        """Best window of ``len(layout)`` consecutive groups for the task.

        Windows able to host the task are ranked by how many of the needed
        hash masks they already have (the greedy reuse strategy of §3.4).
        Returns ``(window, key_reuse_score, error)``.
        """
        span = len(layout)
        if span > len(self.groups):
            return (
                None,
                -1,
                f"task needs {span} groups; controller has {len(self.groups)}",
            )
        best: Tuple[int, Optional[List[CmuGroup]]] = (-1, None)
        last_error = None
        for start in range(len(self.groups) - span + 1):
            window = self.groups[start : start + span]
            feasible, error = self._window_feasible(
                task, algorithm, layout, row_memory, window
            )
            if not feasible:
                last_error = error
                continue
            score = sum(
                group.keys.mask_overlap(task.key.mask_spec()) for group in window
            )
            if score > best[0]:
                best = (score, window)
        return best[1], best[0], last_error

    def _window_feasible(
        self,
        task: MeasurementTask,
        algorithm: CmuAlgorithm,
        layout: Sequence[int],
        row_memory: Sequence[int],
        window: Sequence[CmuGroup],
    ) -> Tuple[bool, Optional[str]]:
        row_index = 0
        for group, rows_here in zip(window, layout):
            candidates = self._placeable_cmus(group, task, rows_here, row_memory, row_index)
            if candidates is None:
                return False, (
                    f"group {group.group_id}: not enough conflict-free CMUs/memory"
                )
            row_index += rows_here
        return True, None

    def _placeable_cmus(
        self,
        group: CmuGroup,
        task: MeasurementTask,
        rows_here: int,
        row_memory: Sequence[int],
        row_index: int,
    ) -> Optional[List[Cmu]]:
        """Distinct CMUs in ``group`` able to host rows ``row_index ..``."""
        chosen: List[Cmu] = []
        needed = list(row_memory[row_index : row_index + rows_here])
        for cmu in group.cmus:
            if len(chosen) == len(needed):
                break
            if cmu.has_conflict(task.filter) and task.sample_prob >= 1.0:
                continue
            allocator = self._allocators[(group.group_id, cmu.index)]
            if allocator.can_allocate(needed[len(chosen)]):
                chosen.append(cmu)
        return chosen if len(chosen) == rows_here else None

    def _claim_window(
        self,
        task: MeasurementTask,
        algorithm: CmuAlgorithm,
        layout: Sequence[int],
        row_memory: Sequence[int],
        window: Sequence[CmuGroup],
        task_id: Optional[int] = None,
    ) -> Tuple[List[RowSlot], List[Tuple[CmuGroup, KeyGrant]]]:
        rows: List[RowSlot] = []
        grants: List[Tuple[CmuGroup, KeyGrant]] = []
        param_key = (
            task.attribute.param if algorithm.needs_param_key() else None
        )
        row_index = 0
        try:
            for group, rows_here in zip(window, layout):
                key_grant = group.keys.acquire(task.key.mask_spec())
                grants.append((group, key_grant))
                self._emit_key_grant(task_id, group, key_grant, role="key")
                param_grant = None
                if param_key is not None:
                    if not isinstance(param_key, FlowKeyDef):
                        raise TypeError("parameter key must be a FlowKeyDef")
                    param_grant = group.keys.acquire(param_key.mask_spec())
                    grants.append((group, param_grant))
                    self._emit_key_grant(task_id, group, param_grant, role="param")
                cmus = self._placeable_cmus(group, task, rows_here, row_memory, row_index)
                if cmus is None:
                    raise PlacementError(
                        f"group {group.group_id} became infeasible during claim"
                    )
                for offset, cmu in enumerate(cmus):
                    allocator = self._allocators[(group.group_id, cmu.index)]
                    mem = allocator.allocate(row_memory[row_index + offset])
                    rows.append(
                        RowSlot(
                            group=group,
                            cmu=cmu,
                            mem=mem,
                            key_grant=key_grant,
                            param_grant=param_grant,
                        )
                    )
                row_index += rows_here
        except (KeyExhaustedError, OutOfMemoryError) as exc:
            # Partial claims are rolled back by the enclosing transaction's
            # control-store snapshots; here we only translate the failure.
            raise PlacementError(str(exc)) from exc
        return rows, grants

    def _snapshot_control_stores(self, txn: ReconfigTransaction) -> None:
        """Record restorable snapshots of every control-plane store.

        Recorded before any mutation, so during rollback they run *after*
        the data-plane inverses (rule reverts) and reset the key pools,
        allocator occupancy, and handle table to the pre-call state.
        """
        handles = dict(self._handles)

        def restore_handles() -> None:
            self._handles = dict(handles)

        txn.record("restore the task-handle table", restore_handles)
        for group in self.groups:
            txn.snapshot(f"restore key pool of cmug{group.group_id}", group.keys)
        for allocator in self._allocators.values():
            txn.snapshot(f"restore allocator {allocator.owner}", allocator)

    @staticmethod
    def _emit_key_grant(
        task_id: Optional[int], group: CmuGroup, grant: KeyGrant, role: str
    ) -> None:
        if _TELEMETRY.enabled:
            _TELEMETRY.events.emit(
                EV_KEY_GRANT,
                task_id=task_id,
                group=group.group_id,
                role=role,
                units=list(grant.selector.units),
                reused=grant.reused,
                new_masks=len(grant.new_masks),
            )
