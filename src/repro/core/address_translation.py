"""Address translation: dynamic memory on a fixed register (§3.3, Fig. 9, 11).

The selected key is a full-range address in ``[0, m)``; the preparation
stage narrows it into the task's partition ``[base, base + length)``.  Both
hardware strategies are modeled, with their distinct resource costs:

* **Shift-based** -- right-shift the address by ``log2(m / length)`` and add
  the base.  Functionally free of TCAM, but either costs an extra MAU stage
  or pre-computes every possible shifted copy in the initialization stage at
  the price of PHV bits (Fig. 11b).
* **TCAM-based** -- range-match the address and add a per-source-chunk
  offset so ``addr' = base + (addr mod length)``; needs ``m/length - 1``
  TCAM entries per task plus a shared default (Fig. 11a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.memory import MemRange

STRATEGY_SHIFT = "shift"
STRATEGY_TCAM = "tcam"


def _log2(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class ShiftTranslation:
    """Shift-based translation: high address bits select within the range."""

    register_size: int
    mem: MemRange

    @property
    def shift(self) -> int:
        return _log2(self.register_size) - _log2(self.mem.length)

    def translate(self, address: int) -> int:
        address &= self.register_size - 1
        return self.mem.base + (address >> self.shift)

    def translate_batch(self, addresses):
        """Columnar :meth:`translate` over an int64 address array."""
        return self.mem.base + ((addresses & (self.register_size - 1)) >> self.shift)

    def table_rules(self) -> int:
        """Runtime rules: one shift rule + one base-add rule."""
        return 2

    @staticmethod
    def phv_bits_for(num_partitions: int, address_bits: int = 32) -> int:
        """PHV cost of the single-stage variant (Fig. 11b): pre-computing a
        shifted copy of the address for every possible partition level."""
        if num_partitions <= 0 or num_partitions & (num_partitions - 1):
            raise ValueError("num_partitions must be a positive power of two")
        levels = _log2(num_partitions) + 1  # shifts 0 .. log2(p)
        return levels * address_bits


@dataclass(frozen=True)
class TcamTranslation:
    """TCAM-based translation: range-match chunks, add per-chunk offsets."""

    register_size: int
    mem: MemRange

    def translate(self, address: int) -> int:
        address &= self.register_size - 1
        return self.mem.base + (address % self.mem.length)

    def translate_batch(self, addresses):
        """Columnar :meth:`translate` over an int64 address array."""
        return self.mem.base + ((addresses & (self.register_size - 1)) % self.mem.length)

    def tcam_entries(self) -> int:
        """Physical TCAM entries this task's translation occupies.

        Each aligned ``length``-sized chunk of ``[0, m)`` other than the
        target chunk needs one range entry mapping it onto the target
        (power-of-two aligned ranges expand to exactly one ternary entry).
        """
        chunks = self.register_size // self.mem.length
        return chunks - 1

    def entry_plan(self) -> List[Tuple[int, int, int]]:
        """The ``(chunk_lo, chunk_hi_inclusive, offset_mod_m)`` entries."""
        out = []
        length = self.mem.length
        for chunk_base in range(0, self.register_size, length):
            if chunk_base == self.mem.base:
                continue
            offset = (self.mem.base - chunk_base) % self.register_size
            out.append((chunk_base, chunk_base + length - 1, offset))
        return out

    def table_rules(self) -> int:
        return self.tcam_entries()


def make_translation(strategy: str, register_size: int, mem: MemRange):
    if strategy == STRATEGY_SHIFT:
        return ShiftTranslation(register_size, mem)
    if strategy == STRATEGY_TCAM:
        return TcamTranslation(register_size, mem)
    raise ValueError(f"unknown address-translation strategy {strategy!r}")


def tcam_usage_fraction(
    num_partitions: int,
    tasks_per_cmu: int = None,
    stage_tcam_entries: int = 24 * 512,
) -> float:
    """Fraction of one MAU stage's TCAM used by TCAM-based translation when a
    CMU is split into ``num_partitions`` partitions (Fig. 11a).

    Worst case: every partition hosts a task of the minimum size, each
    needing ``num_partitions - 1`` entries.
    """
    if tasks_per_cmu is None:
        tasks_per_cmu = num_partitions
    entries = tasks_per_cmu * (num_partitions - 1) + 1  # + shared default
    return entries / stage_tcam_entries
