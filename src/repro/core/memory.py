"""Dynamic memory management: power-of-two partitions of a fixed register.

The register's size is fixed at compile time; the control plane carves it
into aligned power-of-two ranges per task (§3.3).  A classic buddy allocator
gives exactly the semantics the paper describes: only ``2^n`` partition
sizes, down to ``register_size / max_partitions`` (32 partitions -> 5 levels
of memory sizes), with coalescing on free.

Two allocation modes (§3.4): *accurate* rounds the request up to the next
power of two (never less memory than asked); *efficient* rounds to the
nearest power of two (closest fit, possibly smaller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults import FAULTS, SITE_ALLOC_EXHAUSTED
from repro.telemetry import (
    EV_MEM_ALLOC,
    EV_MEM_FREE,
    EV_MEM_SPLIT,
    TELEMETRY as _TELEMETRY,
)

MODE_ACCURATE = "accurate"
MODE_EFFICIENT = "efficient"

#: The paper's evaluated partition bound: 32 partitions per CMU (§5.1).
DEFAULT_MAX_PARTITIONS = 32


@dataclass(frozen=True)
class MemRange:
    """An aligned power-of-two slice ``[base, base + length)`` of a register."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0 or self.length & (self.length - 1):
            raise ValueError("length must be a positive power of two")
        if self.base % self.length:
            raise ValueError("range must be aligned to its length")

    @property
    def end(self) -> int:
        return self.base + self.length

    def contains(self, index: int) -> bool:
        return self.base <= index < self.end


def round_memory(requested: int, mode: str = MODE_ACCURATE) -> int:
    """Quantize a requested bucket count to a power of two per the mode."""
    if requested <= 0:
        raise ValueError("requested memory must be positive")
    if mode not in (MODE_ACCURATE, MODE_EFFICIENT):
        raise ValueError(f"unknown allocation mode {mode!r}")
    if requested & (requested - 1) == 0:
        return requested
    above = 1 << requested.bit_length()
    below = above >> 1
    if mode == MODE_ACCURATE:
        return above
    return above if (above - requested) < (requested - below) else below


class OutOfMemoryError(RuntimeError):
    """No free range of the requested size exists in the register."""


class BuddyAllocator:
    """Buddy allocation over ``size`` buckets with a minimum block size.

    ``owner`` is a purely descriptive label (e.g. ``"cmug0/cmu1"``) attached
    to the telemetry events this allocator emits while telemetry is enabled.
    """

    def __init__(
        self,
        size: int,
        max_partitions: int = DEFAULT_MAX_PARTITIONS,
        owner: Optional[str] = None,
    ) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("size must be a positive power of two")
        if max_partitions <= 0 or max_partitions & (max_partitions - 1):
            raise ValueError("max_partitions must be a positive power of two")
        if max_partitions > size:
            raise ValueError("max_partitions cannot exceed size")
        self.size = size
        self.owner = owner
        self.min_block = size // max_partitions
        # free lists per block length
        self._free: Dict[int, List[int]] = {size: [0]}
        self._allocated: Dict[int, int] = {}  # base -> length

    @property
    def allocated_ranges(self) -> List[MemRange]:
        return [MemRange(b, l) for b, l in sorted(self._allocated.items())]

    @property
    def free_buckets(self) -> int:
        return self.size - sum(self._allocated.values())

    def largest_free_block(self) -> int:
        sizes = [length for length, bases in self._free.items() if bases]
        return max(sizes) if sizes else 0

    def can_allocate(self, length: int) -> bool:
        length = self._validate_length(length)
        return self.largest_free_block() >= length

    def allocate(self, length: int) -> MemRange:
        """Reserve an aligned block of exactly ``length`` buckets."""
        if FAULTS.armed and FAULTS.trip(
            SITE_ALLOC_EXHAUSTED, owner=self.owner, length=length
        ):
            raise OutOfMemoryError(
                f"injected allocator exhaustion ({self.owner or 'register'})"
            )
        length = self._validate_length(length)
        block = length
        while block <= self.size and not self._free.get(block):
            block <<= 1
        if block > self.size:
            raise OutOfMemoryError(
                f"no free block of {length} buckets (free: {self.free_buckets})"
            )
        base = self._free[block].pop()
        telemetry_on = _TELEMETRY.enabled
        while block > length:
            block >>= 1
            # Keep the low half, release the buddy (high half).
            self._free.setdefault(block, []).append(base + block)
            if telemetry_on:
                _TELEMETRY.registry.counter("flymon_mem_splits_total").inc()
                _TELEMETRY.events.emit(
                    EV_MEM_SPLIT,
                    owner=self.owner,
                    base=base,
                    block=block,
                    buddy=base + block,
                )
        self._allocated[base] = length
        if telemetry_on:
            _TELEMETRY.registry.counter("flymon_mem_allocs_total").inc()
            _TELEMETRY.events.emit(
                EV_MEM_ALLOC,
                owner=self.owner,
                base=base,
                length=length,
                free_buckets=self.free_buckets,
            )
        return MemRange(base, length)

    def allocate_exact(self, base: int, length: int) -> MemRange:
        """Reserve the specific aligned block ``[base, base + length)``.

        Pinned placement (fabric federation) needs byte-identical layouts
        across switches, so the allocator must honour an externally chosen
        address rather than picking its own.  The target must lie entirely
        inside a currently-free block; the free block is split directionally
        so the halves *not* containing the pin are released back to the free
        lists (keeping buddy coalescing sound).
        """
        if FAULTS.armed and FAULTS.trip(
            SITE_ALLOC_EXHAUSTED, owner=self.owner, length=length
        ):
            raise OutOfMemoryError(
                f"injected allocator exhaustion ({self.owner or 'register'})"
            )
        length = self._validate_length(length)
        if base % length:
            raise ValueError(f"pinned base {base} misaligned for length {length}")
        if base + length > self.size:
            raise ValueError(
                f"pinned block {base}+{length} exceeds register size {self.size}"
            )
        found = None
        for blk_len, bases in self._free.items():
            if blk_len < length:
                continue
            for blk_base in bases:
                if blk_base <= base and base + length <= blk_base + blk_len:
                    found = (blk_base, blk_len)
                    break
            if found:
                break
        if found is None:
            raise OutOfMemoryError(
                f"pinned block {base}+{length} is not free "
                f"(free: {self.free_buckets})"
            )
        blk_base, blk_len = found
        self._free[blk_len].remove(blk_base)
        telemetry_on = _TELEMETRY.enabled
        while blk_len > length:
            blk_len >>= 1
            half = blk_base + blk_len
            if base >= half:
                # Pin lives in the high half: release the low, descend high.
                self._free.setdefault(blk_len, []).append(blk_base)
                blk_base = half
            else:
                self._free.setdefault(blk_len, []).append(half)
            if telemetry_on:
                _TELEMETRY.registry.counter("flymon_mem_splits_total").inc()
                _TELEMETRY.events.emit(
                    EV_MEM_SPLIT,
                    owner=self.owner,
                    base=blk_base,
                    block=blk_len,
                    buddy=half,
                )
        self._allocated[base] = length
        if telemetry_on:
            _TELEMETRY.registry.counter("flymon_mem_allocs_total").inc()
            _TELEMETRY.events.emit(
                EV_MEM_ALLOC,
                owner=self.owner,
                base=base,
                length=length,
                free_buckets=self.free_buckets,
            )
        return MemRange(base, length)

    def free(self, mem: MemRange) -> None:
        """Release a block and coalesce buddies."""
        if self._allocated.get(mem.base) != mem.length:
            raise ValueError(f"range {mem} is not currently allocated")
        del self._allocated[mem.base]
        base, length = mem.base, mem.length
        while length < self.size:
            buddy = base ^ length
            bucket = self._free.get(length, [])
            if buddy in bucket:
                bucket.remove(buddy)
                base = min(base, buddy)
                length <<= 1
            else:
                break
        self._free.setdefault(length, []).append(base)
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter("flymon_mem_frees_total").inc()
            _TELEMETRY.events.emit(
                EV_MEM_FREE,
                owner=self.owner,
                base=mem.base,
                length=mem.length,
                coalesced_block=length,
                free_buckets=self.free_buckets,
            )

    # -- rollback / integrity support ---------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A restorable copy of the allocator's free lists and occupancy."""
        return {
            "free": {length: list(bases) for length, bases in self._free.items()},
            "allocated": dict(self._allocated),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Return to a :meth:`snapshot` (transaction rollback)."""
        self._free = {length: list(bases) for length, bases in state["free"].items()}
        self._allocated = dict(state["allocated"])

    def integrity_problems(self) -> List[str]:
        """Invariant violations: overlap, misalignment, or lost buckets."""
        problems: List[str] = []
        blocks: List[tuple] = []
        for length, bases in self._free.items():
            for base in bases:
                blocks.append((base, length, "free"))
        for base, length in self._allocated.items():
            blocks.append((base, length, "allocated"))
        covered = 0
        for base, length, kind in blocks:
            if length <= 0 or length & (length - 1):
                problems.append(f"{kind} block {base}+{length}: not a power of two")
            elif base % length:
                problems.append(f"{kind} block {base}+{length}: misaligned")
            covered += length
        if covered != self.size:
            problems.append(
                f"blocks cover {covered} of {self.size} buckets "
                "(lost or double-counted memory)"
            )
        blocks.sort()
        for (b1, l1, k1), (b2, _l2, k2) in zip(blocks, blocks[1:]):
            if b1 + l1 > b2:
                problems.append(
                    f"{k1} block {b1}+{l1} overlaps {k2} block at {b2}"
                )
        if self.owner:
            problems = [f"{self.owner}: {p}" for p in problems]
        return problems

    def _validate_length(self, length: int) -> int:
        if length <= 0 or length & (length - 1):
            raise ValueError("allocation length must be a positive power of two")
        if length > self.size:
            raise ValueError(f"allocation of {length} exceeds register size {self.size}")
        return max(length, self.min_block)
