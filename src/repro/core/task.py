"""Measurement task abstraction (§2.1, §3.4).

A task is a *filter* (which packets), a *key* (how to group them into
flows), an *attribute with parameters* (what to measure per flow), and a
*memory size* (how many buckets to allocate).  FlyMon's control plane
compiles this declarative definition into runtime rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.dataplane.tables import TernaryField
from repro.traffic.flows import FIELD_WIDTHS, FlowKeyDef


class Attribute(Enum):
    """The four flow attributes FlyMon currently enables (Table 1)."""

    FREQUENCY = "frequency"
    DISTINCT = "distinct"
    EXISTENCE = "existence"
    MAX = "max"


#: A parameter is a constant, a metadata field name, or a flow-key definition
#: (for Distinct/Existence attributes whose parameter is itself a key).
ParamValue = Union[int, str, FlowKeyDef]


@dataclass(frozen=True)
class AttributeSpec:
    """An attribute plus its parameter, e.g. ``Distinct(SrcIP)`` or
    ``Frequency(1)`` / ``Frequency('pkt_bytes')`` / ``Max('queue_length')``."""

    kind: Attribute
    param: ParamValue = 1

    @staticmethod
    def frequency(param: Union[int, str] = 1) -> "AttributeSpec":
        return AttributeSpec(Attribute.FREQUENCY, param)

    @staticmethod
    def distinct(param: FlowKeyDef) -> "AttributeSpec":
        return AttributeSpec(Attribute.DISTINCT, param)

    @staticmethod
    def existence(param: Optional[FlowKeyDef] = None) -> "AttributeSpec":
        return AttributeSpec(Attribute.EXISTENCE, param if param is not None else 1)

    @staticmethod
    def maximum(param: str) -> "AttributeSpec":
        return AttributeSpec(Attribute.MAX, param)

    def describe(self) -> str:
        param = self.param.describe() if isinstance(self.param, FlowKeyDef) else self.param
        return f"{self.kind.value}({param})"


@dataclass(frozen=True)
class TaskFilter:
    """Which packets a task observes: per-field prefix/exact constraints.

    ``prefixes`` maps a field name to ``(value, prefix_len)``.  An empty
    filter matches every packet (e.g. the single-key cardinality task).
    """

    prefixes: Tuple[Tuple[str, Tuple[int, int]], ...] = ()

    @staticmethod
    def of(**constraints) -> "TaskFilter":
        """``TaskFilter.of(src_ip=(0x0A000000, 8), dst_port=(80, 16))``."""
        items = []
        for name, (value, plen) in sorted(constraints.items()):
            width = FIELD_WIDTHS.get(name)
            if width is None:
                raise KeyError(f"unknown filter field {name!r}")
            if not 0 <= plen <= width:
                raise ValueError(f"prefix length {plen} invalid for {name!r}")
            mask = 0 if plen == 0 else ((1 << plen) - 1) << (width - plen)
            items.append((name, (value & mask, plen)))
        return TaskFilter(tuple(items))

    @staticmethod
    def match_all() -> "TaskFilter":
        return TaskFilter(())

    def matches(self, fields: Mapping[str, int]) -> bool:
        for name, (value, plen) in self.prefixes:
            width = FIELD_WIDTHS[name]
            mask = 0 if plen == 0 else ((1 << plen) - 1) << (width - plen)
            if (int(fields.get(name, 0)) & mask) != value:
                return False
        return True

    def to_ternary(self) -> Dict[str, TernaryField]:
        """Match fields for the task-selection TCAM entry."""
        out = {}
        for name, (value, plen) in self.prefixes:
            out[name] = TernaryField.prefix(value, plen, FIELD_WIDTHS[name])
        return out

    def intersects(self, other: "TaskFilter") -> bool:
        """Whether some packet can match both filters.

        Two prefix constraints on the same field intersect iff one prefix
        contains the other; fields constrained by only one filter never
        exclude intersection.  Tasks with intersecting filters cannot share
        a CMU (§3.3 limitation: one register access per packet).
        """
        mine = dict(self.prefixes)
        for name, (value, plen) in other.prefixes:
            if name not in mine:
                continue
            my_value, my_plen = mine[name]
            width = FIELD_WIDTHS[name]
            common = min(plen, my_plen)
            mask = 0 if common == 0 else ((1 << common) - 1) << (width - common)
            if (value & mask) != (my_value & mask):
                return False
        return True

    def describe(self) -> str:
        if not self.prefixes:
            return "*"
        parts = []
        for name, (value, plen) in self.prefixes:
            parts.append(f"{name}={value:#x}/{plen}")
        return ",".join(parts)

    def split(self, field: str = "src_ip") -> Tuple["TaskFilter", "TaskFilter"]:
        """Split into two disjoint half-space subfilters on ``field``.

        The §3.1.1 subtask trick: a heavy task with ``filter[10.0.0.0/8]``
        becomes subtasks on 10.0.0.0/9 and 10.128.0.0/9, halving each
        subtask's flow population (and its collision probability) at the
        cost of a second CMU.  A field not yet constrained splits the full
        space.
        """
        width = FIELD_WIDTHS.get(field)
        if width is None:
            raise KeyError(f"unknown filter field {field!r}")
        existing = dict(self.prefixes)
        value, plen = existing.get(field, (0, 0))
        if plen >= width:
            raise ValueError(f"cannot split an exact match on {field!r}")
        halves = []
        for bit in (0, 1):
            child = dict(existing)
            child[field] = (value | (bit << (width - plen - 1)), plen + 1)
            halves.append(TaskFilter.of(**child))
        return halves[0], halves[1]


_task_ids = itertools.count(1)


@dataclass(frozen=True)
class MeasurementTask:
    """A complete task definition handed to the control plane.

    ``memory`` is the requested number of buckets (per row); ``depth`` is
    the number of rows (``d``); ``algorithm`` optionally forces a built-in
    algorithm (otherwise the compiler picks the default for the attribute).
    ``sample_prob`` enables probabilistic execution (§5.3 / Fig. 14b).
    """

    key: FlowKeyDef
    attribute: AttributeSpec
    memory: int
    filter: TaskFilter = field(default_factory=TaskFilter.match_all)
    depth: int = 3
    algorithm: Optional[str] = None
    sample_prob: float = 1.0
    #: Detection threshold for alarm-style tasks (BeauCoup's coupon tuning,
    #: heavy-hitter reporting).
    threshold: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.memory <= 0:
            raise ValueError("memory (number of buckets) must be positive")
        if self.depth <= 0:
            raise ValueError("depth must be positive")
        if not 0.0 < self.sample_prob <= 1.0:
            raise ValueError("sample_prob must be in (0, 1]")

    def describe(self) -> str:
        return (
            f"[{self.filter.describe()}] key={self.key.describe()} "
            f"attr={self.attribute.describe()} mem={self.memory}x{self.depth}"
        )


def next_task_id() -> int:
    """Process-wide unique task ids (stable ordering for table priorities)."""
    return next(_task_ids)


def reserve_task_id(task_id: int) -> None:
    """Advance the id counter past an externally assigned ``task_id``.

    Pinned installs (fabric federation, checkpoint replay) carry ids chosen
    by another controller; reserving them keeps later :func:`next_task_id`
    calls collision-free in this process.
    """
    global _task_ids
    current = next(_task_ids)
    _task_ids = itertools.count(max(current, task_id + 1))


# -- serialization (controller checkpoints) ----------------------------------


def _param_to_dict(param: ParamValue):
    if isinstance(param, FlowKeyDef):
        return {"key": [list(p) for p in param.parts]}
    return param


def _param_from_dict(data) -> ParamValue:
    if isinstance(data, dict) and "key" in data:
        return FlowKeyDef(tuple((name, bits) for name, bits in data["key"]))
    return data


def task_to_dict(task: MeasurementTask) -> Dict:
    """A JSON-safe description of ``task``, invertible by
    :func:`task_from_dict` -- the unit of a controller checkpoint."""
    return {
        "key": [list(p) for p in task.key.parts],
        "attribute": {
            "kind": task.attribute.kind.value,
            "param": _param_to_dict(task.attribute.param),
        },
        "memory": task.memory,
        "filter": [
            [name, value, plen] for name, (value, plen) in task.filter.prefixes
        ],
        "depth": task.depth,
        "algorithm": task.algorithm,
        "sample_prob": task.sample_prob,
        "threshold": task.threshold,
        "name": task.name,
    }


def task_from_dict(data: Mapping) -> MeasurementTask:
    """Rebuild a :class:`MeasurementTask` from :func:`task_to_dict` output."""
    return MeasurementTask(
        key=FlowKeyDef(tuple((name, bits) for name, bits in data["key"])),
        attribute=AttributeSpec(
            Attribute(data["attribute"]["kind"]),
            _param_from_dict(data["attribute"]["param"]),
        ),
        memory=data["memory"],
        filter=TaskFilter(
            tuple(
                (name, (value, plen)) for name, value, plen in data["filter"]
            )
        ),
        depth=data["depth"],
        algorithm=data.get("algorithm"),
        sample_prob=data.get("sample_prob", 1.0),
        threshold=data.get("threshold"),
        name=data.get("name"),
    )
