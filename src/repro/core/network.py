"""Network-wide measurement coordination (§3.4's SDM compatibility).

FlyMon positions itself as the flexible hardware data plane under
software-defined-measurement controllers (DREAM/SCREAM-style).  This module
provides the minimal network-wide layer such controllers need: deploy the
same task on many switches and merge the answers.

Merge semantics per attribute:

* frequency -- sum of per-switch estimates (each packet is observed at one
  *designated* switch, e.g. its ingress edge; the coordinator assumes the
  deployment's filters partition traffic that way),
* distinct (HLL) -- registers merge by element-wise max, so flows crossing
  multiple switches are not double-counted,
* existence -- union (a flow exists if any switch saw it),
* heavy hitters -- query the summed frequency; or union the switches'
  data-plane alarm digests (a documented over/under sandwich, below),
* entropy (MRAC) -- element-wise modular sum of the per-switch counter
  rows *then* one EM recovery: because MRAC's data plane is a one-row
  Cond-ADD sketch, the summed row is bit-identical to the row a single
  switch observing the union traffic would hold, so the merged entropy is
  *exact* (equals the single-switch estimate), not an approximation.

The digest-union heavy-hitter set is the one documented approximation: a
switch fires its alarm when a flow crosses the threshold *locally*, so
under edge partitioning (each flow's packets all ingress one switch) the
union is exact, while under traffic splitting it is sandwiched -- every
flow in the union crossed the threshold somewhere (no false alarms beyond
sketch collisions), and any flow whose per-switch shares all stay below
the threshold is missed.  ``digest_heavy_hitters`` documents that bound;
``heavy_hitters`` (summed estimates over candidates) stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set, Tuple

import numpy as np

from repro.analysis.entropy import entropy_from_distribution
from repro.analysis.estimators import hll_estimate, mrac_em
from repro.core.controller import FlyMonController, TaskHandle
from repro.core.task import MeasurementTask
from repro.traffic.trace import Trace


@dataclass
class NetworkTaskHandle:
    """The same task deployed on every switch in the coordinator."""

    task: MeasurementTask
    per_switch: Dict[str, TaskHandle]

    def query_sum(self, flow: Tuple[int, ...]) -> float:
        """Summed frequency estimate (edge-partitioned observation model)."""
        return sum(h.algorithm.query(flow) for h in self.per_switch.values())

    def heavy_hitters(self, candidates: Iterable, threshold: int) -> Set:
        return {f for f in candidates if self.query_sum(f) >= threshold}

    def contains_anywhere(self, flow: Tuple[int, ...]) -> bool:
        return any(h.algorithm.contains(flow) for h in self.per_switch.values())

    def digest_heavy_hitters(self) -> Set:
        """Union of the switches' data-plane alarm digests.

        Exact under edge partitioning (each flow ingresses one switch).
        Under arbitrary splitting the result is sandwiched: it contains no
        flow that never crossed the threshold on any switch, and it misses
        flows whose per-switch shares all stayed sub-threshold -- see the
        module docstring.  Requires the task to carry a ``threshold``.
        """
        union: Set = set()
        for handle in self.per_switch.values():
            union |= handle.algorithm.data_plane_heavy_hitters()
        return union

    def merged_distribution(self, **kwargs) -> Dict[int, float]:
        """Flow-size distribution recovered from the *merged* MRAC row.

        The per-switch rows are summed element-wise (modular, in register
        width) before a single EM pass -- the same order of operations a
        single switch observing the union traffic performs, so the result
        is exact, not a mixture of per-switch estimates.
        """
        merged = None
        mask = None
        for handle in self.per_switch.values():
            row = handle.algorithm.rows[0]
            counters = np.asarray(row.read(), dtype=np.int64)
            if merged is None:
                merged = counters.copy()
                mask = row.cmu.register.value_mask
            else:
                merged = (merged + counters) & mask
        if merged is None:
            return {}
        return mrac_em(merged, len(merged), **kwargs)

    def merged_entropy(self, **kwargs) -> float:
        """Entropy of the merged MRAC distribution (exact, see above)."""
        return entropy_from_distribution(self.merged_distribution(**kwargs))

    def merged_cardinality(self) -> float:
        """HLL merge across switches: element-wise maximum of the rank
        arrays, so shared flows count once."""
        merged = None
        for handle in self.per_switch.values():
            algo = handle.algorithm
            ranks = _hll_ranks(algo)
            merged = ranks if merged is None else np.maximum(merged, ranks)
        return hll_estimate(merged) if merged is not None else 0.0

    def reset(self) -> None:
        for handle in self.per_switch.values():
            handle.reset()


def _hll_ranks(algo) -> np.ndarray:
    """Extract the per-bucket HLL ranks from a FlyMon-HLL deployment."""
    stored = algo.rows[0].read()
    mask = (1 << algo.rho_bits) - 1
    ranks = np.zeros(len(stored), dtype=np.int64)
    for i, value in enumerate(stored):
        if value == 0:
            continue
        min_hash = (~int(value)) & mask
        if min_hash == 0:
            ranks[i] = algo.rho_bits + 1
        else:
            ranks[i] = algo.rho_bits - min_hash.bit_length() + 1
    return ranks


class NetworkCoordinator:
    """A fleet of FlyMon switches managed as one measurement fabric.

    All switches are built with the same ``seed_base`` so their compression
    stages compute identical digests -- the precondition for merging
    register state across switches (mirrors how a real deployment would pin
    CRC polynomial configurations fleet-wide).
    """

    def __init__(self, switch_names: Iterable[str], **controller_kwargs) -> None:
        names = list(switch_names)
        if not names:
            raise ValueError("a coordinator needs at least one switch")
        controller_kwargs.setdefault("place_on_pipeline", False)
        self.switches: Dict[str, FlyMonController] = {
            name: FlyMonController(**controller_kwargs) for name in names
        }

    def deploy_everywhere(self, task: MeasurementTask) -> NetworkTaskHandle:
        """Install the task on every switch (each gets its own registers)."""
        per_switch = {
            name: controller.add_task(task)
            for name, controller in self.switches.items()
        }
        return NetworkTaskHandle(task=task, per_switch=per_switch)

    def remove_everywhere(self, handle: NetworkTaskHandle) -> None:
        for name, task_handle in handle.per_switch.items():
            self.switches[name].remove_task(task_handle)

    def process(self, traffic: Mapping[str, Trace]) -> None:
        """Drive each switch with its observed traffic slice."""
        for name, trace in traffic.items():
            self.switches[name].process_trace(trace)

    def total_deployment_ms(self, handle: NetworkTaskHandle) -> float:
        return sum(h.deployment_ms for h in handle.per_switch.values())
