"""Network-wide measurement coordination (§3.4's SDM compatibility).

FlyMon positions itself as the flexible hardware data plane under
software-defined-measurement controllers (DREAM/SCREAM-style).  This module
provides the minimal network-wide layer such controllers need: deploy the
same task on many switches and merge the answers.

Merge semantics per attribute:

* frequency -- sum of per-switch estimates (each packet is observed at one
  *designated* switch, e.g. its ingress edge; the coordinator assumes the
  deployment's filters partition traffic that way),
* distinct (HLL) -- registers merge by element-wise max, so flows crossing
  multiple switches are not double-counted,
* existence -- union (a flow exists if any switch saw it),
* heavy hitters -- query the summed frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set, Tuple

import numpy as np

from repro.analysis.estimators import hll_estimate
from repro.core.controller import FlyMonController, TaskHandle
from repro.core.task import MeasurementTask
from repro.traffic.trace import Trace


@dataclass
class NetworkTaskHandle:
    """The same task deployed on every switch in the coordinator."""

    task: MeasurementTask
    per_switch: Dict[str, TaskHandle]

    def query_sum(self, flow: Tuple[int, ...]) -> float:
        """Summed frequency estimate (edge-partitioned observation model)."""
        return sum(h.algorithm.query(flow) for h in self.per_switch.values())

    def heavy_hitters(self, candidates: Iterable, threshold: int) -> Set:
        return {f for f in candidates if self.query_sum(f) >= threshold}

    def contains_anywhere(self, flow: Tuple[int, ...]) -> bool:
        return any(h.algorithm.contains(flow) for h in self.per_switch.values())

    def merged_cardinality(self) -> float:
        """HLL merge across switches: element-wise maximum of the rank
        arrays, so shared flows count once."""
        merged = None
        for handle in self.per_switch.values():
            algo = handle.algorithm
            ranks = _hll_ranks(algo)
            merged = ranks if merged is None else np.maximum(merged, ranks)
        return hll_estimate(merged) if merged is not None else 0.0

    def reset(self) -> None:
        for handle in self.per_switch.values():
            handle.reset()


def _hll_ranks(algo) -> np.ndarray:
    """Extract the per-bucket HLL ranks from a FlyMon-HLL deployment."""
    stored = algo.rows[0].read()
    mask = (1 << algo.rho_bits) - 1
    ranks = np.zeros(len(stored), dtype=np.int64)
    for i, value in enumerate(stored):
        if value == 0:
            continue
        min_hash = (~int(value)) & mask
        if min_hash == 0:
            ranks[i] = algo.rho_bits + 1
        else:
            ranks[i] = algo.rho_bits - min_hash.bit_length() + 1
    return ranks


class NetworkCoordinator:
    """A fleet of FlyMon switches managed as one measurement fabric.

    All switches are built with the same ``seed_base`` so their compression
    stages compute identical digests -- the precondition for merging
    register state across switches (mirrors how a real deployment would pin
    CRC polynomial configurations fleet-wide).
    """

    def __init__(self, switch_names: Iterable[str], **controller_kwargs) -> None:
        names = list(switch_names)
        if not names:
            raise ValueError("a coordinator needs at least one switch")
        controller_kwargs.setdefault("place_on_pipeline", False)
        self.switches: Dict[str, FlyMonController] = {
            name: FlyMonController(**controller_kwargs) for name in names
        }

    def deploy_everywhere(self, task: MeasurementTask) -> NetworkTaskHandle:
        """Install the task on every switch (each gets its own registers)."""
        per_switch = {
            name: controller.add_task(task)
            for name, controller in self.switches.items()
        }
        return NetworkTaskHandle(task=task, per_switch=per_switch)

    def remove_everywhere(self, handle: NetworkTaskHandle) -> None:
        for name, task_handle in handle.per_switch.items():
            self.switches[name].remove_task(task_handle)

    def process(self, traffic: Mapping[str, Trace]) -> None:
        """Drive each switch with its observed traffic slice."""
        for name, trace in traffic.items():
            self.switches[name].process_trace(trace)

    def total_deployment_ms(self, handle: NetworkTaskHandle) -> float:
        return sum(h.deployment_ms for h in handle.per_switch.values())
