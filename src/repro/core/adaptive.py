"""Adaptive memory management: a DREAM-style control loop over FlyMon.

§3.4 positions FlyMon as the flexible data plane under software-defined
measurement controllers such as DREAM/SCREAM, whose job is to move memory
between tasks as accuracy demands change.  This module implements that loop
for counter tasks:

* after each epoch the manager reads a cheap accuracy proxy from the task's
  own registers -- the *fill factor* (fraction of non-zero buckets), which
  tracks the flow-count-to-memory ratio that drives CMS-style error;
* when the proxy exceeds ``grow_above`` the task is redeployed with twice
  the memory (bounded by ``max_memory``); below ``shrink_below`` it halves
  (bounded by ``min_memory``) -- both are FlyMon's millisecond-level
  reconfigurations, so the loop reacts within one epoch.

Because a resize starts the measurement fresh (§6's freeze-and-divert
strategy), decisions apply at epoch boundaries, exactly where state resets
anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.controller import FlyMonController, PlacementError, TaskHandle


def fill_factor_from_rows(row_arrays) -> float:
    """:func:`fill_factor` over already-read row arrays.

    Lets sealed-epoch snapshots (see :mod:`repro.service`) compute the same
    accuracy proxy the live manager uses without touching the registers.
    """
    fractions = [
        float(np.count_nonzero(values)) / len(values)
        for values in row_arrays
        if len(values)
    ]
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def fill_factor(handle: TaskHandle) -> float:
    """Fraction of non-zero buckets, averaged over the task's rows.

    For hashed counter rows with ``n`` flows over ``m`` buckets the expected
    fill is ``1 - e^{-n/m}``; past ~0.7 (n ~= 1.2 m) collision error climbs
    quickly, which is the regime the manager steers away from.
    """
    rows = handle.algorithm.rows
    if not rows:
        return 0.0
    return fill_factor_from_rows([row.read() for row in rows])


@dataclass
class ResizeDecision:
    """One epoch's decision record (for operator audit trails)."""

    epoch: int
    fill: float
    action: str  # "grow" | "shrink" | "hold" | "blocked"
    memory: int


@dataclass
class AdaptiveMemoryManager:
    """Drives one task's memory to track its workload."""

    controller: FlyMonController
    handle: TaskHandle
    grow_above: float = 0.5
    shrink_below: float = 0.15
    min_memory: int = 64
    max_memory: int = 1 << 16
    history: List[ResizeDecision] = field(default_factory=list)
    _epoch: int = 0

    @property
    def memory(self) -> int:
        return self.handle.rows[0].mem.length

    def end_of_epoch(self) -> ResizeDecision:
        """Read the proxy, decide, and (maybe) resize.  Call at epoch
        boundaries *before* resetting the task (the proxy needs the epoch's
        state); the resize itself starts the next epoch fresh."""
        fill = fill_factor(self.handle)
        action = "hold"
        memory = self.memory
        target: Optional[int] = None
        if fill > self.grow_above and memory < self.max_memory:
            target, action = min(self.max_memory, memory * 2), "grow"
        elif fill < self.shrink_below and memory > self.min_memory:
            target, action = max(self.min_memory, memory // 2), "shrink"
        if target is not None:
            try:
                self.handle = self.controller.resize_task(self.handle, target)
                memory = target
            except PlacementError:
                action = "blocked"
        else:
            self.handle.reset()
        decision = ResizeDecision(
            epoch=self._epoch, fill=fill, action=action, memory=memory
        )
        self.history.append(decision)
        self._epoch += 1
        return decision
