"""Task compiler: a planned deployment -> southbound runtime rules (§3.4).

The compiler turns an algorithm's per-row configurations into the rule list
a real control plane would push through P4Runtime: hash-mask rules for newly
configured compression units, one task-selection rule per row, the
preparation-stage entries (address translation + parameter preprocessing),
and a register zeroing per memory range.  The rule count drives the
deployment-delay model (Table 3).

Every stateful rule carries a **rollback** action so a failed or aborted
install can restore the data plane bit-identically: hash-mask rules restore
the unit's previous mask, register resets restore the exact cells they
zeroed, and task-selection rules remove the task again.  Rollback differs
from teardown (``undo``): removing a deployed task later must *not* revert
a shared hash unit's mask (a co-resident task may have reused it) nor
resurrect stale register cells, so only the selection rule is undo-logged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.algorithms.base import PlanContext, RowSlot
from repro.core.cmu import Cmu, CmuTaskConfig
from repro.dataplane.hashing import DynamicHashUnit, HashMask
from repro.dataplane.runtime import (
    RULE_KIND_HASH_MASK,
    RULE_KIND_REGISTER_RESET,
    RULE_KIND_TABLE,
    RuntimeRule,
)


def compile_deployment(
    ctx: PlanContext, configs: Sequence[CmuTaskConfig]
) -> List[RuntimeRule]:
    """All runtime rules for one task deployment, in install order."""
    if len(configs) != len(ctx.rows):
        raise ValueError("one config per row expected")
    rules: List[RuntimeRule] = []
    rules.extend(_hash_mask_rules(ctx))
    shared_prep: set = set()
    for row, config in zip(ctx.rows, configs):
        rules.extend(_row_rules(row, config, shared_prep))
    return rules


def _hash_mask_rules(ctx: PlanContext) -> List[RuntimeRule]:
    """One hash-mask rule per newly configured compression unit (dedup'd:
    rows in the same group share grants)."""
    seen: set = set()
    rules: List[RuntimeRule] = []
    for row in ctx.rows:
        grants = [row.key_grant]
        if row.param_grant is not None:
            grants.append(row.param_grant)
        for grant in grants:
            for unit_index, mask in grant.new_masks:
                unit = row.group.hash_units[unit_index]
                dedup = (id(row.group), unit_index, mask)
                if dedup in seen:
                    continue
                seen.add(dedup)
                apply, rollback = _apply_mask(unit, mask)
                rules.append(
                    RuntimeRule(
                        kind=RULE_KIND_HASH_MASK,
                        target=f"cmug{row.group.group_id}/hash{unit_index}",
                        description=f"set mask {mask.describe()}",
                        apply=apply,
                        rollback=rollback,
                    )
                )
    return rules


def _apply_mask(unit: DynamicHashUnit, mask: HashMask):
    state: dict = {}

    def apply() -> None:
        state["previous"] = unit.mask
        unit.set_mask(mask)

    def rollback() -> None:
        previous = state.pop("previous", None)
        if previous is not None:
            unit.set_mask(previous)

    return apply, rollback


def _row_rules(
    row: RowSlot, config: CmuTaskConfig, shared_prep: set
) -> List[RuntimeRule]:
    cmu = row.cmu
    target = f"cmug{cmu.group_id}/cmu{cmu.index}"
    reset_apply, reset_rollback = _apply_reset(cmu, config)
    rules: List[RuntimeRule] = [
        RuntimeRule(
            kind=RULE_KIND_REGISTER_RESET,
            target=target,
            description=f"zero [{config.mem.base}, {config.mem.end})",
            apply=reset_apply,
            rollback=reset_rollback,
        ),
        # The initialization-stage rule: select task -> key, params, op.
        RuntimeRule(
            kind=RULE_KIND_TABLE,
            target=f"{target}/select_task",
            description=f"task {config.task_id}: {config.filter.describe()}",
            apply=_apply_install(cmu, config),
            undo=_apply_remove(cmu, config.task_id),
        ),
    ]
    # Preparation-stage entries: address translation + p1 preprocessing.
    # Functionally these are folded into the installed config; each physical
    # TCAM entry that a live deployment would install is still issued as a
    # rule so latency accounting matches hardware.  Static (compile-time
    # const) mappings cost no runtime rules -- see ParamProcessor.
    translation_rules = config.translation(cmu.register_size).table_rules()
    prep_entries = translation_rules
    # Rows in the same group with the same parameter source and mapping
    # share one preparation table (e.g. BeauCoup's coupon windows feed all
    # three CMUs), so its entries are installed once per group.
    processor_key = (cmu.group_id, config.p1, config.p1_processor)
    if processor_key not in shared_prep:
        shared_prep.add(processor_key)
        prep_entries += config.p1_processor.runtime_entries()
    for i in range(prep_entries):
        rules.append(
            RuntimeRule(
                kind=RULE_KIND_TABLE,
                target=f"{target}/preparation",
                description=f"task {config.task_id}: prep entry {i}",
                apply=_noop,
            )
        )
    return rules


def _apply_reset(cmu: Cmu, config: CmuTaskConfig):
    state: dict = {}

    def apply() -> None:
        state["cells"] = cmu.register.read_range(config.mem.base, config.mem.length)
        cmu.register.reset_range(config.mem.base, config.mem.length)

    def rollback() -> None:
        cells = state.pop("cells", None)
        if cells is not None:
            cmu.register.write_range(config.mem.base, cells)

    return apply, rollback


def _apply_install(cmu: Cmu, config: CmuTaskConfig):
    def apply() -> None:
        cmu.install_task(config)

    return apply


def _apply_remove(cmu: Cmu, task_id: int):
    def undo() -> None:
        cmu.remove_task(task_id)

    return undo


def _noop() -> None:
    return None
