"""Structured control-plane event log.

Every controller-side operation (task lifecycle, placement, key grants,
buddy-allocator activity, rule installs) emits one typed :class:`Event` with
a process-monotonic timestamp and a global sequence number, so the full
reconfiguration history of an experiment can be replayed, queried, or dumped
as JSON Lines.
"""

from __future__ import annotations

import json
import time
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional

# -- event taxonomy (docs/TELEMETRY.md documents the payloads) --------------

EV_TASK_ADD = "task_add"
EV_TASK_REMOVE = "task_remove"
EV_TASK_RESIZE = "task_resize"
EV_TASK_FILTER_UPDATE = "task_filter_update"
EV_TASK_SPLIT = "task_split"
EV_PLACEMENT_DECISION = "placement_decision"
EV_KEY_GRANT = "key_grant"
EV_KEY_RELEASE = "key_release"
EV_MEM_ALLOC = "mem_alloc"
EV_MEM_FREE = "mem_free"
EV_MEM_SPLIT = "mem_split"
EV_RULES_INSTALL = "rules_install"
EV_RULES_REMOVE = "rules_remove"
EV_TXN_ROLLBACK = "txn_rollback"
EV_SHARD_RETRY = "shard_retry"
EV_FAULT_INJECTED = "fault_injected"
EV_CHECKPOINT = "checkpoint"
EV_RESTORE = "restore"
EV_EPOCH_SEAL = "epoch_seal"
EV_WATCHER_FIRED = "watcher_fired"
EV_WATCHER_ACTION = "watcher_action"
EV_WAL_DEGRADED = "wal_degraded"
EV_WAL_REATTACHED = "wal_reattached"
EV_WAL_SEGMENT_ROLL = "wal_segment_roll"
EV_SEALER_RESTARTED = "sealer_restarted"
EV_INGEST_SHED = "ingest_shed"

EVENT_TYPES = frozenset(
    {
        EV_TASK_ADD,
        EV_TASK_REMOVE,
        EV_TASK_RESIZE,
        EV_TASK_FILTER_UPDATE,
        EV_TASK_SPLIT,
        EV_PLACEMENT_DECISION,
        EV_KEY_GRANT,
        EV_KEY_RELEASE,
        EV_MEM_ALLOC,
        EV_MEM_FREE,
        EV_MEM_SPLIT,
        EV_RULES_INSTALL,
        EV_RULES_REMOVE,
        EV_TXN_ROLLBACK,
        EV_SHARD_RETRY,
        EV_FAULT_INJECTED,
        EV_CHECKPOINT,
        EV_RESTORE,
        EV_EPOCH_SEAL,
        EV_WATCHER_FIRED,
        EV_WATCHER_ACTION,
        EV_WAL_DEGRADED,
        EV_WAL_REATTACHED,
        EV_WAL_SEGMENT_ROLL,
        EV_SEALER_RESTARTED,
        EV_INGEST_SHED,
    }
)


@dataclass(frozen=True)
class Event:
    """One control-plane event: what happened, when, and its payload."""

    seq: int
    ts_ms: float  #: monotonic milliseconds since the log's epoch
    type: str
    data: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"seq": self.seq, "ts_ms": self.ts_ms, "type": self.type, **self.data}


class EventLog:
    """Append-only, bounded log of :class:`Event` records.

    ``capacity`` bounds memory for long-running processes: once full, the
    oldest events are dropped (``dropped`` counts them) while sequence
    numbers keep increasing, so gaps are detectable.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._events: List[Event] = []
        self._seq = 0
        self._epoch = time.monotonic()

    # -- recording ----------------------------------------------------------

    def emit(self, type: str, **data: object) -> Event:
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}")
        self._seq += 1
        event = Event(
            seq=self._seq,
            ts_ms=(time.monotonic() - self._epoch) * 1e3,
            type=type,
            data=data,
        )
        self._events.append(event)
        if len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow
        return event

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- querying -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(list(self._events))

    def query(
        self,
        type: Optional[str] = None,
        since_seq: int = 0,
        predicate: Optional[Callable[[Event], bool]] = None,
        **data_filters: object,
    ) -> List[Event]:
        """Events matching a type, minimum sequence, and payload values.

        ``data_filters`` match on payload equality, e.g.
        ``log.query(task_id=3)`` or ``log.query(EV_KEY_GRANT, group=0)``.
        """
        out = []
        for event in self._events:
            if type is not None and event.type != type:
                continue
            if event.seq <= since_seq:
                continue
            if any(event.data.get(k) != v for k, v in data_filters.items()):
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def of_type(self, type: str) -> List[Event]:
        return self.query(type=type)

    def type_counts(self) -> Dict[str, int]:
        return dict(TallyCounter(e.type for e in self._events))

    # -- export -------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        return [event.to_dict() for event in self._events]

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True, default=str)
            for event in self._events
        )

    def dump_jsonl(self, path: str) -> int:
        """Write the log as JSON Lines; returns the number of events."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._events)
