"""Exporters: Prometheus text exposition, JSON snapshots, resource gauges.

Both exporters work from :meth:`MetricsRegistry.snapshot`'s plain-dict form,
so a dumped artifact (``repro run ... --telemetry out.json``) can be
re-rendered later (``repro stats --input out.json --format prometheus``)
without the live registry.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Union

from repro.telemetry.metrics import MetricsRegistry

SnapshotDict = Dict[str, List[Dict[str, object]]]

#: Gauge family holding live ResourceVector utilization fractions.
RESOURCE_GAUGE = "flymon_resource_utilization"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, object], extra: str = "") -> str:
    parts = [
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == float("inf"):
        return "+Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def to_prometheus(source: Union[MetricsRegistry, SnapshotDict]) -> str:
    """Render metrics in the Prometheus text exposition format (v0.0.4).

    One ``# TYPE`` line per family; histograms expand into cumulative
    ``_bucket`` series plus ``_sum``/``_count``.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    # All samples of a family must be contiguous under one # TYPE line, so
    # group by family name first (snapshot order interleaves label sets).
    families: Dict[str, List[str]] = {}
    types: Dict[str, str] = {}
    for kind in ("counters", "gauges"):
        prom_type = kind[:-1]  # "counter" / "gauge"
        for entry in snapshot.get(kind, ()):
            name = str(entry["name"])
            types[name] = prom_type
            families.setdefault(name, []).append(
                f"{name}{_render_labels(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for entry in snapshot.get("histograms", ()):
        name = str(entry["name"])
        types[name] = "histogram"
        samples = families.setdefault(name, [])
        labels = entry["labels"]
        for bound, cumulative in entry["buckets"]:
            le = "+Inf" if bound in ("+Inf", float("inf")) else _format_value(bound)
            le_label = 'le="' + le + '"'
            samples.append(
                f"{name}_bucket{_render_labels(labels, extra=le_label)} "
                f"{_format_value(cumulative)}"
            )
        samples.append(
            f"{name}_sum{_render_labels(labels)} {_format_value(entry['sum'])}"
        )
        samples.append(
            f"{name}_count{_render_labels(labels)} {_format_value(entry['count'])}"
        )
    lines: List[str] = []
    for name, samples in families.items():
        lines.append(f"# TYPE {name} {types[name]}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def update_resource_gauges(
    utilization: Mapping[str, float],
    registry: MetricsRegistry,
    scope: str = "pipeline",
) -> None:
    """Publish a ``ResourceVector``-style utilization mapping as gauges.

    ``utilization`` is the ``{resource: fraction}`` dict that
    ``Pipeline.utilization()`` / ``TofinoSwitch.utilization()`` return.
    """
    for resource, fraction in utilization.items():
        registry.gauge(RESOURCE_GAUGE, scope=scope, resource=resource).set(fraction)


def build_snapshot(
    telemetry=None, meta: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The full telemetry artifact: metadata, event log, metrics snapshot."""
    if telemetry is None:
        from repro.telemetry import TELEMETRY as telemetry  # noqa: F811
    return {
        "meta": dict(meta or {}),
        "events": telemetry.events.to_dicts(),
        "event_counts": telemetry.events.type_counts(),
        "events_dropped": telemetry.events.dropped,
        "metrics": telemetry.registry.snapshot(),
    }


def write_artifact(
    path: str, telemetry=None, meta: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Dump :func:`build_snapshot` to ``path`` as JSON; returns the snapshot."""
    snapshot = build_snapshot(telemetry, meta=meta)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return snapshot


def load_artifact(path: str) -> Dict[str, object]:
    with open(path) as fh:
        return json.load(fh)


def summarize(snapshot: Mapping[str, object]) -> str:
    """Terse human-readable rendering of an artifact (``repro stats``)."""
    lines: List[str] = []
    meta = snapshot.get("meta") or {}
    if meta:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"meta: {rendered}")
    counts = snapshot.get("event_counts") or {}
    lines.append(f"control-plane events: {sum(counts.values())}")
    for event_type in sorted(counts):
        lines.append(f"  {event_type:<22} {counts[event_type]}")
    metrics = snapshot.get("metrics") or {}
    counters = metrics.get("counters", [])
    gauges = metrics.get("gauges", [])
    histograms = metrics.get("histograms", [])
    lines.append(
        f"metrics: {len(counters)} counters, {len(gauges)} gauges, "
        f"{len(histograms)} histograms"
    )
    for entry in sorted(
        counters, key=lambda e: (-float(e["value"]), str(e["name"])))[:12]:
        labels = _render_labels(entry["labels"])
        lines.append(f"  {entry['name']}{labels} = {_format_value(entry['value'])}")
    for entry in gauges:
        if entry["name"] == RESOURCE_GAUGE and entry["value"]:
            labels = dict(entry["labels"])
            lines.append(
                f"  utilization[{labels.get('scope')}/{labels.get('resource')}]"
                f" = {float(entry['value']):.1%}"
            )
    for entry in histograms:
        if entry["count"]:
            mean = float(entry["sum"]) / float(entry["count"])
            lines.append(
                f"  {entry['name']}{_render_labels(entry['labels'])}: "
                f"n={entry['count']} mean={mean:.3g}"
            )
    return "\n".join(lines)
