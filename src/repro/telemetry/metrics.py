"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The registry is a plain dict keyed by ``(name, sorted label pairs)``; metric
instances are tiny ``__slots__`` objects whose update methods are single
attribute mutations (atomic under the GIL -- no locks anywhere).  Handles
returned by :meth:`MetricsRegistry.counter` & friends are stable: callers on
hot paths cache them once and call ``inc()``/``observe()`` directly, so the
per-event cost is one attribute store.  :meth:`MetricsRegistry.reset` zeroes
values *in place* (it never discards instances), which keeps cached handles
valid across experiment runs.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram upper bounds for second-scale timings (sampled spans).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0,
)

#: Default histogram upper bounds for modeled control-plane latencies (ms).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Mapping[str, object]) -> LabelPairs:
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that can go up and down (utilization, active tasks)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram (cumulative counts on export, Prometheus-style)."""

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, labels: LabelPairs, bounds: Sequence[float]
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending with ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


Metric = Union[Counter, Gauge, Histogram]

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Get-or-create store of every metric in the process.

    A (name, labels) pair always maps to the same instance; requesting an
    existing name with a different metric type raises, so a metric family
    never mixes types (which would break the Prometheus exposition).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelPairs], Metric] = {}
        self._families: Dict[str, type] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, bounds=buckets)

    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, object],
        **kwargs: object,
    ) -> Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _label_pairs(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{_TYPE_NAMES[type(metric)]}"
                )
            return metric
        family = self._families.get(name)
        if family is not None and family is not cls:
            raise ValueError(
                f"metric family {name!r} already registered as "
                f"{_TYPE_NAMES[family]}"
            )
        metric = cls(name, key[1], **kwargs)
        self._metrics[key] = metric
        self._families[name] = cls
        return metric

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def families(self) -> Dict[str, str]:
        """``{family name: metric type}`` in registration order."""
        return {name: _TYPE_NAMES[cls] for name, cls in self._families.items()}

    def get(self, name: str, **labels: object) -> Optional[Metric]:
        return self._metrics.get((name, _label_pairs(labels)))

    def value(self, name: str, **labels: object) -> Optional[float]:
        metric = self.get(name, **labels)
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """JSON-friendly dump of every metric, grouped by type."""
        out: Dict[str, List[Dict[str, object]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for metric in self._metrics.values():
            entry: Dict[str, object] = {
                "name": metric.name,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = [
                    ["+Inf" if bound == float("inf") else bound, count]
                    for bound, count in metric.cumulative()
                ]
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                out["histograms"].append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                entry["value"] = metric.value
                out["counters"].append(entry)
        return out

    def reset(self) -> None:
        """Zero every metric in place; cached handles stay valid."""
        for metric in self._metrics.values():
            metric._reset()
