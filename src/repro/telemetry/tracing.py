"""Sampled timing spans for the datapath.

Timing every simulated packet would dominate the hot path, so spans are
*sampled*: :meth:`Tracer.should_sample` is a counter decrement that returns
``True`` once every ``sample_interval`` calls, and only sampled packets pay
the two ``perf_counter`` reads.  Observed durations land in a histogram
named ``<name>_seconds`` in the shared registry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.metrics import DEFAULT_SECONDS_BUCKETS, Histogram, MetricsRegistry

#: Sample one packet in this many by default (§hot-path budget).
DEFAULT_SAMPLE_INTERVAL = 64


class Tracer:
    """Sampling decision + span recording over a :class:`MetricsRegistry`."""

    def __init__(
        self,
        registry: MetricsRegistry,
        sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        self.registry = registry
        self.set_sample_interval(sample_interval)

    def set_sample_interval(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sample_interval = interval
        self._countdown = interval

    def should_sample(self) -> bool:
        """Deterministic 1-in-N sampling decision (one decrement per call)."""
        self._countdown -= 1
        if self._countdown:
            return False
        self._countdown = self.sample_interval
        return True

    def span_histogram(self, name: str, **labels: object) -> Histogram:
        return self.registry.histogram(
            f"{name}_seconds", buckets=DEFAULT_SECONDS_BUCKETS, **labels
        )

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[None]:
        """Unconditionally time a block into ``<name>_seconds``.

        For control-plane paths (rule installs, queries) where per-call
        timing is affordable; the datapath uses :meth:`should_sample` plus
        explicit ``perf_counter`` reads instead to skip the context-manager
        overhead on unsampled packets.
        """
        histogram = self.span_histogram(name, **labels)
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)
