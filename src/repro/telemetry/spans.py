"""The pipeline flight recorder: structured, phase-attributed timing spans.

Where :mod:`repro.telemetry.tracing` answers *"how long does one sampled
packet take?"* with per-packet histograms, the flight recorder answers
*"where did this run's time go?"*: every coarse-grained phase of the runtime
-- a trace replay, a shard dispatch, an epoch seal, a control-plane
transaction -- opens a :meth:`FlightRecorder.span` and lands in a bounded
in-memory ring as a :class:`SpanRecord` carrying its parent span id, wall
and CPU durations, and free-form attributes.  Spans are recorded
**unconditionally** while the recorder is enabled (no sampling -- the
instrumented sites fire a handful of times per trace run, never per
packet), and the disabled path is a single attribute check returning a
shared no-op context manager, so leaving the recorder off costs nothing
measurable (see ``tests/dataplane/test_telemetry_overhead.py``).

Three consumers sit on top of the ring:

* :func:`aggregate_spans` folds the ring into a phase tree (grouping spans
  by name along their parent chains) that :func:`format_phase_tree` renders
  with percentages and unattributed self-time -- the ``repro profile``
  output;
* :func:`to_chrome_trace` emits Chrome ``trace_event`` JSON (complete
  events, ``ph: "X"``) loadable in Perfetto / ``chrome://tracing``;
* :meth:`FlightRecorder.to_dicts` is the plain-JSON form for artifacts.

Work measured *outside* the recorder's process or call stack (shard workers
time themselves with raw ``perf_counter`` and ship floats back) is grafted
in after the fact with :meth:`FlightRecorder.add`, which accepts an explicit
parent id and start timestamp so synthetic spans nest correctly in both the
tree and the Chrome timeline.

Sharded-datapath phases, by runtime:

* ``shard.dispatch`` wraps the fan-out on both runtimes; per-shard
  ``shard.worker`` spans (with nested ``shard.build`` / ``shard.compute`` /
  ``shard.transport``) are grafted in from worker-reported floats.
* ``shard.transport`` is *data movement only*: on the ephemeral runtime it
  is the pickle/unpickle of inputs and results; on the persistent runtime
  it is the shared-memory copy in (parent side) plus the register
  snapshot-into-shm out (worker side).  ``shard.build`` is the replica
  construction cost -- paid once per pool lifetime on the persistent
  runtime, so it collapses to ~0 on warm runs.
* ``shard.sync`` (persistent only) times shipping control-plane deltas
  (installed/removed rules, filter updates) to the resident workers before
  a run; ``shard.shm`` (persistent only) times each bounded input-window
  copy round inside the dispatch.
* ``rotate.pool`` (persistent only, under ``service.rotate``) times the
  in-place epoch seal broadcast to the resident workers.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence

#: Spans retained in the ring by default; old spans fall off the front.
DEFAULT_CAPACITY = 8192

#: Sentinel for ``FlightRecorder.add(parent_id=...)``: attach to the
#: caller's currently open span (if any).
CURRENT = "current"


class SpanRecord:
    """One completed span: identity, position in the tree, and durations.

    ``start_us`` is microseconds since the recorder's epoch (reset by
    :meth:`FlightRecorder.clear`), which is also the Chrome ``ts`` unit.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "cat",
        "start_us",
        "wall_ms",
        "cpu_ms",
        "attrs",
        "tid",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        start_us: float,
        wall_ms: float,
        cpu_ms: float,
        attrs: Dict[str, object],
        tid: int,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.wall_ms = wall_ms
        self.cpu_ms = cpu_ms
        self.attrs = attrs
        self.tid = tid

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "start_us": self.start_us,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, wall={self.wall_ms:.3f}ms)"
        )


class _NullSpan:
    """The shared disabled-path context manager: enter/exit do nothing.

    Carries ``span_id = None`` so call sites can read ``sp.span_id``
    uniformly whether the recorder is on or off.
    """

    __slots__ = ()
    span_id: Optional[int] = None
    parent_id: Optional[int] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times its block and appends a record on exit."""

    __slots__ = ("_rec", "name", "cat", "attrs", "span_id", "parent_id", "_wall0", "_cpu0")

    def __init__(self, rec: "FlightRecorder", name: str, cat: str, attrs: Dict[str, object]) -> None:
        self._rec = rec
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    def __enter__(self) -> "_Span":
        rec = self._rec
        stack = rec._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(rec._ids)
        stack.append(self.span_id)
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        wall1 = time.perf_counter()
        cpu1 = time.process_time()
        rec = self._rec
        stack = rec._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        rec._ring.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                cat=self.cat,
                start_us=(self._wall0 - rec._t0) * 1e6,
                wall_ms=(wall1 - self._wall0) * 1e3,
                cpu_ms=(cpu1 - self._cpu0) * 1e3,
                attrs=self.attrs,
                tid=threading.get_ident(),
            )
        )
        return False


class FlightRecorder:
    """Bounded ring of phase spans with a per-thread nesting stack.

    Disabled by default; :meth:`span` then returns the shared
    :data:`NULL_SPAN` after one attribute check.  Enabled, each span costs
    two ``perf_counter`` + two ``process_time`` reads and one deque append
    -- affordable because instrumented sites are coarse (per run / shard /
    epoch / transaction, never per packet).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._t0 = time.perf_counter()

    # -- lifecycle -----------------------------------------------------------

    def enable(self, capacity: Optional[int] = None) -> "FlightRecorder":
        if capacity is not None and capacity != self._ring.maxlen:
            if capacity <= 0:
                raise ValueError("capacity must be positive")
            self._ring = deque(self._ring, maxlen=capacity)
        self.enabled = True
        return self

    def disable(self) -> "FlightRecorder":
        self.enabled = False
        return self

    def clear(self) -> "FlightRecorder":
        """Drop every recorded span and restart the timebase."""
        self._ring.clear()
        self._t0 = time.perf_counter()
        return self

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    # -- recording -----------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_id(self) -> Optional[int]:
        """The innermost open span's id on this thread (or ``None``)."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def now_us(self) -> float:
        """Microseconds since the recorder's epoch (the ``start_us`` base)."""
        return (time.perf_counter() - self._t0) * 1e6

    def rel_us(self, perf_counter_time: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to ``start_us``."""
        return (perf_counter_time - self._t0) * 1e6

    def span(self, name: str, cat: str = "", **attrs: object):
        """Context manager timing a phase; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, attrs)

    def add(
        self,
        name: str,
        wall_ms: float,
        cpu_ms: float = 0.0,
        parent_id: object = CURRENT,
        start_us: Optional[float] = None,
        cat: str = "",
        **attrs: object,
    ) -> Optional[int]:
        """Graft an externally measured duration into the ring.

        For work timed outside this recorder's call stack (shard workers in
        other processes, post-hoc attribution).  ``parent_id`` defaults to
        the caller's currently open span; pass an explicit id (e.g. a
        ``_Span.span_id`` captured earlier) or ``None`` for a root.
        ``start_us`` positions the span on the Chrome timeline; it defaults
        to ending *now* (i.e. ``now_us() - wall_ms``).
        """
        if not self.enabled:
            return None
        if parent_id is CURRENT:
            parent_id = self.current_id()
        if start_us is None:
            start_us = self.now_us() - wall_ms * 1e3
        span_id = next(self._ids)
        self._ring.append(
            SpanRecord(
                span_id=span_id,
                parent_id=parent_id,  # type: ignore[arg-type]
                name=name,
                cat=cat,
                start_us=float(start_us),
                wall_ms=float(wall_ms),
                cpu_ms=float(cpu_ms),
                attrs=attrs,
                tid=threading.get_ident(),
            )
        )
        return span_id

    # -- export --------------------------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        """The retained spans, oldest first (completion order)."""
        return list(self._ring)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self._ring]


# ---------------------------------------------------------------------------
# Phase-tree aggregation (the `repro profile` view)
# ---------------------------------------------------------------------------


class PhaseNode:
    """Aggregated totals for every span sharing a name at one tree level."""

    __slots__ = ("name", "count", "wall_ms", "cpu_ms", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        self.children: Dict[str, "PhaseNode"] = {}

    @property
    def children_wall_ms(self) -> float:
        return sum(child.wall_ms for child in self.children.values())

    @property
    def self_ms(self) -> float:
        """Wall time not attributed to any child phase (clamped at zero)."""
        return max(0.0, self.wall_ms - self.children_wall_ms)

    @property
    def coverage(self) -> float:
        """Fraction of this phase's wall time its children account for."""
        if not self.children or self.wall_ms <= 0.0:
            return 1.0
        return min(1.0, self.children_wall_ms / self.wall_ms)

    def find(self, name: str) -> Optional["PhaseNode"]:
        """Depth-first search for a phase by name (self included)."""
        if self.name == name:
            return self
        for child in self.children.values():
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "self_ms": self.self_ms,
            "children": [c.to_dict() for c in self.children.values()],
        }


def aggregate_spans(spans: Sequence[SpanRecord]) -> PhaseNode:
    """Fold spans into a phase tree rooted at a synthetic ``total`` node.

    Children are attached through actual parent ids, then grouped by name
    at each level, so two epochs' ``rotate.snapshot`` spans aggregate into
    one node under ``service.rotate``.  A span whose parent has fallen off
    the ring (or was never recorded) becomes a root.
    """
    ids = {span.span_id for span in spans}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    roots: List[SpanRecord] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in ids:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def build_into(parent: PhaseNode, group: List[SpanRecord]) -> None:
        by_name: Dict[str, List[SpanRecord]] = {}
        for span in group:
            by_name.setdefault(span.name, []).append(span)
        for name, members in by_name.items():
            node = parent.children.get(name)
            if node is None:
                node = parent.children[name] = PhaseNode(name)
            kids: List[SpanRecord] = []
            for span in members:
                node.count += 1
                node.wall_ms += span.wall_ms
                node.cpu_ms += span.cpu_ms
                kids.extend(children.get(span.span_id, ()))
            if kids:
                build_into(node, kids)

    root = PhaseNode("total")
    build_into(root, roots)
    root.count = sum(node.count for node in root.children.values())
    root.wall_ms = root.children_wall_ms
    root.cpu_ms = sum(node.cpu_ms for node in root.children.values())
    return root


def format_phase_tree(
    root: PhaseNode,
    min_pct: float = 0.05,
    unattributed_label: str = "(unattributed)",
) -> str:
    """Render the phase tree with wall ms, percent-of-total, and counts.

    Phases under ``min_pct`` percent of the total are folded into their
    parent's unattributed line; each branching node with measurable
    untracked time gets an explicit ``(unattributed)`` row so every level
    sums to its parent.
    """
    total = root.wall_ms or 1.0
    lines = [f"{'phase':<46} {'wall ms':>10} {'%':>7} {'count':>7}"]
    lines.append("-" * 73)

    def pct(ms: float) -> str:
        return f"{100.0 * ms / total:6.1f}%"

    def emit(node: PhaseNode, depth: int) -> None:
        label = ("  " * depth + node.name)[:46]
        lines.append(
            f"{label:<46} {node.wall_ms:>10.2f} {pct(node.wall_ms):>7} "
            f"{node.count:>7}"
        )
        ordered = sorted(
            node.children.values(), key=lambda c: c.wall_ms, reverse=True
        )
        shown_any = False
        hidden_ms = 0.0
        for child in ordered:
            if 100.0 * child.wall_ms / total < min_pct and shown_any:
                hidden_ms += child.wall_ms
                continue
            emit(child, depth + 1)
            shown_any = True
        if node.children:
            leftover = node.self_ms + hidden_ms
            if leftover > 0.0 and 100.0 * leftover / total >= min_pct:
                label = ("  " * (depth + 1) + unattributed_label)[:46]
                lines.append(f"{label:<46} {leftover:>10.2f} {pct(leftover):>7} {'':>7}")

    for child in sorted(root.children.values(), key=lambda c: c.wall_ms, reverse=True):
        emit(child, 0)
    lines.append("-" * 73)
    lines.append(f"{'total':<46} {root.wall_ms:>10.2f} {'100.0%':>7} {root.count:>7}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace_event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------


def to_chrome_trace(
    spans: Iterable[SpanRecord], meta: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Chrome ``trace_event`` JSON: one complete (``ph: "X"``) event per span.

    Thread idents are remapped to small consecutive tids so the timeline
    groups nicely; span/parent ids ride in ``args`` for programmatic use.
    """
    tids: Dict[int, int] = {}
    events: List[Dict[str, object]] = []
    for span in spans:
        tid = tids.setdefault(span.tid, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "cat": span.cat or "flymon",
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.wall_ms * 1e3, 3),
                "pid": 1,
                "tid": tid,
                "args": {
                    **{k: _jsonable(v) for k, v in span.attrs.items()},
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "cpu_ms": round(span.cpu_ms, 3),
                },
            }
        )
    trace: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        trace["otherData"] = {k: _jsonable(v) for k, v in meta.items()}
    return trace


def write_chrome_trace(
    path: str,
    spans: Iterable[SpanRecord],
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    trace = to_chrome_trace(spans, meta=meta)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return trace


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
