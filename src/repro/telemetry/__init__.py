"""FlyMon reproduction telemetry: metrics, events, tracing, exporters.

One process-wide :class:`Telemetry` singleton (``TELEMETRY``) bundles the
metrics registry, the control-plane event log, and the datapath tracer.
Telemetry is **disabled by default**; instrumented hot paths guard all work
behind a single ``TELEMETRY.enabled`` attribute check so the disabled cost
is one branch.  The singleton instance is never replaced -- modules may
safely cache the reference at import time.

Typical use::

    from repro import telemetry

    telemetry.enable(sample_interval=64)
    ...  # deploy tasks, process traffic
    telemetry.TELEMETRY.events.of_type(telemetry.EV_TASK_ADD)
    print(telemetry.to_prometheus(telemetry.TELEMETRY.registry))
    telemetry.disable()
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.events import (  # noqa: F401  (re-exported taxonomy)
    EV_CHECKPOINT,
    EV_EPOCH_SEAL,
    EV_FAULT_INJECTED,
    EV_INGEST_SHED,
    EV_KEY_GRANT,
    EV_KEY_RELEASE,
    EV_MEM_ALLOC,
    EV_MEM_FREE,
    EV_MEM_SPLIT,
    EV_PLACEMENT_DECISION,
    EV_RESTORE,
    EV_RULES_INSTALL,
    EV_RULES_REMOVE,
    EV_SEALER_RESTARTED,
    EV_SHARD_RETRY,
    EV_TASK_ADD,
    EV_TASK_FILTER_UPDATE,
    EV_TASK_REMOVE,
    EV_TASK_RESIZE,
    EV_TASK_SPLIT,
    EV_TXN_ROLLBACK,
    EV_WAL_DEGRADED,
    EV_WAL_REATTACHED,
    EV_WAL_SEGMENT_ROLL,
    EV_WATCHER_ACTION,
    EV_WATCHER_FIRED,
    EVENT_TYPES,
    Event,
    EventLog,
)
from repro.telemetry.export import (  # noqa: F401
    RESOURCE_GAUGE,
    build_snapshot,
    load_artifact,
    summarize,
    to_prometheus,
    update_resource_gauges,
    write_artifact,
)
from repro.telemetry.metrics import (  # noqa: F401
    DEFAULT_MS_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (  # noqa: F401
    FlightRecorder,
    PhaseNode,
    SpanRecord,
    aggregate_spans,
    format_phase_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.tracing import DEFAULT_SAMPLE_INTERVAL, Tracer  # noqa: F401


class Telemetry:
    """The bundle hot paths consult: ``enabled`` flag + registry/log/tracer.

    The flight :attr:`recorder` (phase spans, see
    :mod:`repro.telemetry.spans`) has its *own* enable flag, independent of
    the metrics/events ``enabled`` bit: span sites are coarse enough to run
    with metrics off, and vice versa.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.events = EventLog()
        self.tracer = Tracer(self.registry)
        self.recorder = FlightRecorder()

    def enable(self, sample_interval: Optional[int] = None) -> "Telemetry":
        if sample_interval is not None:
            self.tracer.set_sample_interval(sample_interval)
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        return self

    def reset(self) -> "Telemetry":
        """Zero metrics, clear events and spans; enabled state is unchanged.

        Metric instances are reset in place, so handles cached by
        instrumented modules (CMUs, pipelines) remain registered.
        """
        self.registry.reset()
        self.events.clear()
        self.recorder.clear()
        return self


#: The process-wide instance every instrumented module consults.
TELEMETRY = Telemetry()

#: The process-wide flight recorder (``TELEMETRY.recorder``); instrumented
#: modules cache this reference at import time -- it is never replaced.
RECORDER = TELEMETRY.recorder


def get_telemetry() -> Telemetry:
    return TELEMETRY


def enable(sample_interval: Optional[int] = None) -> Telemetry:
    return TELEMETRY.enable(sample_interval=sample_interval)


def disable() -> Telemetry:
    return TELEMETRY.disable()


def reset() -> Telemetry:
    return TELEMETRY.reset()


def enable_recorder(capacity: Optional[int] = None) -> FlightRecorder:
    """Turn the flight recorder on (independent of metrics/events)."""
    return RECORDER.enable(capacity=capacity)


def disable_recorder() -> FlightRecorder:
    return RECORDER.disable()
