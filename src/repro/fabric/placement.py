"""Collaborative placement: which switches host a task's memory.

DCM-style disaggregation: instead of duplicating every task on every
switch, the fabric deploys each task onto the cheapest set of switches
that (a) together observe every packet the task's filter matches, exactly
once, and (b) can merge their registers exactly.

* **Mergeable tasks** (sum/max/or/xor laws) may be hosted by any layer's
  covering set -- the edges that own the filter's blocks, the agg slice
  above them, or a core.  Candidates are ranked by the *maximum* memory
  utilization a member would reach, so load spreads to the least-loaded
  covering set; ties prefer the lowest layer (most disaggregation, most
  aggregate memory headroom).
* **Replay-law tasks** (chained pipelines, finite-bound Cond-ADD) must see
  their whole packet stream in order on one switch: candidates are the
  single switches whose domain covers the filter's blocks, least-loaded
  first.

Either way a task lands on *fewer than all* switches whenever the topology
has more than one layer or the filter narrows the block set -- the
acceptance property the fabric tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.controller import TaskHandle
from repro.fabric.merge import task_mergeable
from repro.fabric.topology import LAYERS, FabricTopology


class FabricPlacementError(RuntimeError):
    """No switch set can host the task with exact merge semantics."""


@dataclass(frozen=True)
class PlacementDecision:
    """Where a task's memory goes and why."""

    task_id: int
    hosts: Tuple[str, ...]
    layer: str
    mergeable: bool
    score: float  # max member utilization at decision time


class FabricPlacer:
    """Deterministic host selection over a fabric topology."""

    def __init__(self, topology: FabricTopology) -> None:
        self.topology = topology

    def choose_hosts(
        self,
        handle: TaskHandle,
        laws: Mapping[Tuple[int, int], str],
        loads: Mapping[str, float],
    ) -> PlacementDecision:
        """Pick the host set for a canonically-deployed task.

        ``loads`` maps switch name -> current memory utilization (from each
        member controller's ``stats()``); missing names count as unloaded.
        """
        blocks = self.topology.blocks_for_filter(handle.task.filter)
        mergeable = task_mergeable(laws)
        if mergeable:
            candidates = [
                (layer, names)
                for layer, names in self.topology.covering_sets(blocks)
            ]
        else:
            candidates = [
                (self.topology.switches[name].layer, (name,))
                for name in self.topology.covering_switches(blocks)
            ]
        if not candidates:
            kind = "covering set" if mergeable else "single covering switch"
            raise FabricPlacementError(
                f"task {handle.task_id} ({handle.task.describe()}): no {kind} "
                f"for blocks {sorted(blocks)} in {self.topology.describe()}"
            )
        ranked = sorted(
            candidates,
            key=lambda cand: (
                max(float(loads.get(name, 0.0)) for name in cand[1]),
                LAYERS.index(cand[0]),
                len(cand[1]),
                cand[1],
            ),
        )
        layer, hosts = ranked[0]
        score = max(float(loads.get(name, 0.0)) for name in hosts)
        return PlacementDecision(
            task_id=handle.task_id,
            hosts=hosts,
            layer=layer,
            mergeable=mergeable,
            score=score,
        )
