"""Fabric topology: which switches exist and which traffic each one sees.

Traffic is partitioned by *ingress edge* on the top ``partition_bits`` bits
of ``src_ip`` (the "block" id).  Every switch owns a set of blocks -- its
traffic domain:

* **edge** switches own disjoint block sets that together cover the whole
  space (each packet has exactly one ingress edge);
* **agg** switches cover the union of some edges' blocks (disjoint within
  the layer);
* **core** switches see everything.

Disjointness within a layer is what makes federated merging exact: a task
hosted on several same-layer switches has each matching packet observed by
exactly one host, so per-law register merging (sum/max/or/xor) reproduces
the single-switch union register bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.task import TaskFilter
from repro.traffic.flows import FIELD_WIDTHS

LAYER_EDGE = "edge"
LAYER_AGG = "agg"
LAYER_CORE = "core"
LAYERS = (LAYER_EDGE, LAYER_AGG, LAYER_CORE)

_SRC_IP_BITS = FIELD_WIDTHS["src_ip"]


@dataclass(frozen=True)
class SwitchSpec:
    """One simulated switch: a name, a layer, and its traffic domain."""

    name: str
    layer: str
    blocks: FrozenSet[int]

    def covers(self, blocks: FrozenSet[int]) -> bool:
        return blocks <= self.blocks


class TopologyError(ValueError):
    """The topology spec violates a fabric invariant."""


class FabricTopology:
    """A validated set of switches over a block-partitioned traffic space."""

    def __init__(self, partition_bits: int, switches: Sequence[SwitchSpec]) -> None:
        if not 0 <= partition_bits <= 8:
            raise TopologyError("partition_bits must be in [0, 8]")
        if not switches:
            raise TopologyError("a fabric needs at least one switch")
        self.partition_bits = partition_bits
        self.num_blocks = 1 << partition_bits
        all_blocks = frozenset(range(self.num_blocks))
        self.switches: Dict[str, SwitchSpec] = {}
        for spec in switches:
            if spec.name in self.switches:
                raise TopologyError(f"duplicate switch name {spec.name!r}")
            if spec.layer not in LAYERS:
                raise TopologyError(
                    f"switch {spec.name!r}: unknown layer {spec.layer!r}"
                )
            if not spec.blocks <= all_blocks:
                raise TopologyError(
                    f"switch {spec.name!r}: blocks {sorted(spec.blocks - all_blocks)} "
                    f"outside [0, {self.num_blocks})"
                )
            if not spec.blocks:
                raise TopologyError(f"switch {spec.name!r}: empty domain")
            self.switches[spec.name] = spec
        # Within-layer disjointness (the merge-exactness precondition) and
        # edge-layer coverage (every packet needs an ingress edge).
        for layer in LAYERS:
            seen: Dict[int, str] = {}
            for spec in self.at_layer(layer):
                overlap = [b for b in spec.blocks if b in seen]
                if overlap:
                    raise TopologyError(
                        f"layer {layer!r}: switches {seen[overlap[0]]!r} and "
                        f"{spec.name!r} both own block {overlap[0]}"
                    )
                for b in spec.blocks:
                    seen[b] = spec.name
        edge_union = frozenset().union(
            *(s.blocks for s in self.at_layer(LAYER_EDGE))
        ) if self.at_layer(LAYER_EDGE) else frozenset()
        if self.at_layer(LAYER_EDGE) and edge_union != all_blocks:
            raise TopologyError(
                f"edge layer covers blocks {sorted(edge_union)}; "
                f"all {self.num_blocks} blocks need an ingress edge"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def preset(cls, num_edges: int) -> "FabricTopology":
        """``--switches N``: N edge switches plus one core spine.

        Blocks distribute round-robin over the edges; the core sees
        everything and hosts tasks whose merge law requires a single
        observer of the full stream.
        """
        if num_edges <= 0:
            raise TopologyError("preset needs at least one edge switch")
        bits = max(1, (num_edges - 1).bit_length()) if num_edges > 1 else 1
        num_blocks = 1 << bits
        switches = [
            SwitchSpec(
                name=f"edge{i}",
                layer=LAYER_EDGE,
                blocks=frozenset(b for b in range(num_blocks) if b % num_edges == i),
            )
            for i in range(num_edges)
        ]
        switches.append(
            SwitchSpec(
                name="core0",
                layer=LAYER_CORE,
                blocks=frozenset(range(num_blocks)),
            )
        )
        return cls(bits, switches)

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "FabricTopology":
        """Build from a JSON topology spec (see docs/FABRIC.md).

        ``{"partition_bits": B, "switches": [{"name", "layer", "blocks"?}]}``
        -- a switch without ``blocks`` covers every block.
        """
        bits = int(spec.get("partition_bits", 2))
        switches = []
        for entry in spec.get("switches", []):
            blocks = entry.get("blocks")
            switches.append(
                SwitchSpec(
                    name=str(entry["name"]),
                    layer=str(entry.get("layer", LAYER_EDGE)),
                    blocks=(
                        frozenset(int(b) for b in blocks)
                        if blocks is not None
                        else frozenset(range(1 << bits))
                    ),
                )
            )
        return cls(bits, switches)

    @classmethod
    def load(cls, path: str) -> "FabricTopology":
        with open(path) as fh:
            return cls.from_spec(json.load(fh))

    def to_spec(self) -> Dict[str, object]:
        return {
            "partition_bits": self.partition_bits,
            "switches": [
                {
                    "name": s.name,
                    "layer": s.layer,
                    "blocks": sorted(s.blocks),
                }
                for s in self.switches.values()
            ],
        }

    # -- traffic partitioning ----------------------------------------------

    @property
    def names(self) -> List[str]:
        """Switch names in spec order (the fabric's deterministic order)."""
        return list(self.switches)

    def at_layer(self, layer: str) -> List[SwitchSpec]:
        return [s for s in self.switches.values() if s.layer == layer]

    def block_column(self, src_ip_col: np.ndarray) -> np.ndarray:
        """Block id of each packet from its ``src_ip`` column."""
        if self.partition_bits == 0:
            return np.zeros(len(src_ip_col), dtype=np.int64)
        shift = _SRC_IP_BITS - self.partition_bits
        return np.asarray(src_ip_col, dtype=np.int64) >> shift

    def domain_lut(self, name: str) -> np.ndarray:
        """Boolean block-membership table for one switch (dispatch mask)."""
        lut = np.zeros(self.num_blocks, dtype=bool)
        lut[sorted(self.switches[name].blocks)] = True
        return lut

    def blocks_for_filter(self, task_filter: TaskFilter) -> FrozenSet[int]:
        """Every block that can carry a packet matching ``task_filter``.

        Only the ``src_ip`` constraint narrows the block set (the partition
        field); other fields cannot exclude blocks.
        """
        constraints = dict(task_filter.prefixes)
        if "src_ip" not in constraints or self.partition_bits == 0:
            return frozenset(range(self.num_blocks))
        value, plen = constraints["src_ip"]
        shift = _SRC_IP_BITS - self.partition_bits
        if plen >= self.partition_bits:
            return frozenset({value >> shift})
        base = value >> shift
        span = 1 << (self.partition_bits - plen)
        return frozenset(range(base, base + span))

    def covering_sets(
        self, blocks: FrozenSet[int]
    ) -> List[Tuple[str, Tuple[str, ...]]]:
        """Per-layer candidate host sets covering ``blocks``.

        Returns ``(layer, switch-names)`` pairs, edge layer first.  Within a
        layer the members' domains are disjoint (validated at construction),
        so each candidate set observes every matching packet exactly once.
        """
        out: List[Tuple[str, Tuple[str, ...]]] = []
        for layer in LAYERS:
            members = [
                s for s in self.at_layer(layer) if s.blocks & blocks
            ]
            union = frozenset().union(*(s.blocks for s in members)) if members else frozenset()
            if members and blocks <= union:
                out.append((layer, tuple(s.name for s in members)))
        return out

    def covering_switches(self, blocks: FrozenSet[int]) -> List[str]:
        """Single switches (any layer) whose domain covers all of ``blocks``."""
        return [s.name for s in self.switches.values() if s.covers(blocks)]

    def describe(self) -> str:
        parts = [f"{len(self.switches)} switches / {self.num_blocks} blocks"]
        for layer in LAYERS:
            names = [s.name for s in self.at_layer(layer)]
            if names:
                parts.append(f"{layer}: {', '.join(names)}")
        return "; ".join(parts)
