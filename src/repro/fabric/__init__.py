"""Network-wide federated measurement over a simulated switch fabric.

One :class:`~repro.service.engine.MeasurementService` per switch, traffic
partitioned by ingress edge, epochs sealed behind a fabric-wide barrier and
merged law-by-law into fabric :class:`SealedEpoch`\\ s that the existing
typed query plane answers from -- bit-identical to a single switch that saw
the union of the hosts' traffic.  See docs/FABRIC.md.
"""

from repro.fabric.merge import (
    MERGEABLE_LAWS,
    fabric_merge_law,
    merge_member_epochs,
    task_merge_laws,
    task_mergeable,
)
from repro.fabric.placement import (
    FabricPlacementError,
    FabricPlacer,
    PlacementDecision,
)
from repro.fabric.service import FabricService, FabricTaskHandle
from repro.fabric.topology import (
    LAYER_AGG,
    LAYER_CORE,
    LAYER_EDGE,
    LAYERS,
    FabricTopology,
    SwitchSpec,
    TopologyError,
)

__all__ = [
    "FabricPlacementError",
    "FabricPlacer",
    "FabricService",
    "FabricTaskHandle",
    "FabricTopology",
    "LAYER_AGG",
    "LAYER_CORE",
    "LAYER_EDGE",
    "LAYERS",
    "MERGEABLE_LAWS",
    "PlacementDecision",
    "SwitchSpec",
    "TopologyError",
    "fabric_merge_law",
    "merge_member_epochs",
    "task_merge_laws",
    "task_mergeable",
]
