"""The federated fabric service: N per-switch services behind one query plane.

One :class:`~repro.service.engine.MeasurementService` runs per simulated
switch (manual rotation -- the fabric owns the epoch clock).  A *canonical*
controller, which processes no traffic, hosts every fabric task once and
defines its coordinates; each hosting switch installs the task at those
exact coordinates via pinned placement, so at seal time the hosts' register
ranges merge law-by-law into a fabric :class:`SealedEpoch` in canonical
coordinates -- bit-identical to a single switch that saw the hosts'
combined traffic.  Queries bind the canonical handles against fabric
epochs through the unmodified typed query plane.

Epoch alignment: every barrier runs under the fabric lock and rotates all
members back-to-back, so no packet window straddles a fabric epoch.  In
wall-clock mode each member runs its own ticker thread; the *first* tick
number to arrive triggers the barrier and the drifted same-numbered ticks
from slower members are absorbed -- per-member clock skew within a tick
cannot split an epoch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import FlyMonController, TaskHandle
from repro.core.task import MeasurementTask
from repro.core.txn import ReconfigTransaction
from repro.fabric.merge import merge_member_epochs, task_merge_laws
from repro.faults import FAULTS, SITE_MEMBER_SEAL, FaultError
from repro.fabric.placement import FabricPlacer, PlacementDecision
from repro.fabric.topology import FabricTopology
from repro.service.engine import MeasurementService, SealedEpoch, StaleEpochError, _split_trace
from repro.telemetry import RECORDER as _RECORDER
from repro.traffic.packet import PACKET_FIELDS
from repro.traffic.trace import Trace


@dataclass
class FabricTaskHandle:
    """A task deployed across the fabric.

    ``handle`` is the canonical :class:`TaskHandle` -- the coordinate
    authority and the object typed queries unwrap (via the ``.handle``
    duck-typing contract of :mod:`repro.service.queries`).
    """

    task: MeasurementTask
    handle: TaskHandle
    hosts: Tuple[str, ...]
    layer: str
    mergeable: bool
    laws: Dict[Tuple[int, int], str] = field(default_factory=dict)
    member_handles: Dict[str, TaskHandle] = field(default_factory=dict)

    @property
    def task_id(self) -> int:
        return self.handle.task_id


class FabricService:
    """N per-switch measurement services federated at seal time."""

    def __init__(
        self,
        topology: FabricTopology,
        epoch_packets: Optional[int] = None,
        epoch_wall_ms: Optional[float] = None,
        retain: int = 8,
        batch_size: Optional[int] = None,
        workers: int = 1,
        controller_params: Optional[Dict[str, object]] = None,
    ) -> None:
        if epoch_packets is not None and epoch_wall_ms is not None:
            raise ValueError("choose one of epoch_packets / epoch_wall_ms")
        if epoch_packets is not None and epoch_packets <= 0:
            raise ValueError("epoch_packets must be positive")
        if epoch_wall_ms is not None and epoch_wall_ms <= 0:
            raise ValueError("epoch_wall_ms must be positive")
        self.topology = topology
        self.epoch_packets = epoch_packets
        self.epoch_wall_ms = epoch_wall_ms
        self.retain = retain
        params = dict(controller_params or {})
        params.setdefault("num_groups", 3)
        # Identical hash seeds fleet-wide are the merge precondition; the
        # canonical layout is only valid for members built the same way.
        params["place_on_pipeline"] = False
        self.canonical = FlyMonController(**params)
        self.members: Dict[str, MeasurementService] = {
            name: MeasurementService(
                FlyMonController(**params),
                retain=retain,
                batch_size=batch_size,
                workers=workers,
            )
            for name in topology.names
        }
        self.placer = FabricPlacer(topology)
        self._placements: Dict[int, FabricTaskHandle] = {}
        self._series: Dict[str, object] = {}
        self._ring: Deque[SealedEpoch] = deque(maxlen=retain)
        self._lock = threading.RLock()
        self._epoch_index = 0
        self._epoch_fill = 0
        self._packets_total = 0
        # Wall-clock federation state: the highest tick number that has
        # already driven a barrier.  Drifted duplicate ticks absorb here.
        self._barrier_tick = 0
        self._tickers: List[threading.Thread] = []
        self._ticker_stop = threading.Event()
        #: Member name -> reason, for members that failed their last barrier.
        self.degraded_members: Dict[str, str] = {}
        #: Lut cache: switch name -> boolean block-membership array.
        self._luts: Dict[str, np.ndarray] = {
            name: topology.domain_lut(name) for name in topology.names
        }

    # -- deployment ---------------------------------------------------------

    def deploy(self, task: MeasurementTask) -> FabricTaskHandle:
        """Place a task collaboratively and install it transactionally.

        The canonical controller hosts the task first (validating placement
        and fixing its coordinates); every chosen host then installs the
        identical pinned layout inside one shared transaction -- a failure
        on any host rolls back the hosts already installed *and* the
        canonical deployment, so the fabric never holds a partial task.
        """
        with self._lock:
            canonical = self.canonical.add_task(task)
            try:
                laws = task_merge_laws(canonical)
                loads = {
                    name: float(
                        svc.controller.stats()["memory_utilization"]
                    )
                    for name, svc in self.members.items()
                }
                decision = self.placer.choose_hosts(canonical, laws, loads)
                pin = self.canonical.export_placement(canonical)
                member_handles: Dict[str, TaskHandle] = {}
                with ReconfigTransaction(
                    f"fabric deploy task{canonical.task_id}"
                ) as txn:
                    for name in decision.hosts:
                        member_handles[name] = self.members[
                            name
                        ].controller.add_task_pinned(task, pin, transaction=txn)
            except BaseException:
                self.canonical.remove_task(canonical)
                raise
            fabric_handle = FabricTaskHandle(
                task=task,
                handle=canonical,
                hosts=decision.hosts,
                layer=decision.layer,
                mergeable=decision.mergeable,
                laws=laws,
                member_handles=member_handles,
            )
            self._placements[canonical.task_id] = fabric_handle
            return fabric_handle

    def undeploy(self, fabric_handle: FabricTaskHandle) -> None:
        """Tear a fabric task down on every host, then on the canonical."""
        with self._lock:
            if fabric_handle.task_id not in self._placements:
                raise KeyError(f"task {fabric_handle.task_id} is not deployed")
            with ReconfigTransaction(
                f"fabric undeploy task{fabric_handle.task_id}"
            ) as txn:
                for name, handle in fabric_handle.member_handles.items():
                    self.members[name].controller.remove_task(
                        handle, transaction=txn
                    )
            self.canonical.remove_task(fabric_handle.handle)
            del self._placements[fabric_handle.task_id]

    @property
    def placements(self) -> List[FabricTaskHandle]:
        return [self._placements[tid] for tid in sorted(self._placements)]

    def register_series(self, name: str, query) -> None:
        """Evaluate ``query`` against every fabric epoch (``outputs[name]``)."""
        if name in self._series:
            raise ValueError(f"series {name!r} already registered")
        self._series[name] = query

    # -- ingestion ----------------------------------------------------------

    def ingest(self, trace: Trace) -> List[SealedEpoch]:
        """Dispatch one source chunk; returns fabric epochs sealed en route.

        Packets count once (against the source trace) no matter how many
        switches observe them.  In ``epoch_packets`` mode the chunk splits
        at epoch boundaries and each boundary runs a full seal barrier.
        """
        sealed: List[SealedEpoch] = []
        remaining = trace
        while len(remaining):
            with self._lock:
                if self.epoch_packets is not None:
                    room = self.epoch_packets - self._epoch_fill
                    if room <= 0:
                        sealed.append(self._barrier_locked())
                        continue
                else:
                    room = len(remaining)
                window, remaining = _split_trace(remaining, room)
                self._dispatch(window)
                self._epoch_fill += len(window)
                self._packets_total += len(window)
                if (
                    self.epoch_packets is not None
                    and self._epoch_fill >= self.epoch_packets
                ):
                    sealed.append(self._barrier_locked())
        return sealed

    def _dispatch(self, window: Trace) -> None:
        """Route a window to each active switch's domain sub-trace, in order."""
        active = set()
        for placement in self._placements.values():
            active.update(placement.hosts)
        if not active or len(window) == 0:
            return
        with _RECORDER.span(
            "fabric.dispatch", cat="fabric", packets=len(window),
            switches=len(active),
        ):
            blocks = self.topology.block_column(window.columns["src_ip"])
            for name in self.topology.names:
                if name not in active:
                    continue
                mask = self._luts[name][blocks]
                if not mask.any():
                    continue
                if mask.all():
                    sub = window
                else:
                    sub = Trace(
                        {f: window.columns[f][mask] for f in PACKET_FIELDS}
                    )
                self.members[name].ingest(sub)

    # -- the seal barrier ---------------------------------------------------

    def rotate(self) -> SealedEpoch:
        """Seal the current fabric epoch now (manual barrier)."""
        with self._lock:
            return self._barrier_locked()

    def _barrier_locked(self) -> SealedEpoch:
        member_epochs: Dict[str, SealedEpoch] = {}
        self.degraded_members = {}
        with _RECORDER.span(
            "fabric.barrier", cat="fabric", epoch=self._epoch_index,
            switches=len(self.members),
        ):
            for name in self.topology.names:
                try:
                    arg = FAULTS.trip(SITE_MEMBER_SEAL, member=name)
                    if arg is not None:
                        raise FaultError(
                            SITE_MEMBER_SEAL, {"member": name, "arg": arg}
                        )
                    member_epochs[name] = self.members[name].rotate()
                except Exception as exc:
                    # A degraded member: its hosted tasks are excluded from
                    # this fabric epoch (queries raise StaleEpochError) and
                    # the fabric reports degraded health.
                    self.degraded_members[name] = f"{type(exc).__name__}: {exc}"
        with _RECORDER.span(
            "fabric.merge", cat="fabric", epoch=self._epoch_index,
            members=len(member_epochs),
        ):
            sealed = merge_member_epochs(
                index=self._epoch_index,
                packets=self._epoch_fill,
                placements=self._placements.values(),
                member_epochs=member_epochs,
            )
        sealed.degraded = dict(self.degraded_members)
        self._evaluate_series(sealed)
        self._ring.append(sealed)
        self._epoch_index += 1
        self._epoch_fill = 0
        return sealed

    def _evaluate_series(self, sealed: SealedEpoch) -> None:
        from repro.service.queries import resolve

        for name, query in self._series.items():
            try:
                sealed.outputs[name] = resolve(query, sealed)
            except StaleEpochError:
                pass  # the series' task sat on a degraded member this epoch

    # -- wall-clock federation ----------------------------------------------

    def member_tick(self, name: str, tick: int) -> bool:
        """One member's wall-clock tick.  Returns True if it sealed.

        The first arrival of tick number ``n`` (whichever member's clock
        fires first) runs the barrier for every member; the same tick
        arriving later from slower members is absorbed.  Result: exactly
        one fabric epoch per tick number, every member sealed inside the
        same barrier, packets assigned deterministically by arrival order
        against the barrier -- drift within a tick cannot straddle epochs.
        """
        if name not in self.members:
            raise KeyError(f"unknown switch {name!r}")
        with self._lock:
            if tick <= self._barrier_tick:
                return False  # a faster member already drove this barrier
            self._barrier_tick = tick
            if self._epoch_fill == 0:
                return False  # idle stream: consume the tick, seal nothing
            self._barrier_locked()
            return True

    def start(self) -> "FabricService":
        """Launch one wall-clock ticker thread per member."""
        if self.epoch_wall_ms is None:
            raise ValueError("start() requires epoch_wall_ms mode")
        if self._tickers:
            raise RuntimeError("fabric tickers are already running")
        self._ticker_stop.clear()
        t0 = time.monotonic()
        interval = self.epoch_wall_ms / 1e3

        def run(member: str) -> None:
            tick = 0
            while True:
                tick += 1
                deadline = t0 + tick * interval
                if self._ticker_stop.wait(max(0.0, deadline - time.monotonic())):
                    return
                self.member_tick(member, tick)

        for name in self.topology.names:
            thread = threading.Thread(
                target=run, args=(name,), name=f"fabric-tick-{name}", daemon=True
            )
            self._tickers.append(thread)
            thread.start()
        return self

    def stop(self, seal_tail: bool = False) -> Optional[SealedEpoch]:
        """Stop the tickers; optionally seal the ragged tail window."""
        if self._tickers:
            self._ticker_stop.set()
            for thread in self._tickers:
                thread.join()
            self._tickers = []
        for member in self.members.values():
            member.controller.close_shard_pool()
        if seal_tail:
            with self._lock:
                if self._epoch_fill:
                    return self.rotate()
        return None

    # -- queries and introspection ------------------------------------------

    @property
    def epochs(self) -> List[SealedEpoch]:
        return list(self._ring)

    @property
    def latest(self) -> Optional[SealedEpoch]:
        return self._ring[-1] if self._ring else None

    def epoch(self, index: int) -> SealedEpoch:
        for sealed in self._ring:
            if sealed.index == index:
                return sealed
        retained = [s.index for s in self._ring]
        raise StaleEpochError(
            f"fabric epoch {index} is not retained (ring holds {retained})"
        )

    def query(self, query, epoch=None):
        """Resolve a typed query against a fabric epoch (default: latest)."""
        from repro.service.queries import resolve

        if isinstance(epoch, SealedEpoch):
            sealed = epoch
        elif epoch is not None:
            sealed = self.epoch(int(epoch))
        else:
            sealed = self.latest
            if sealed is None:
                raise StaleEpochError("no fabric epoch has been sealed yet")
        return resolve(query, sealed)

    def stats(self) -> Dict[str, object]:
        return {
            "switches": len(self.members),
            "epoch": self._epoch_index,
            "epoch_fill": self._epoch_fill,
            "packets_total": self._packets_total,
            "sealed_epochs": len(self._ring),
            "retained": [s.index for s in self._ring],
            "tasks": len(self._placements),
            "placements": {
                tid: list(p.hosts) for tid, p in sorted(self._placements.items())
            },
            "member_packets": {
                name: svc.stats()["packets_total"]
                for name, svc in self.members.items()
            },
            "degraded_members": dict(self.degraded_members),
        }

    def status(self) -> Dict[str, object]:
        """Operator-facing fabric health: per-member health plus placement."""
        members = {
            name: svc.health() for name, svc in self.members.items()
        }
        rank = 0
        reasons: List[str] = []
        for name, health in members.items():
            if health["status"] == "failing":
                rank = max(rank, 2)
                reasons.append(f"{name}: {'; '.join(health['reasons'])}")
            elif health["status"] == "degraded":
                rank = max(rank, 1)
                reasons.append(f"{name}: {'; '.join(health['reasons'])}")
        for name, reason in self.degraded_members.items():
            rank = max(rank, 1)
            reasons.append(f"{name} missed the last barrier: {reason}")
        return {
            "status": ("ok", "degraded", "failing")[rank],
            "reasons": reasons,
            "topology": self.topology.describe(),
            "epoch": self._epoch_index,
            "packets_total": self._packets_total,
            "tasks": {
                tid: {
                    "hosts": list(p.hosts),
                    "layer": p.layer,
                    "mergeable": p.mergeable,
                }
                for tid, p in sorted(self._placements.items())
            },
            "members": members,
        }
