"""Seal-time federation: merge member epochs into one fabric epoch.

The fabric installs every task at *pinned* coordinates (same groups, hash
units, CMUs, memory bases, task id) on each of its hosts, so a task's row
occupies the identical register range on every switch that hosts it.
Hosts' traffic domains are disjoint, which makes register merging a pure
per-law fold over the hosts' sealed cells:

* ``sum``  -- Cond-ADD counters: element-wise modular sum,
* ``max``  -- HLL / SuMax registers: element-wise maximum,
* ``or``   -- Bloom / BeauCoup coupon bitmaps: bitwise OR,
* ``xor``  -- XOR sketches: bitwise XOR.

Each law is associative, commutative, and equal to what a single switch
observing the hosts' combined traffic would have computed -- so the merged
fabric epoch is *bit-identical* to the single-switch union reference.
Tasks with no such law (chained inter-arrival pipelines, finite-bound
Cond-ADD towers, counter braids) are placed on exactly one covering switch
instead; their merge is a straight copy, exact for any operation.

Alarm digests merge by set union.  Unlike shard merging (which must replay
alarm-armed tasks to reproduce the digest stream), fabric digests are a
*documented approximation*: a host sees only its own share of a flow's
traffic, so threshold crossings fire against per-host counts.  The union is
sandwiched -- every true heavy hitter appears (its full traffic lands on
one host), and nothing outside the single-switch digest set appears (union
cells dominate per-host cells) -- see docs/FABRIC.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.controller import TaskHandle
from repro.dataplane.sharding import (
    LAW_MAX,
    LAW_OR,
    LAW_REPLAY,
    LAW_SUM,
    LAW_XOR,
)
from repro.service.engine import SealedEpoch

#: Laws a task may carry and still be hosted on multiple switches.
MERGEABLE_LAWS = frozenset({LAW_SUM, LAW_MAX, LAW_OR, LAW_XOR})


def fabric_merge_law(plan, bucket_bits: int, value_mask: int) -> str:
    """The fabric's per-row merge law (sharding's law, alarms excepted).

    Shard merging treats alarm-armed tasks as replay-only because it must
    reproduce the exact digest stream.  Fabric federation merges digests by
    set union with a documented bound instead, and alarm thresholds do not
    change how *cells* update -- so the law depends only on the operation.
    """
    from repro.core.operations import OP_AND_OR, OP_COND_ADD, OP_MAX, OP_XOR
    from repro.core.params import ConstParam

    config = plan.config
    if config.op == OP_MAX:
        return LAW_MAX
    if config.op == OP_XOR:
        return LAW_XOR
    if config.op == OP_COND_ADD:
        if (
            isinstance(config.p2, ConstParam)
            and (config.p2.constant & value_mask) == value_mask
            and bucket_bits >= 8
        ):
            return LAW_SUM
        return LAW_REPLAY
    if config.op == OP_AND_OR:
        if isinstance(config.p2, ConstParam) and (config.p2.constant & value_mask):
            return LAW_OR
        return LAW_REPLAY
    return LAW_REPLAY


def task_merge_laws(handle: TaskHandle) -> Dict[Tuple[int, int], str]:
    """Per-row fabric merge laws of a deployed task, keyed ``(group, cmu)``.

    Chained rows (inputs fed by upstream CMU exports) are forced to
    ``replay``: their register stream depends on seeing the *whole* packet
    sequence, so only single-host placement is exact.
    """
    from repro.dataplane.sharding import _is_chained

    laws: Dict[Tuple[int, int], str] = {}
    for row in handle.rows:
        plan = row.cmu.task_plans()[handle.task_id]
        if _is_chained(plan.config):
            law = LAW_REPLAY
        else:
            law = fabric_merge_law(
                plan, row.cmu.bucket_bits, row.cmu.register.value_mask
            )
        laws[(row.group.group_id, row.cmu.index)] = law
    return laws


def task_mergeable(laws: Mapping[Tuple[int, int], str]) -> bool:
    return all(law in MERGEABLE_LAWS for law in laws.values())


def _fold(law: str, acc: np.ndarray, part: np.ndarray, value_mask: int) -> np.ndarray:
    if law == LAW_SUM:
        return (acc + part) & value_mask
    if law == LAW_MAX:
        return np.maximum(acc, part)
    if law == LAW_OR:
        return acc | part
    if law == LAW_XOR:
        return acc ^ part
    raise ValueError(f"law {law!r} cannot fold multiple hosts")


def merge_member_epochs(
    index: int,
    packets: int,
    placements: Iterable,
    member_epochs: Mapping[str, SealedEpoch],
) -> SealedEpoch:
    """Fold member epochs into one fabric :class:`SealedEpoch`.

    ``placements`` yields objects with ``handle`` (the canonical
    :class:`TaskHandle` defining coordinates), ``hosts`` (switch names),
    and ``laws`` (per-``(group, cmu)`` merge laws).  Members absent from
    ``member_epochs`` (a degraded switch that failed to seal) exclude every
    task they host: those tasks are dropped from the fabric epoch's task
    set, so queries against them raise ``StaleEpochError`` instead of
    returning partial answers.

    The result lives in *canonical coordinates*: binding a canonical task
    handle against it resolves addresses through the canonical deployment
    and reads the merged cells -- the existing typed query plane needs no
    changes.
    """
    cells: Dict[Tuple[int, int], np.ndarray] = {}
    digest_sets: Dict[Tuple[int, int, int], set] = {}
    task_ids: List[int] = []
    start_ts: Optional[int] = None
    end_ts: Optional[int] = None

    for epoch in member_epochs.values():
        if epoch.start_ts is not None:
            start_ts = epoch.start_ts if start_ts is None else min(start_ts, epoch.start_ts)
        if epoch.end_ts is not None:
            end_ts = epoch.end_ts if end_ts is None else max(end_ts, epoch.end_ts)

    for placement in placements:
        handle = placement.handle
        sealed = [
            member_epochs[name]
            for name in placement.hosts
            if name in member_epochs
        ]
        if len(sealed) != len(placement.hosts):
            continue  # a host is degraded: exclude the task this epoch
        task_ids.append(handle.task_id)
        for row in handle.rows:
            key = (row.group.group_id, row.cmu.index)
            mem = row.mem
            law = placement.laws[key]
            if key not in cells:
                cells[key] = np.zeros_like(sealed[0]._cells[key])
            out = cells[key]
            merged = None
            for epoch in sealed:
                part = epoch._cells[key][mem.base : mem.base + mem.length]
                if merged is None:
                    merged = part.copy()
                elif law in MERGEABLE_LAWS:
                    merged = _fold(law, merged, part, row.cmu.register.value_mask)
                else:
                    raise ValueError(
                        f"task {handle.task_id}: law {law!r} hosted on "
                        f"{len(sealed)} switches (single host required)"
                    )
            if merged is not None:
                out[mem.base : mem.base + mem.length] = merged
            dkey = (key[0], key[1], handle.task_id)
            union: set = set()
            for epoch in sealed:
                union |= epoch.digest_sets.get(dkey, set())
            if union:
                digest_sets[dkey] = digest_sets.get(dkey, set()) | union

    return SealedEpoch(
        index=index,
        packets=packets,
        start_ts=start_ts,
        end_ts=end_ts,
        cells=cells,
        registers={},
        task_ids=task_ids,
        digest_sets=digest_sets,
    )
