#!/usr/bin/env python3
"""Quickstart: deploy, reconfigure, and query measurement tasks on the fly.

Walks through FlyMon's core promise end-to-end:

1. bring up a controller managing cross-stacked CMU Groups,
2. deploy a heavy-hitter task at runtime (no program reload),
3. stream traffic through the simulated data plane,
4. query the task, then reconfigure -- swap in a different task on the same
   hardware -- and query again.

Run:  python examples/quickstart.py
"""

from repro import FlyMonController, MeasurementTask
from repro.core.task import AttributeSpec
from repro.traffic import KEY_5TUPLE, KEY_DST_IP, KEY_SRC_IP, zipf_trace


def main() -> None:
    # A controller managing 3 CMU Groups (each: 3 CMUs + 3 shared dynamic
    # hash units), placed on a 12-stage RMT pipeline model.
    controller = FlyMonController(num_groups=3)

    # --- 1. Deploy a heavy-hitter task at runtime --------------------------
    heavy_hitters = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,                       # group packets by source IP
            attribute=AttributeSpec.frequency(),  # count packets per flow
            memory=8192,                          # buckets per row
            depth=3,                              # three CMU rows
            algorithm="cms",
        )
    )
    print(
        f"deployed {heavy_hitters.algorithm_name!r} with "
        f"{heavy_hitters.rules_installed} runtime rules in "
        f"{heavy_hitters.deployment_ms:.1f} ms (no traffic interruption)"
    )

    # --- 2. Stream traffic through the data plane --------------------------
    trace = zipf_trace(num_flows=3_000, num_packets=30_000, seed=7)
    controller.process_trace(trace)
    print(f"processed {len(trace)} packets")

    # --- 3. Query the task --------------------------------------------------
    truth = trace.flow_sizes(KEY_SRC_IP)
    threshold = 200
    reported = heavy_hitters.algorithm.heavy_hitters(truth.keys(), threshold)
    actual = {k for k, v in truth.items() if v >= threshold}
    print(
        f"heavy hitters (>= {threshold} pkts): reported {len(reported)}, "
        f"actual {len(actual)}, overlap {len(reported & actual)}"
    )

    # --- 4. Reconfigure on the fly ------------------------------------------
    # Tear the task down and deploy a *different* measurement on the same
    # CMUs -- this is what needs a P4 recompile + traffic interruption on a
    # conventional deployment.
    controller.remove_task(heavy_hitters)
    cardinality = controller.add_task(
        MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.distinct(KEY_5TUPLE),
            memory=4096,
            depth=1,
            algorithm="hll",
        )
    )
    print(
        f"reconfigured to {cardinality.algorithm_name!r} in "
        f"{cardinality.deployment_ms:.1f} ms"
    )
    controller.process_trace(trace)
    print(
        f"flow cardinality: estimated {cardinality.algorithm.estimate():.0f}, "
        f"actual {trace.cardinality(KEY_5TUPLE)}"
    )


if __name__ == "__main__":
    main()
