#!/usr/bin/env python3
"""Scenario: riding out a traffic surge with dynamic memory management.

A frequency task runs across ten measurement epochs.  A surge triples the
flow population mid-run; the operator grows the task's memory (a few
runtime rules -- FlyMon's address-translation trick) and shrinks it back
afterwards, keeping accuracy stable while a fixed-memory deployment
degrades.

Run:  python examples/dynamic_memory_scaling.py
"""

from repro import FlyMonController, MeasurementTask
from repro.analysis.metrics import average_relative_error
from repro.core.task import AttributeSpec
from repro.traffic import KEY_SRC_IP, Trace, zipf_trace

NUM_EPOCHS = 10
SURGE = range(4, 8)


def epoch_trace(epoch: int) -> Trace:
    parts = [zipf_trace(num_flows=1_500, num_packets=8_000, seed=100 + epoch)]
    if epoch in SURGE:
        parts.append(
            zipf_trace(num_flows=4_500, num_packets=24_000, seed=500 + epoch)
        )
    return Trace.concatenate(parts).sorted_by_time()


def main() -> None:
    adaptive = FlyMonController(num_groups=3)
    fixed = FlyMonController(num_groups=3)

    def task(memory: int) -> MeasurementTask:
        return MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=memory,
            depth=3,
            algorithm="cms",
        )

    adaptive_handle = adaptive.add_task(task(1024))
    fixed_handle = fixed.add_task(task(1024))

    print(f"{'epoch':>5}  {'flows':>6}  {'adaptive ARE':>12}  {'fixed ARE':>10}  note")
    for epoch in range(NUM_EPOCHS):
        if epoch == SURGE.start:
            adaptive_handle = adaptive.resize_task(adaptive_handle, 16_384)
            note = "<- grew memory 16x"
        elif epoch == SURGE.stop:
            adaptive_handle = adaptive.resize_task(adaptive_handle, 1024)
            note = "<- shrank memory back"
        else:
            note = ""

        trace = epoch_trace(epoch)
        adaptive.process_trace(trace)
        fixed.process_trace(trace)
        truth = trace.flow_sizes(KEY_SRC_IP)
        are_adaptive = average_relative_error(truth, adaptive_handle.algorithm.query)
        are_fixed = average_relative_error(truth, fixed_handle.algorithm.query)
        print(
            f"{epoch:>5}  {len(truth):>6}  {are_adaptive:>12.3f}  "
            f"{are_fixed:>10.3f}  {note}"
        )
        adaptive_handle.reset()
        fixed_handle.reset()

    print(
        "\nmemory followed the workload: the adaptive task stayed accurate "
        "through the surge; the fixed one could not."
    )


if __name__ == "__main__":
    main()
