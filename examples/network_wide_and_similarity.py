#!/usr/bin/env python3
"""Scenario: fleet-wide measurement plus the extension features.

Demonstrates the features built on top of the paper's core design:

* **Network-wide coordination** (§3.4's SDM role): the same cardinality task
  deployed across a small fabric; per-switch HLL registers merge without
  double-counting flows that cross switches.
* **Heavy changers** (Table 1): epoch-over-epoch frequency diffing spots a
  source whose volume jumps.
* **Odd Sketch** (§6's expansion example): the reserved fourth SALU action
  (XOR) measures the similarity between two tenants' source populations.

Run:  python examples/network_wide_and_similarity.py
"""

from repro import FlyMonController, MeasurementTask
from repro.analysis.changers import heavy_changers
from repro.core.network import NetworkCoordinator
from repro.core.task import AttributeSpec, TaskFilter
from repro.traffic import KEY_5TUPLE, KEY_SRC_IP, Trace, zipf_trace
from repro.traffic.packet import format_ip


def main() -> None:
    # --- Network-wide cardinality ------------------------------------------
    net = NetworkCoordinator(["leaf-1", "leaf-2", "spine-1"])
    cardinality = net.deploy_everywhere(
        MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.distinct(KEY_5TUPLE),
            memory=2048,
            depth=1,
            algorithm="hll",
        )
    )
    east = zipf_trace(num_flows=1500, num_packets=6000, seed=1)
    west = zipf_trace(num_flows=1500, num_packets=6000, seed=2)
    # The spine sees both halves: naive summing would double-count.
    net.process({"leaf-1": east, "leaf-2": west,
                 "spine-1": Trace.concatenate([east, west])})
    merged = cardinality.merged_cardinality()
    true = Trace.concatenate([east, west]).cardinality(KEY_5TUPLE)
    print(f"[net-wide] merged cardinality {merged:.0f} vs true {true} "
          f"(3 switches, {net.total_deployment_ms(cardinality):.0f} ms total deploy)")

    # --- Heavy changers ------------------------------------------------------
    controller = FlyMonController(num_groups=1)
    freq = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=8192,
            depth=3,
            algorithm="cms",
        )
    )
    epoch = zipf_trace(num_flows=800, num_packets=8000, seed=11)
    controller.process_trace(epoch)
    before = {f: freq.algorithm.query(f) for f in epoch.flow_sizes(KEY_SRC_IP)}
    freq.reset()

    surge_src = int(epoch.columns["src_ip"][0])
    controller.process_trace(epoch)
    for _ in range(1500):  # one source surges in epoch 2
        controller.process_packet(
            {"src_ip": surge_src, "dst_ip": 1, "src_port": 2, "dst_port": 3,
             "protocol": 6, "timestamp": 0, "pkt_bytes": 64,
             "queue_length": 0, "queue_delay": 0}
        )
    changed = heavy_changers(before.get, freq.algorithm.query, before, 1000)
    print(f"[changers] sources shifting by >=1000 pkts: "
          f"{[format_ip(f[0]) for f in changed]} "
          f"(expected {format_ip(surge_src)})")

    # --- Odd Sketch similarity ------------------------------------------------
    sim_ctl = FlyMonController(num_groups=1)

    def odd(dst_octet):
        return sim_ctl.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.distinct(KEY_SRC_IP),
                memory=4096,
                depth=1,
                algorithm="odd_sketch",
                filter=TaskFilter.of(dst_ip=(dst_octet << 24, 8)),
            )
        )

    tenant_a, tenant_b = odd(20), odd(40)
    # Both tenants served by the same client population (same seed).
    sim_ctl.process_trace(
        zipf_trace(num_flows=1200, num_packets=1200, seed=5, dst_prefix=20 << 24)
    )
    sim_ctl.process_trace(
        zipf_trace(num_flows=1200, num_packets=1200, seed=5, dst_prefix=40 << 24)
    )
    print(f"[similarity] tenant client-set Jaccard ~= "
          f"{tenant_a.algorithm.jaccard(tenant_b.algorithm):.2f} "
          f"(same population -> expect ~1.0)")


if __name__ == "__main__":
    main()
