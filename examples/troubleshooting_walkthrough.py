#!/usr/bin/env python3
"""Scenario: the paper's introduction walkthrough -- root-causing a tenant's
performance complaint by *switching* measurement tasks on the fly.

The operator suspects something is wrong but doesn't know what.  On a
conventional deployment each hypothesis would need a recompile + traffic
interruption; with FlyMon each step is a few runtime rules:

1. flow cardinality            -- is there a traffic anomaly at all?
2. DDoS-victim detection       -- is someone being flooded?
3. congestion detection        -- which flows see deep queues?
4. heavy-hitter detection      -- which elephants should be rescheduled?

Run:  python examples/troubleshooting_walkthrough.py
"""

from repro import FlyMonController, MeasurementTask
from repro.core.task import AttributeSpec
from repro.traffic import (
    KEY_5TUPLE,
    KEY_DST_IP,
    KEY_SRC_IP,
    Trace,
    ddos_trace,
    zipf_trace,
)
from repro.traffic.packet import format_ip


def build_incident_traffic() -> Trace:
    """Background service traffic plus a DDoS flood on a few victims."""
    return ddos_trace(
        num_victims=4,
        sources_per_victim=1_500,
        background_flows=3_000,
        background_packets=20_000,
        seed=42,
    )


def main() -> None:
    controller = FlyMonController(num_groups=3)
    trace = build_incident_traffic()
    total_ms = 0.0

    # --- Step 1: is the flow population anomalous? -------------------------
    step1 = controller.add_task(
        MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.distinct(KEY_5TUPLE),
            memory=4096,
            depth=1,
            algorithm="hll",
        )
    )
    total_ms += step1.deployment_ms
    controller.process_trace(trace)
    cardinality = step1.algorithm.estimate()
    print(f"[1] flow cardinality ~= {cardinality:.0f} "
          f"(deployed in {step1.deployment_ms:.1f} ms)")
    controller.remove_task(step1)

    # --- Step 2: is someone being flooded? ----------------------------------
    step2 = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=16_384,
            depth=3,
            algorithm="beaucoup",
            threshold=1_000,
        )
    )
    total_ms += step2.deployment_ms
    controller.process_trace(trace)
    counts = trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)
    victims = step2.algorithm.alarms(counts.keys())
    print(f"[2] DDoS victims (>1000 distinct sources): "
          f"{sorted(format_ip(v[0]) for v in victims)} "
          f"(deployed in {step2.deployment_ms:.1f} ms)")
    controller.remove_task(step2)

    # --- Step 3: which flows see congested queues? ---------------------------
    step3 = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.maximum("queue_length"),
            memory=8192,
            depth=3,
            algorithm="sumax_max",
        )
    )
    total_ms += step3.deployment_ms
    controller.process_trace(trace)
    truth_queues = trace.max_values(KEY_SRC_IP, "queue_length")
    congested = sorted(
        truth_queues, key=lambda k: step3.algorithm.query(k), reverse=True
    )[:3]
    print(f"[3] deepest queues seen by: "
          f"{[format_ip(k[0]) for k in congested]} "
          f"(deployed in {step3.deployment_ms:.1f} ms)")
    controller.remove_task(step3)

    # --- Step 4: which elephants should be rescheduled? ----------------------
    step4 = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency("pkt_bytes"),
            memory=16_384,
            depth=3,
            algorithm="sumax_sum",
        )
    )
    total_ms += step4.deployment_ms
    controller.process_trace(trace)
    truth_bytes = trace.flow_sizes(KEY_SRC_IP, by_bytes=True)
    elephants = sorted(
        truth_bytes, key=lambda k: step4.algorithm.query(k), reverse=True
    )[:3]
    print(f"[4] elephant sources by bytes: "
          f"{[format_ip(k[0]) for k in elephants]} "
          f"(deployed in {step4.deployment_ms:.1f} ms)")

    print(
        f"\nfour different measurement tasks, one data plane, "
        f"{total_ms:.0f} ms of total reconfiguration, zero packets dropped."
    )


if __name__ == "__main__":
    main()
