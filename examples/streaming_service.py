#!/usr/bin/env python3
"""Streaming service: epochs, sealed queries, and watcher-driven resizing.

Walks the continuous-measurement runtime end-to-end:

1. bring up a controller and deploy heavy-hitter + cardinality tasks,
2. stream a trace through the service in chunks while epochs rotate and
   seal automatically,
3. query sealed epochs (frequency, heavy hitters, cardinality series)
   while ingestion continues,
4. let a fill-factor watcher double the sketch's memory through a
   transactional resize at an epoch boundary,
5. checkpoint the service and answer the same queries offline.

Run:  python examples/streaming_service.py
"""

import json

from repro import FlyMonController, MeasurementTask
from repro.core.task import AttributeSpec
from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    MeasurementService,
    TaskRef,
    Watcher,
    fill_factor_metric,
    load_service_state,
    resize_action,
    service_checkpoint,
)
from repro.traffic import KEY_DST_IP, KEY_SRC_IP, Trace, zipf_trace
from repro.traffic.packet import PACKET_FIELDS


def main() -> None:
    controller = FlyMonController(num_groups=3)

    # --- 1. Deploy: a deliberately small heavy-hitter sketch (the watcher
    # will grow it) plus an HLL cardinality task.
    heavy = TaskRef(
        controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=1024,
                depth=3,
                algorithm="cms",
                threshold=100,        # arms data-plane digests
            )
        )
    )
    card = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=1024,
            depth=1,
            algorithm="hll",
        )
    )

    # --- 2. The service: 2k-packet epochs, last 8 sealed epochs retained,
    # and a watcher that doubles the sketch when it runs too full.
    service = MeasurementService(controller, epoch_packets=2000, retain=8)
    service.register_series("cardinality", CardinalityQuery(card))
    service.add_watcher(
        Watcher(
            "grow",
            fill_factor_metric(heavy),
            above=0.2,
            action=resize_action(heavy),
            cooldown_epochs=2,
        )
    )

    trace = zipf_trace(num_flows=3000, num_packets=20_000, seed=7)
    top_flow = max(trace.flow_sizes(KEY_SRC_IP).items(), key=lambda kv: kv[1])[0]

    # --- 3. Stream in chunks; seals happen wherever the epoch boundary
    # falls, never on the chunk boundary.
    for start in range(0, len(trace), 1500):
        chunk = Trace(
            {f: trace.columns[f][start : start + 1500] for f in PACKET_FIELDS}
        )
        for sealed in service.ingest(chunk):
            events = [
                f"{e.watcher}->{e.outcome}"
                for e in sealed.watcher_events
                if e.fired
            ]
            if sealed.has_task(heavy.handle.task_id):
                hh = service.query(HeavyHitterQuery(heavy), epoch=sealed)
                count = service.query(FrequencyQuery(heavy, top_flow), epoch=sealed)
                body = f"{len(hh)} heavy hitters, top-flow count {count:.0f}"
            else:
                # A watcher resized at this seal: the epoch was sealed under
                # the retired deployment, so the new handle cannot read it.
                body = "sealed under the pre-resize sketch"
            print(
                f"epoch {sealed.index}: {sealed.packets} pkts, {body}"
                + (f"  [{', '.join(events)}]" if events else "")
            )
    service.rotate()  # seal the ragged tail

    print(f"\nsketch memory after watcher resizes: {heavy.handle.task.memory} buckets")
    print("cardinality series (last 8 epochs):")
    for index, value in service.series("cardinality"):
        print(f"  epoch {index:2d}: {value:8.1f}")

    # --- 5. Checkpoint and query offline: answers are bit-identical to the
    # sealed answers above.
    artifact = json.loads(json.dumps(service_checkpoint(service)))
    restored = load_service_state(artifact)
    cms_index = service.controller.tasks.index(heavy.handle)
    offline = restored.query(FrequencyQuery(restored.tasks[cms_index], top_flow))
    live = service.query(
        FrequencyQuery(heavy, top_flow), epoch=service.latest
    )
    print(f"\noffline == live sealed answer: {offline == live} ({offline:.0f})")


if __name__ == "__main__":
    main()
