#!/usr/bin/env python3
"""Scenario: many isolated per-tenant tasks on one CMU Group.

Each tenant owns a /8 and gets their own frequency task with their own
memory partition.  All tasks share the same three CMUs: dynamic memory
management carves the fixed registers into up to 32 partitions per CMU, so
one group hosts dozens of concurrent, isolated measurements (§5.1: up to
96).

Run:  python examples/multi_tenant_isolation.py
"""

from repro import FlyMonController, MeasurementTask
from repro.core.task import AttributeSpec, TaskFilter
from repro.traffic import KEY_SRC_IP, zipf_trace
from repro.traffic.packet import format_ip

NUM_TENANTS = 24


def main() -> None:
    controller = FlyMonController(num_groups=1, register_size=1 << 15)

    handles = {}
    for tenant in range(NUM_TENANTS):
        octet = 10 + tenant
        handles[octet] = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=(1 << 15) // 32,
                depth=1,
                algorithm="cms",
                filter=TaskFilter.of(src_ip=(octet << 24, 8)),
                name=f"tenant-{octet}",
            )
        )
    print(
        f"deployed {len(handles)} isolated tenant tasks on ONE CMU Group "
        f"({controller.runtime.total_rules} rules, "
        f"{controller.runtime.now_ms:.0f} ms total)"
    )

    # Only three tenants actually send traffic.
    active = (10, 17, 30)
    for octet in active:
        trace = zipf_trace(
            num_flows=200, num_packets=3_000, seed=octet, src_prefix=octet << 24
        )
        controller.process_trace(trace)

    print(f"\n{'tenant':>10}  {'packets counted':>15}")
    for octet, handle in sorted(handles.items()):
        counted = int(sum(row.read().sum() for row in handle.rows))
        marker = "  <- active" if octet in active else ""
        if counted or octet in active:
            print(f"{format_ip(octet << 24)+'/8':>10}  {counted:>15}{marker}")

    idle_counts = [
        int(sum(row.read().sum() for row in handle.rows))
        for octet, handle in handles.items()
        if octet not in active
    ]
    assert all(c == 0 for c in idle_counts)
    print("\nevery idle tenant's partition stayed at zero: full isolation.")


if __name__ == "__main__":
    main()
