"""Property-based tests on the CMU datapath itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP
from repro.traffic.packet import Packet


def fresh_controller():
    return FlyMonController(num_groups=1, place_on_pipeline=False)


def cms_task(depth=1, task_filter=None, memory=2048):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=depth,
        algorithm="cms",
        filter=task_filter or TaskFilter.match_all(),
    )


packet_lists = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=150
)


@given(packet_lists)
@settings(max_examples=25, deadline=None)
def test_total_count_conservation(src_ips):
    """A d=1 Cond-ADD row's counters sum to exactly the matched packets."""
    controller = fresh_controller()
    handle = controller.add_task(cms_task(depth=1))
    for i, src in enumerate(src_ips):
        controller.process_packet(Packet(src, 1, 2, 3, timestamp=i).fields())
    assert int(handle.rows[0].read().sum()) == len(src_ips)


@given(packet_lists)
@settings(max_examples=20, deadline=None)
def test_point_queries_never_underestimate(src_ips):
    controller = fresh_controller()
    handle = controller.add_task(cms_task(depth=3, memory=256))
    truth = {}
    for i, src in enumerate(src_ips):
        controller.process_packet(Packet(src, 1, 2, 3, timestamp=i).fields())
        truth[src] = truth.get(src, 0) + 1
    for src, count in truth.items():
        assert handle.algorithm.query((src,)) >= count


@given(packet_lists)
@settings(max_examples=20, deadline=None)
def test_disjoint_filters_partition_traffic(src_ips):
    """Two tasks on complementary half-spaces: every packet is counted by
    exactly one of them."""
    controller = fresh_controller()
    low, high = TaskFilter.match_all().split("src_ip")
    a = controller.add_task(cms_task(depth=1, task_filter=low))
    b = controller.add_task(cms_task(depth=1, task_filter=high))
    for i, src in enumerate(src_ips):
        controller.process_packet(Packet(src, 1, 2, 3, timestamp=i).fields())
    counted = int(a.rows[0].read().sum()) + int(b.rows[0].read().sum())
    assert counted == len(src_ips)


@given(
    packet_lists,
    st.integers(min_value=6, max_value=10),  # log2(register size)
)
@settings(max_examples=15, deadline=None)
def test_updates_stay_inside_task_partition(src_ips, log_size):
    """No task ever writes outside its allocated memory range."""
    controller = FlyMonController(
        num_groups=1, register_size=1 << log_size, place_on_pipeline=False
    )
    handle = controller.add_task(cms_task(depth=1, memory=1 << (log_size - 2)))
    for i, src in enumerate(src_ips):
        controller.process_packet(Packet(src, 1, 2, 3, timestamp=i).fields())
    register = handle.rows[0].cmu.register
    mem = handle.rows[0].mem
    outside = [
        register.read(i)
        for i in range(register.size)
        if not mem.contains(i)
    ]
    assert all(v == 0 for v in outside)
