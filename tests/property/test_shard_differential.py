"""Differential harness: sharded parallel execution vs the scalar reference.

Random mixes of tasks covering the reduced operation set, both
address-translation strategies, probabilistic execution, and data-plane
alarms are deployed twice -- one controller replays the trace packet by
packet, the other shards it over parallel datapath replicas -- and every
observable must be bit-identical after the merge: register cells, digest
sets, and per-handle row reads.

Worker counts 1/2/4 cover the degenerate single-shard case, the minimal
merge, and shards smaller than the batch size; trace lengths are chosen
indivisible by the worker counts so the uneven tail is always exercised.
The hot-flow workload makes one flow's packets land in *every* shard, which
is the hard case for merge laws (its bucket is updated by all workers).
"""

import itertools

import numpy as np
import pytest

import repro.core.task as task_mod
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import Trace
from repro.traffic.flows import KEY_SRC_IP
from repro.traffic.packet import Packet


def _task_catalog(rng):
    """Candidate tasks exercising every op / strategy / sampling / alarm."""
    return [
        MeasurementTask(  # Cond-ADD with a data-plane alarm (replay law)
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=512,
            depth=3,
            algorithm="cms",
            threshold=int(rng.integers(50, 200)),
        ),
        MeasurementTask(  # AND-OR (bitmap distinct counting)
            key=KEY_SRC_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=1024,
            depth=1,
            algorithm="hll",
        ),
        MeasurementTask(  # probabilistic execution on a filtered slice
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=256,
            depth=2,
            algorithm="cms",
            filter=TaskFilter.of(protocol=(6, 8)),
            sample_prob=0.5,
        ),
        MeasurementTask(  # MAX via SuMax's conservative update
            key=KEY_SRC_IP,
            attribute=AttributeSpec.maximum("queue_length"),
            memory=256,
            depth=2,
            algorithm="sumax_max",
        ),
        MeasurementTask(  # coupon collection (AND-OR + one-hot preprocessing)
            key=KEY_SRC_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=512,
            depth=1,
            algorithm="beaucoup",
            threshold=64,
        ),
    ]


def _trace(rng, num_packets=3001, num_flows=300) -> Trace:
    flows = rng.integers(0, 1 << 32, size=num_flows, dtype=np.uint64)
    weights = 1.0 / np.arange(1, num_flows + 1) ** 1.1  # zipf-ish skew
    weights /= weights.sum()
    picks = rng.choice(num_flows, size=num_packets, p=weights)
    packets = [
        Packet(
            src_ip=int(flows[f]),
            dst_ip=int(rng.integers(0, 1 << 32)),
            src_port=int(rng.integers(0, 1 << 16)),
            dst_port=443,
            protocol=int(rng.choice([6, 17])),
            pkt_bytes=int(rng.integers(64, 1500)),
            timestamp=i,
            queue_length=int(rng.integers(0, 1 << 12)),
        )
        for i, f in enumerate(picks)
    ]
    return Trace.from_packets(packets)


def _deploy(tasks, strategy):
    # Task ids are process-global and feed the sampling hash; pin the counter
    # so both deployments are byte-identical.
    task_mod._task_ids = itertools.count(1)
    controller = FlyMonController(
        num_groups=4,
        register_size=1 << 12,
        place_on_pipeline=True,
        strategy=strategy,
    )
    return controller, [controller.add_task(task) for task in tasks]


def _assert_identical(scalar, sharded, scalar_handles, sharded_handles):
    for group_s, group_p in zip(scalar.groups, sharded.groups):
        for cmu_s, cmu_p in zip(group_s.cmus, group_p.cmus):
            np.testing.assert_array_equal(
                cmu_s.register.read_range(0, cmu_s.register_size),
                cmu_p.register.read_range(0, cmu_p.register_size),
            )
            for task_id in cmu_s.task_ids:
                assert cmu_s.peek_digests(task_id) == cmu_p.peek_digests(task_id)
    for handle_s, handle_p in zip(scalar_handles, sharded_handles):
        for row_s, row_p in zip(handle_s.read_rows(), handle_p.read_rows()):
            np.testing.assert_array_equal(row_s, row_p)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("strategy", ["tcam", "shift"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_random_task_mix_scalar_vs_sharded(seed, strategy, workers):
    rng = np.random.default_rng(seed)
    catalog = _task_catalog(rng)
    picks = rng.choice(
        len(catalog), size=int(rng.integers(2, len(catalog) + 1)), replace=False
    )
    tasks = [catalog[i] for i in sorted(picks)]
    trace = _trace(rng)

    scalar, scalar_handles = _deploy(tasks, strategy)
    sharded, sharded_handles = _deploy(tasks, strategy)

    scalar.process_trace(trace, batch_size=None)
    batch_size = int(rng.choice([17, 256, 1000]))
    report = sharded.process_trace_sharded(
        trace, workers=workers, batch_size=batch_size, backend="serial"
    )
    assert report.fallback is None
    assert report.shards == min(workers, len(trace))

    _assert_identical(scalar, sharded, scalar_handles, sharded_handles)


@pytest.mark.parametrize("workers", [2, 4])
def test_hot_flow_crossing_shard_boundaries(workers):
    """One flow dominates every shard: its buckets are written by all
    workers, the deepest possible cross-shard merge for each law."""
    rng = np.random.default_rng(99)
    tasks = [
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=128,
            depth=3,
            algorithm="cms",
            threshold=100,
        ),
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.maximum("queue_length"),
            memory=128,
            depth=2,
            algorithm="sumax_max",
        ),
    ]
    hot = int(rng.integers(0, 1 << 32))
    cold = rng.integers(0, 1 << 32, size=64, dtype=np.uint64)
    packets = [
        Packet(
            src_ip=hot if i % 3 else int(cold[i % 64]),
            dst_ip=1,
            src_port=2,
            dst_port=3,
            timestamp=i,
            queue_length=int(rng.integers(0, 1 << 12)),
        )
        for i in range(1999)
    ]
    trace = Trace.from_packets(packets)

    scalar, scalar_handles = _deploy(tasks, "tcam")
    sharded, sharded_handles = _deploy(tasks, "tcam")
    scalar.process_trace(trace, batch_size=None)
    report = sharded.process_trace_sharded(
        trace, workers=workers, batch_size=256, backend="serial"
    )
    assert report.fallback is None

    _assert_identical(scalar, sharded, scalar_handles, sharded_handles)
    hot_count = sum(1 for i in range(1999) if i % 3)
    assert sharded_handles[0].algorithm.query((hot,)) == hot_count


def test_sixteen_bit_saturating_counters_use_replay():
    """Narrow armed counters near saturation: the replay law must reproduce
    the scalar path's exact saturation behaviour across shard boundaries."""
    task = MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=64,
        depth=2,
        algorithm="cms",
        threshold=50,
    )
    hot = 0xDEADBEEF
    packets = [
        Packet(src_ip=hot, dst_ip=1, src_port=2, dst_port=3, timestamp=i)
        for i in range(700)
    ]
    trace = Trace.from_packets(packets)

    def deploy():
        task_mod._task_ids = itertools.count(1)
        controller = FlyMonController(
            num_groups=2,
            register_size=1 << 10,
            bucket_bits=16,
            place_on_pipeline=False,
        )
        return controller, controller.add_task(task)

    scalar, scalar_handle = deploy()
    scalar.process_trace(trace, batch_size=None)
    sharded, sharded_handle = deploy()
    report = sharded.process_trace_sharded(trace, workers=4, backend="serial")
    assert report.fallback is None
    _assert_identical(scalar, sharded, [scalar_handle], [sharded_handle])


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_random_task_mix_scalar_vs_persistent_pool(workers):
    """The persistent pool's warm replicas must stay bit-identical to the
    scalar reference across consecutive runs: run 1 builds the replicas,
    run 2 reuses them with only register resets and delta sync between."""
    rng = np.random.default_rng(7)
    catalog = _task_catalog(rng)
    tasks = [catalog[0], catalog[1], catalog[3]]
    trace = _trace(rng)

    scalar, scalar_handles = _deploy(tasks, "tcam")
    pooled, pooled_handles = _deploy(tasks, "tcam")
    try:
        for run in range(2):
            scalar.process_trace(trace, batch_size=None)
            report = pooled.process_trace_sharded(
                trace,
                workers=workers,
                batch_size=256,
                backend="process",
                runtime="persistent",
            )
            assert report.fallback is None
            assert report.runtime == "persistent"
            if run == 1:
                assert all(
                    t["build_ms"] == 0.0 for t in report.shard_timings
                )
            _assert_identical(scalar, pooled, scalar_handles, pooled_handles)
    finally:
        pooled.close_shard_pool()


def test_persistent_exports_bit_identical_in_exact_mode():
    """exact_exports through the pool: tracked=None makes every worker a
    pure journal recorder, and the spliced export columns must equal a
    sequential reference's bit for bit."""
    rng = np.random.default_rng(21)
    tasks = [_task_catalog(rng)[0], _task_catalog(rng)[1]]
    trace = _trace(rng, num_packets=1501)

    reference, _ = _deploy(tasks, "tcam")
    ref = reference.process_trace_sharded(
        trace, workers=1, backend="serial", collect_exports=True
    )
    pooled, _ = _deploy(tasks, "tcam")
    try:
        report = pooled.process_trace_sharded(
            trace,
            workers=4,
            backend="process",
            runtime="persistent",
            exact_exports=True,
        )
        assert report.runtime == "persistent"
        assert set(report.exports) == set(ref.exports)
        for name in sorted(ref.exports):
            np.testing.assert_array_equal(
                report.exports[name], ref.exports[name], err_msg=name
            )
    finally:
        pooled.close_shard_pool()


def test_exports_bit_identical_in_exact_mode():
    """exact_exports replays every task, so the spliced PHV export columns
    must equal a sequential batched run's columns bit for bit."""
    rng = np.random.default_rng(21)
    tasks = [_task_catalog(rng)[0], _task_catalog(rng)[1]]
    trace = _trace(rng, num_packets=1501)

    reference, _ = _deploy(tasks, "tcam")
    ref = reference.process_trace_sharded(
        trace, workers=1, backend="serial", collect_exports=True
    )
    sharded, _ = _deploy(tasks, "tcam")
    report = sharded.process_trace_sharded(
        trace, workers=4, backend="serial", exact_exports=True
    )
    assert set(report.exports) == set(ref.exports)
    for name in sorted(ref.exports):
        np.testing.assert_array_equal(report.exports[name], ref.exports[name], err_msg=name)
