"""Differential harness: the batched engine vs the scalar reference path.

Random mixes of tasks covering the reduced operation set (Cond-ADD, MAX,
AND-OR), both address-translation strategies, probabilistic execution, and
data-plane alarms are deployed twice -- one controller replays the trace
per packet, the other in column batches -- and every observable must be
bit-identical: register cells, digest sets, and per-handle row reads.

The workloads draw full-range 32-bit field values on purpose: hash masks
keep the *most-significant* bits (prefix semantics), so low-range synthetic
values would collapse every key into one bucket and hide ordering bugs.
Heavy flow skew is also deliberate -- duplicate-key collisions inside one
batch are the hard case for read-modify-write serialization.
"""

import itertools

import numpy as np
import pytest

import repro.core.task as task_mod
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import Trace
from repro.traffic.flows import KEY_SRC_IP
from repro.traffic.packet import Packet


def _task_catalog(rng):
    """Candidate tasks exercising every op / strategy / sampling / alarm."""
    return [
        MeasurementTask(  # Cond-ADD with a data-plane alarm
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=512,
            depth=3,
            algorithm="cms",
            threshold=int(rng.integers(50, 200)),
        ),
        MeasurementTask(  # AND-OR (bitmap distinct counting)
            key=KEY_SRC_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=1024,
            depth=1,
            algorithm="hll",
        ),
        MeasurementTask(  # probabilistic execution on a filtered slice
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=256,
            depth=2,
            algorithm="cms",
            filter=TaskFilter.of(protocol=(6, 8)),
            sample_prob=0.5,
        ),
        MeasurementTask(  # MAX via SuMax's conservative update
            key=KEY_SRC_IP,
            attribute=AttributeSpec.maximum("queue_length"),
            memory=256,
            depth=2,
            algorithm="sumax_max",
        ),
        MeasurementTask(  # coupon collection (AND-OR + one-hot preprocessing)
            key=KEY_SRC_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=512,
            depth=1,
            algorithm="beaucoup",
            threshold=64,
        ),
    ]


def _trace(rng, num_packets=4000, num_flows=300) -> Trace:
    flows = rng.integers(0, 1 << 32, size=num_flows, dtype=np.uint64)
    weights = 1.0 / np.arange(1, num_flows + 1) ** 1.1  # zipf-ish skew
    weights /= weights.sum()
    picks = rng.choice(num_flows, size=num_packets, p=weights)
    packets = [
        Packet(
            src_ip=int(flows[f]),
            dst_ip=int(rng.integers(0, 1 << 32)),
            src_port=int(rng.integers(0, 1 << 16)),
            dst_port=443,
            protocol=int(rng.choice([6, 17])),
            pkt_bytes=int(rng.integers(64, 1500)),
            timestamp=i,
            queue_length=int(rng.integers(0, 1 << 12)),
        )
        for i, f in enumerate(picks)
    ]
    return Trace.from_packets(packets)


def _deploy(tasks, strategy):
    # Task ids are process-global and feed the sampling hash; pin the counter
    # so both deployments are byte-identical.
    task_mod._task_ids = itertools.count(1)
    controller = FlyMonController(
        num_groups=4,
        register_size=1 << 12,
        place_on_pipeline=True,
        strategy=strategy,
    )
    return controller, [controller.add_task(task) for task in tasks]


def _assert_identical(scalar, batched, scalar_handles, batched_handles):
    for group_s, group_b in zip(scalar.groups, batched.groups):
        for cmu_s, cmu_b in zip(group_s.cmus, group_b.cmus):
            np.testing.assert_array_equal(
                cmu_s.register.read_range(0, cmu_s.register_size),
                cmu_b.register.read_range(0, cmu_b.register_size),
            )
            for task_id in cmu_s.task_ids:
                assert cmu_s.peek_digests(task_id) == cmu_b.peek_digests(task_id)
    for handle_s, handle_b in zip(scalar_handles, batched_handles):
        for row_s, row_b in zip(handle_s.read_rows(), handle_b.read_rows()):
            np.testing.assert_array_equal(row_s, row_b)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("strategy", ["tcam", "shift"])
def test_random_task_mix_scalar_vs_batch(seed, strategy):
    rng = np.random.default_rng(seed)
    catalog = _task_catalog(rng)
    picks = rng.choice(
        len(catalog), size=int(rng.integers(2, len(catalog) + 1)), replace=False
    )
    tasks = [catalog[i] for i in sorted(picks)]
    trace = _trace(rng)

    scalar, scalar_handles = _deploy(tasks, strategy)
    batched, batched_handles = _deploy(tasks, strategy)

    scalar.process_trace(trace, batch_size=None)
    batch_size = int(rng.choice([1, 17, 256, 1000, 8192]))
    batched.process_trace(trace, batch_size=batch_size)

    _assert_identical(scalar, batched, scalar_handles, batched_handles)


def test_single_hot_flow_duplicate_collisions():
    """Every packet hits the same buckets: the deepest possible in-batch
    read-modify-write chain must still serialize exactly."""
    rng = np.random.default_rng(99)
    task = MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=128,
        depth=3,
        algorithm="cms",
        threshold=100,
    )
    hot = int(rng.integers(0, 1 << 32))
    packets = [
        Packet(src_ip=hot, dst_ip=1, src_port=2, dst_port=3, timestamp=i)
        for i in range(2000)
    ]
    trace = Trace.from_packets(packets)

    scalar, scalar_handles = _deploy([task], "tcam")
    batched, batched_handles = _deploy([task], "tcam")
    scalar.process_trace(trace, batch_size=None)
    batched.process_trace(trace, batch_size=512)

    _assert_identical(scalar, batched, scalar_handles, batched_handles)
    assert batched_handles[0].algorithm.query((hot,)) == 2000
