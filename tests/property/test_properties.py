"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.address_translation import ShiftTranslation, TcamTranslation
from repro.core.memory import BuddyAllocator, MemRange, OutOfMemoryError, round_memory
from repro.dataplane.hashing import HashFunction
from repro.dataplane.tables import range_to_ternary
from repro.sketches import BloomFilter, CountMinSketch, HyperLogLog, SuMaxSum
from repro.traffic.flows import FlowKeyDef


# ---------------------------------------------------------------------------
# TCAM range expansion
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=200)
def test_range_expansion_exactly_covers_range(data):
    width = data.draw(st.integers(min_value=1, max_value=12))
    lo = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    hi = data.draw(st.integers(min_value=lo, max_value=(1 << width) - 1))
    entries = range_to_ternary(lo, hi, width)
    assert len(entries) <= max(1, 2 * width - 2)
    for v in range(1 << width):
        assert any(e.matches(v) for e in entries) == (lo <= v <= hi)


# ---------------------------------------------------------------------------
# Address translation
# ---------------------------------------------------------------------------

register_sizes = st.sampled_from([64, 256, 1024, 4096])


@given(st.data())
@settings(max_examples=200)
def test_translations_land_in_partition(data):
    size = data.draw(register_sizes)
    length = data.draw(st.sampled_from([size >> s for s in range(0, 6) if size >> s >= 2]))
    base = data.draw(st.integers(min_value=0, max_value=size // length - 1)) * length
    address = data.draw(st.integers(min_value=0, max_value=size - 1))
    mem = MemRange(base, length)
    for cls in (ShiftTranslation, TcamTranslation):
        assert mem.contains(cls(size, mem).translate(address))


@given(st.data())
@settings(max_examples=100)
def test_shift_translation_is_uniform(data):
    size = data.draw(st.sampled_from([64, 128, 256]))
    length = data.draw(st.sampled_from([size // 2, size // 4]))
    mem = MemRange(0, length)
    tr = ShiftTranslation(size, mem)
    hits = [0] * length
    for addr in range(size):
        hits[tr.translate(addr) - mem.base] += 1
    assert len(set(hits)) == 1


# ---------------------------------------------------------------------------
# Buddy allocator
# ---------------------------------------------------------------------------


@given(st.lists(st.sampled_from([32, 64, 128, 256]), min_size=1, max_size=24))
@settings(max_examples=100)
def test_allocator_never_overlaps_and_survives_churn(lengths):
    alloc = BuddyAllocator(1024, max_partitions=32)
    live = []
    for i, length in enumerate(lengths):
        try:
            r = alloc.allocate(length)
        except OutOfMemoryError:
            if live:
                alloc.free(live.pop(0))
            continue
        for other in live:
            assert r.end <= other.base or other.end <= r.base
        live.append(r)
        if i % 3 == 2 and live:
            alloc.free(live.pop())
    # Invariant: allocated + free == register size.
    allocated = sum(r.length for r in alloc.allocated_ranges)
    assert allocated + alloc.free_buckets == 1024


@given(st.integers(min_value=1, max_value=10**6))
def test_round_memory_accurate_never_shrinks(requested):
    rounded = round_memory(requested, "accurate")
    assert rounded >= requested
    assert rounded & (rounded - 1) == 0


@given(st.integers(min_value=1, max_value=10**6))
def test_round_memory_efficient_within_factor_two(requested):
    rounded = round_memory(requested, "efficient")
    assert rounded & (rounded - 1) == 0
    assert requested / 2 <= rounded <= requested * 2


# ---------------------------------------------------------------------------
# Hashing (Appendix B: collision behaviour)
# ---------------------------------------------------------------------------


@given(st.binary(min_size=0, max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
def test_hash_is_pure(data, seed):
    fn = HashFunction(seed)
    assert fn.hash_bytes(data) == fn.hash_bytes(data)
    assert 0 <= fn.hash_bytes(data) < 2**32


@given(st.sets(st.integers(min_value=0, max_value=2**31), min_size=100, max_size=300))
@settings(max_examples=20)
def test_collision_rate_matches_appendix_b(keys):
    """P(collision) ~ 1 - e^{-n/m} for n keys in an m-sized digest domain."""
    m = 1 << 12
    fn = HashFunction(0xAB)
    digests = [fn.hash_int(k) % m for k in keys]
    collided = len(digests) - len(set(digests))
    n = len(keys)
    expected = n * (1 - math.exp(-n / m))
    # Loose bound: within 5x + slack of the analytic expectation.
    assert collided <= 5 * expected + 5


# ---------------------------------------------------------------------------
# Sketch invariants
# ---------------------------------------------------------------------------

key_lists = st.lists(
    st.integers(min_value=0, max_value=200), min_size=1, max_size=500
)


@given(key_lists)
@settings(max_examples=50)
def test_cms_one_sided_error(keys):
    cms = CountMinSketch(width=64, depth=3)
    truth = {}
    for k in keys:
        cms.update(k)
        truth[k] = truth.get(k, 0) + 1
    for k, count in truth.items():
        assert cms.query(k) >= count


@given(key_lists)
@settings(max_examples=50)
def test_sumax_bounded_by_cms(keys):
    cms = CountMinSketch(width=64, depth=3, seed=0xD)
    sm = SuMaxSum(width=64, depth=3, seed=0xD)
    truth = {}
    for k in keys:
        cms.update(k)
        sm.update(k)
        truth[k] = truth.get(k, 0) + 1
    for k, count in truth.items():
        assert count <= sm.query(k) <= cms.query(k)


@given(key_lists)
@settings(max_examples=50)
def test_bloom_no_false_negatives(keys):
    bf = BloomFilter(num_bits=2048, num_hashes=3)
    for k in keys:
        bf.add(("item", k))
    assert all(("item", k) in bf for k in keys)


@given(st.sets(st.integers(), min_size=1, max_size=1000))
@settings(max_examples=30)
def test_hll_estimate_scales_with_cardinality(keys):
    hll = HyperLogLog(precision_bits=10)
    for k in keys:
        hll.update(k)
    estimate = hll.estimate()
    assert 0.5 * len(keys) <= estimate <= 2.0 * len(keys)


# ---------------------------------------------------------------------------
# Flow keys
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=32),
)
def test_prefix_extraction_idempotent(ip_value, prefix):
    key = FlowKeyDef.of(("src_ip", prefix))
    flow = key.extract({"src_ip": ip_value})
    reconstructed = flow[0] << (32 - prefix)
    assert key.extract({"src_ip": reconstructed}) == flow
