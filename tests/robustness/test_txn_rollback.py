"""Every control-plane mutation is transactional: an injected failure at any
fault site rolls the controller back to bit-identical pre-call state."""

import pytest

from repro.core.compression import KeyExhaustedError
from repro.core.controller import FlyMonController, PlacementError
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.core.txn import (
    ReconfigTransaction,
    STATE_COMMITTED,
    STATE_ROLLED_BACK,
    TxnRollbackError,
)
from repro.faults import (
    FAULTS,
    FaultError,
    SITE_ALLOC_EXHAUSTED,
    SITE_KEY_DENIED,
    SITE_RULE_APPLY,
)
from repro.traffic.flows import KEY_SRC_IP

#: Exception types an aborted reconfiguration may surface, depending on site.
ABORTS = (FaultError, PlacementError, KeyExhaustedError)


def freq_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


def snapshot(controller):
    """Everything a failed reconfiguration must leave untouched."""
    return (
        controller.control_digest(),
        controller.free_buckets(),
        {g.group_id: g.keys.refcounts() for g in controller.groups},
        controller.runtime.deployments(),
    )


@pytest.fixture
def deployed():
    controller = FlyMonController(num_groups=3)
    handle = controller.add_task(
        freq_task(filter=TaskFilter.of(src_ip=(0x0A000000, 8)))
    )
    # Hit counters are cumulative; zero them so arms index from this point.
    FAULTS.reset()
    return controller, handle


class TestAddTaskRollback:
    @pytest.mark.parametrize(
        "site,hit",
        [
            (SITE_RULE_APPLY, 1),
            (SITE_RULE_APPLY, 2),
            (SITE_RULE_APPLY, 4),
            (SITE_ALLOC_EXHAUSTED, 1),
            (SITE_ALLOC_EXHAUSTED, 2),
            (SITE_ALLOC_EXHAUSTED, 3),
            (SITE_KEY_DENIED, 1),
        ],
    )
    def test_every_site_rolls_back_bit_identically(self, deployed, site, hit):
        controller, _ = deployed
        before = snapshot(controller)
        FAULTS.arm(site, hit=hit)
        with pytest.raises(ABORTS):
            controller.add_task(
                freq_task(filter=TaskFilter.of(src_ip=(0x14000000, 8)))
            )
        assert FAULTS.fired(), "the armed fault must actually fire"
        assert snapshot(controller) == before
        assert controller.verify_integrity().ok

    def test_controller_still_usable_after_rollback(self, deployed):
        controller, _ = deployed
        FAULTS.arm(SITE_RULE_APPLY, hit=3)
        probe = freq_task(filter=TaskFilter.of(src_ip=(0x14000000, 8)))
        with pytest.raises(ABORTS):
            controller.add_task(probe)
        FAULTS.disarm()
        handle = controller.add_task(probe)
        assert handle.task_id in {h.task_id for h in controller.tasks}
        assert controller.verify_integrity().ok


class TestFilterUpdateRollback:
    def test_failure_on_row_2_of_3_keeps_all_rows_on_old_filter(self, deployed):
        controller, handle = deployed
        assert len(handle.rows) == 3
        old_filter = handle.task.filter
        before = snapshot(controller)
        FAULTS.arm(SITE_RULE_APPLY, hit=2)  # row 1 applies, row 2 fails
        new_filter = TaskFilter.of(src_ip=(0xC0000000, 8))
        with pytest.raises(FaultError):
            controller.update_task_filter(handle, new_filter)
        assert handle.task.filter == old_filter
        for row in handle.rows:
            assert row.cmu.config(handle.task_id).filter == old_filter
        assert snapshot(controller) == before
        assert controller.verify_integrity().ok
        # The same update succeeds once the fault is gone.
        controller.update_task_filter(handle, new_filter)
        assert handle.task.filter == new_filter
        for row in handle.rows:
            assert row.cmu.config(handle.task_id).filter == new_filter


class TestSplitTaskRollback:
    def test_all_or_nothing(self):
        controller = FlyMonController(num_groups=3)
        task = freq_task(filter=TaskFilter.of(src_ip=(0x0A000000, 8)))
        # Measure how many rule applications one such deployment needs, so
        # the armed hit lands on the *second* subtask's first rule.
        probe = controller.add_task(task)
        rules_per_subtask = probe.install_report.rules_installed
        controller.remove_task(probe)
        before = snapshot(controller)
        FAULTS.reset()
        FAULTS.arm(SITE_RULE_APPLY, hit=rules_per_subtask + 1)
        with pytest.raises(FaultError):
            controller.add_split_task(task)
        assert FAULTS.fired()
        assert controller.tasks == []
        assert snapshot(controller) == before
        assert controller.verify_integrity().ok


class TestResizeRestore:
    def test_failed_resize_restores_original_deployment(self):
        controller = FlyMonController(num_groups=1)
        handles = [
            controller.add_task(
                freq_task(
                    memory=16_384,
                    filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
                )
            )
            for i in range(4)  # 4 x 16K rows fill each 64K register
        ]
        victim = handles[0]
        before = snapshot(controller)
        with pytest.raises(PlacementError) as excinfo:
            controller.resize_task(victim, 32_768)
        assert excinfo.value.restored_handle is victim
        assert snapshot(controller) == before
        assert victim.task_id in {h.task_id for h in controller.tasks}
        assert victim.task.memory == 16_384
        assert controller.verify_integrity().ok

    def test_restored_resize_emits_telemetry(self):
        from repro import telemetry
        from repro.telemetry import EV_TASK_RESIZE, EV_TXN_ROLLBACK

        controller = FlyMonController(num_groups=1)
        handles = [
            controller.add_task(
                freq_task(
                    memory=16_384,
                    filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
                )
            )
            for i in range(4)
        ]
        telemetry.reset()
        telemetry.enable()
        try:
            with pytest.raises(PlacementError):
                controller.resize_task(handles[0], 32_768)
            resizes = telemetry.TELEMETRY.events.of_type(EV_TASK_RESIZE)
            assert [e.data["strategy"] for e in resizes] == ["restored"]
            assert telemetry.TELEMETRY.events.of_type(EV_TXN_ROLLBACK)
            assert "flymon_rollbacks_total" in telemetry.to_prometheus(
                telemetry.TELEMETRY.registry
            )
        finally:
            telemetry.disable()
            telemetry.reset()


class TestReconfigTransaction:
    def test_rollback_runs_undo_log_in_reverse(self):
        order = []
        txn = ReconfigTransaction("t")
        txn.record("first", lambda: order.append("first"))
        txn.record("second", lambda: order.append("second"))
        txn.rollback()
        assert order == ["second", "first"]
        assert txn.state == STATE_ROLLED_BACK
        # Rolling back twice is a no-op, not a double-undo.
        txn.rollback()
        assert order == ["second", "first"]

    def test_commit_discards_undo_log(self):
        order = []
        txn = ReconfigTransaction("t")
        txn.record("undo", lambda: order.append("undo"))
        txn.commit()
        assert txn.state == STATE_COMMITTED
        txn.rollback()
        assert order == []

    def test_context_manager_rolls_back_on_exception(self):
        order = []
        with pytest.raises(ValueError):
            with ReconfigTransaction("t") as txn:
                txn.record("undo", lambda: order.append("undo"))
                raise ValueError("boom")
        assert order == ["undo"]
        assert txn.state == STATE_ROLLED_BACK

    def test_failing_undo_action_raises_rollback_error(self):
        def bad():
            raise RuntimeError("undo failed")

        txn = ReconfigTransaction("t")
        txn.record("good", lambda: None)
        txn.record("bad", bad)
        with pytest.raises(TxnRollbackError) as excinfo:
            txn.rollback()
        assert "bad" in str(excinfo.value)

    def test_closed_transaction_rejects_new_entries(self):
        txn = ReconfigTransaction("t")
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.record("late", lambda: None)
