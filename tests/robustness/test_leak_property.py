"""Property tests: forced failures never leak memory, keys, or rules.

The schedule (seed, rounds) comes from the ``FLYMON_FAULTS`` options when
the CI fault leg sets them, so the same suite scales from a quick local run
to the leg's longer randomized sweep.
"""

import random

import pytest

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.faults import (
    FAULTS,
    SITE_ALLOC_EXHAUSTED,
    SITE_KEY_DENIED,
    SITE_RULE_APPLY,
)
from repro.traffic.flows import KEY_SRC_IP

#: (site, highest meaningful hit index for one cms add_task).
SITES = (
    (SITE_RULE_APPLY, 8),
    (SITE_ALLOC_EXHAUSTED, 3),
    (SITE_KEY_DENIED, 1),
)


def freq_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


def snapshot(controller):
    return (
        controller.control_digest(),
        controller.free_buckets(),
        {g.group_id: g.keys.refcounts() for g in controller.groups},
        controller.runtime.deployments(),
    )


def steady(snap):
    """``snap`` minus the monotonic installed-rule counter: two successful
    filter updates (apply + undo) legitimately grow ``total_rules`` while
    leaving the measurement state bit-identical."""
    digest, free, refs, deps = snap
    return (digest[:3], free, refs, deps)


def test_randomized_fault_rounds_never_leak(fault_schedule):
    seed, rounds = fault_schedule
    rng = random.Random(seed)
    controller = FlyMonController(num_groups=3)
    for i, algorithm in enumerate(("cms", "tower")):
        controller.add_task(
            freq_task(
                algorithm=algorithm,
                filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
            )
        )
    baseline = snapshot(controller)
    aborted = survived = 0
    for n in range(rounds):
        site, max_hit = SITES[rng.randrange(len(SITES))]
        hit = rng.randint(1, max_hit)
        FAULTS.reset()
        FAULTS.arm(site, hit=hit)
        probe = freq_task(
            memory=2048,
            filter=TaskFilter.of(src_ip=((100 + (n % 100)) << 24, 8)),
        )
        try:
            handle = controller.add_task(probe)
        except Exception:
            aborted += 1
            assert FAULTS.fired(), f"round {n}: abort without injected fault"
        else:
            # The arm outlived the call (hit index above the call's hit
            # count); removing the probe must return to the same state.
            survived += 1
            FAULTS.disarm()
            controller.remove_task(handle)
        assert snapshot(controller) == baseline, f"round {n}: {site}@{hit}"
        report = controller.verify_integrity()
        assert report.ok, report.describe()
    assert aborted + survived == rounds
    assert aborted > 0, "the schedule never fired a fault; widen hit ranges"


def test_mixed_reconfig_failures_preserve_free_map(fault_schedule):
    """Failures across add/remove/filter/resize keep the free-bucket map and
    key availability equal to their pre-call snapshots."""
    seed, rounds = fault_schedule
    rng = random.Random(seed ^ 0x5EED)
    controller = FlyMonController(num_groups=3)
    handles = [
        controller.add_task(
            freq_task(filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)))
        )
        for i in range(3)
    ]
    for n in range(max(5, rounds // 2)):
        before = snapshot(controller)
        site, max_hit = SITES[rng.randrange(len(SITES))]
        FAULTS.reset()
        FAULTS.arm(site, hit=rng.randint(1, max_hit))
        op = rng.randrange(2)
        try:
            if op == 0:
                controller.add_task(
                    freq_task(
                        memory=2048,
                        filter=TaskFilter.of(src_ip=((200 + n) % 250 << 24, 8)),
                    )
                )
            else:
                victim = handles[rng.randrange(len(handles))]
                controller.update_task_filter(
                    victim,
                    TaskFilter.of(src_ip=(victim.task.filter.prefixes[0][1][0], 9)),
                )
        except Exception:
            assert snapshot(controller) == before, f"round {n} leaked"
        else:
            # Survivable round: undo the mutation to restore the baseline.
            FAULTS.disarm()
            if op == 0:
                controller.remove_task(controller.tasks[-1])
            else:
                controller.update_task_filter(
                    victim,
                    TaskFilter(
                        tuple(
                            (name, (value, 8))
                            for name, (value, _plen) in victim.task.filter.prefixes
                        )
                    ),
                )
            assert steady(snapshot(controller)) == steady(before), (
                f"round {n} undo drifted"
            )
        assert controller.verify_integrity().ok
