"""The integrity auditor and the checkpoint/restore round-trip."""

import json

import pytest

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


def freq_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


@pytest.fixture
def deployed():
    controller = FlyMonController(
        num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
    )
    handles = [
        controller.add_task(
            freq_task(filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)))
        )
        for i in range(3)
    ]
    return controller, handles


class TestVerifyIntegrity:
    def test_clean_deployment_passes(self, deployed):
        controller, _ = deployed
        report = controller.verify_integrity()
        assert report.ok
        assert report.checks > 0
        assert "OK" in report.describe()

    def test_empty_controller_passes(self):
        assert FlyMonController(num_groups=2).verify_integrity().ok

    def test_detects_leaked_allocation(self, deployed):
        controller, handles = deployed
        # Free a claimed range behind the controller's back: the handle
        # still claims it, so the audit must flag the divergence.
        cmu, mem = handles[0]._mem[0]
        controller._allocators[(cmu.group_id, cmu.index)].free(mem)
        report = controller.verify_integrity()
        assert not report.ok
        assert any("alloc" in p or "claim" in p for p in report.problems)

    def test_detects_refcount_drift(self, deployed):
        controller, handles = deployed
        group, grant = handles[0]._grants[0]
        group.keys.release(grant.selector)
        report = controller.verify_integrity()
        assert not report.ok

    def test_detects_orphan_cmu_task(self, deployed):
        controller, handles = deployed
        row = handles[0].rows[0]
        row.cmu.remove_task(handles[0].task_id)
        report = controller.verify_integrity()
        assert not report.ok


class TestCheckpointRestore:
    def test_checkpoint_is_json_safe(self, deployed):
        controller, _ = deployed
        state = controller.checkpoint()
        rehydrated = json.loads(json.dumps(state))
        assert rehydrated["version"] == 1
        assert len(rehydrated["tasks"]) == 3

    def test_roundtrip_restores_equivalent_controller(self, deployed):
        controller, _ = deployed
        state = json.loads(json.dumps(controller.checkpoint()))
        restored = FlyMonController.from_checkpoint(state)
        assert restored.verify_integrity().ok
        assert restored.free_buckets() == controller.free_buckets()
        assert len(restored.tasks) == len(controller.tasks)
        # Same tasks modulo fresh task ids (replay order is preserved).
        assert [h.task.describe() for h in restored.tasks] == [
            h.task.describe() for h in controller.tasks
        ]
        assert {g.group_id: g.keys.refcounts() for g in restored.groups} == {
            g.group_id: g.keys.refcounts() for g in controller.groups
        }

    def test_restored_controller_accepts_new_work(self, deployed):
        controller, _ = deployed
        restored = FlyMonController.from_checkpoint(controller.checkpoint())
        handle = restored.add_task(
            freq_task(filter=TaskFilter.of(src_ip=(0x64000000, 8)))
        )
        restored.remove_task(handle)
        assert restored.verify_integrity().ok

    def test_checkpoint_emits_telemetry(self, deployed):
        from repro import telemetry
        from repro.telemetry import EV_CHECKPOINT, EV_RESTORE

        controller, _ = deployed
        telemetry.reset()
        telemetry.enable()
        try:
            state = controller.checkpoint()
            FlyMonController.from_checkpoint(state)
            assert telemetry.TELEMETRY.events.of_type(EV_CHECKPOINT)
            assert telemetry.TELEMETRY.events.of_type(EV_RESTORE)
        finally:
            telemetry.disable()
            telemetry.reset()


def placement(handle):
    return [
        [row.group.group_id, row.cmu.index, row.mem.base, row.mem.length]
        for row in handle.rows
    ]


class TestHistoryReplay:
    """Checkpoints replay the committed reconfiguration history, so a
    restore reproduces the exact live placement -- even after removals and
    resizes left allocator holes that a tasks-only replay would fill
    differently."""

    def test_restore_preserves_placement_after_churn(self):
        controller = FlyMonController(num_groups=3)
        a = controller.add_task(freq_task())
        b = controller.add_task(freq_task(memory=2048, key=KEY_DST_IP))
        c = controller.add_task(freq_task(memory=1024))
        controller.remove_task(b)
        d = controller.add_task(freq_task(memory=8192, key=KEY_DST_IP))
        controller.resize_task(c, 2048)

        state = json.loads(json.dumps(controller.checkpoint()))
        assert "history" in state
        restored = FlyMonController.from_checkpoint(state)
        assert restored.verify_integrity().ok
        assert [placement(h) for h in restored.tasks] == [
            placement(h) for h in controller.tasks
        ]
        # (control_digest differs only by the fresh task-id labels)
        assert restored.free_buckets() == controller.free_buckets()
        assert {g.group_id: g.keys.refcounts() for g in restored.groups} == {
            g.group_id: g.keys.refcounts() for g in controller.groups
        }

    def test_caller_owned_transaction_marks_history_incomplete(self):
        from repro.core.controller import ReconfigTransaction

        controller = FlyMonController(num_groups=2)
        with ReconfigTransaction("external") as txn:
            controller.add_task(freq_task(), transaction=txn)
        state = controller.checkpoint()
        # Without a trustworthy history the checkpoint omits it and falls
        # back to the legacy final-tasks replay.
        assert "history" not in state
        restored = FlyMonController.from_checkpoint(state)
        assert restored.verify_integrity().ok
        assert len(restored.tasks) == 1

    def test_rolled_back_operations_leave_no_history(self):
        controller = FlyMonController(num_groups=2)
        controller.add_task(freq_task())
        before = json.dumps(controller.checkpoint()["history"])
        with pytest.raises(Exception):
            controller.add_task(freq_task(memory=1 << 30))
        assert json.dumps(controller.checkpoint()["history"]) == before
