"""The integrity auditor and the checkpoint/restore round-trip."""

import json

import pytest

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


def freq_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


@pytest.fixture
def deployed():
    controller = FlyMonController(
        num_groups=3, preconfigure_keys=(KEY_SRC_IP, KEY_DST_IP)
    )
    handles = [
        controller.add_task(
            freq_task(filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)))
        )
        for i in range(3)
    ]
    return controller, handles


class TestVerifyIntegrity:
    def test_clean_deployment_passes(self, deployed):
        controller, _ = deployed
        report = controller.verify_integrity()
        assert report.ok
        assert report.checks > 0
        assert "OK" in report.describe()

    def test_empty_controller_passes(self):
        assert FlyMonController(num_groups=2).verify_integrity().ok

    def test_detects_leaked_allocation(self, deployed):
        controller, handles = deployed
        # Free a claimed range behind the controller's back: the handle
        # still claims it, so the audit must flag the divergence.
        cmu, mem = handles[0]._mem[0]
        controller._allocators[(cmu.group_id, cmu.index)].free(mem)
        report = controller.verify_integrity()
        assert not report.ok
        assert any("alloc" in p or "claim" in p for p in report.problems)

    def test_detects_refcount_drift(self, deployed):
        controller, handles = deployed
        group, grant = handles[0]._grants[0]
        group.keys.release(grant.selector)
        report = controller.verify_integrity()
        assert not report.ok

    def test_detects_orphan_cmu_task(self, deployed):
        controller, handles = deployed
        row = handles[0].rows[0]
        row.cmu.remove_task(handles[0].task_id)
        report = controller.verify_integrity()
        assert not report.ok


class TestCheckpointRestore:
    def test_checkpoint_is_json_safe(self, deployed):
        controller, _ = deployed
        state = controller.checkpoint()
        rehydrated = json.loads(json.dumps(state))
        assert rehydrated["version"] == 1
        assert len(rehydrated["tasks"]) == 3

    def test_roundtrip_restores_equivalent_controller(self, deployed):
        controller, _ = deployed
        state = json.loads(json.dumps(controller.checkpoint()))
        restored = FlyMonController.from_checkpoint(state)
        assert restored.verify_integrity().ok
        assert restored.free_buckets() == controller.free_buckets()
        assert len(restored.tasks) == len(controller.tasks)
        # Same tasks modulo fresh task ids (replay order is preserved).
        assert [h.task.describe() for h in restored.tasks] == [
            h.task.describe() for h in controller.tasks
        ]
        assert {g.group_id: g.keys.refcounts() for g in restored.groups} == {
            g.group_id: g.keys.refcounts() for g in controller.groups
        }

    def test_restored_controller_accepts_new_work(self, deployed):
        controller, _ = deployed
        restored = FlyMonController.from_checkpoint(controller.checkpoint())
        handle = restored.add_task(
            freq_task(filter=TaskFilter.of(src_ip=(0x64000000, 8)))
        )
        restored.remove_task(handle)
        assert restored.verify_integrity().ok

    def test_checkpoint_emits_telemetry(self, deployed):
        from repro import telemetry
        from repro.telemetry import EV_CHECKPOINT, EV_RESTORE

        controller, _ = deployed
        telemetry.reset()
        telemetry.enable()
        try:
            state = controller.checkpoint()
            FlyMonController.from_checkpoint(state)
            assert telemetry.TELEMETRY.events.of_type(EV_CHECKPOINT)
            assert telemetry.TELEMETRY.events.of_type(EV_RESTORE)
        finally:
            telemetry.disable()
            telemetry.reset()
