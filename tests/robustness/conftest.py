"""Robustness-suite fixtures: a pristine fault injector around every test.

The CI fault leg runs the whole suite with an options-only spec such as
``FLYMON_FAULTS="seed=2026,rounds=25"``; it arms no sites globally, but the
randomized property tests read ``seed``/``rounds`` from it (via the
``fault_schedule`` fixture) so the schedule scales with the leg instead of
being hard-coded.
"""

import itertools
import os

import pytest

import repro.core.task as task_mod
from repro.faults import FAULTS, FaultSpecError, parse_spec


@pytest.fixture(autouse=True)
def clean_faults():
    """No armed sites and zeroed hit counters before and after each test."""
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture
def fault_schedule():
    """``(seed, rounds)`` from ``FLYMON_FAULTS`` options, with defaults."""
    options = {}
    spec = os.environ.get("FLYMON_FAULTS", "")
    if spec:
        try:
            _, options = parse_spec(spec)
        except FaultSpecError:
            options = {}
    return int(options.get("seed", 2026)), int(options.get("rounds", 10))


@pytest.fixture
def fresh_task_ids():
    """Deterministic task ids for digest/serialization comparisons."""
    task_mod._task_ids = itertools.count(1)
    yield
