"""Shard-worker fault recovery: crashed or hung shards are re-dispatched
serially and the merged register state stays bit-identical to a sequential
replay."""

import itertools

import numpy as np
import pytest

import repro.core.task as task_mod
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.dataplane.sharding import ShardingError, run_sharded
from repro.faults import FAULTS, SITE_SHARD_CRASH, SITE_SHARD_TIMEOUT
from repro.traffic import zipf_trace
from repro.traffic.flows import KEY_SRC_IP


def _controller(tasks, **kwargs):
    task_mod._task_ids = itertools.count(1)
    kwargs.setdefault("num_groups", 3)
    kwargs.setdefault("place_on_pipeline", False)
    controller = FlyMonController(**kwargs)
    for task in tasks:
        controller.add_task(task)
    return controller


def _cms_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 2048)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


def _assert_same_state(reference, other):
    for group_r, group_o in zip(reference.groups, other.groups):
        for cmu_r, cmu_o in zip(group_r.cmus, group_o.cmus):
            np.testing.assert_array_equal(
                cmu_r.register.read_range(0, cmu_r.register_size),
                cmu_o.register.read_range(0, cmu_o.register_size),
            )
            for task_id in cmu_r.task_ids:
                assert cmu_r.peek_digests(task_id) == cmu_o.peek_digests(task_id)


@pytest.fixture
def trace():
    return zipf_trace(num_flows=150, num_packets=2_000, seed=17)


@pytest.fixture
def reference(trace):
    controller = _controller([_cms_task()])
    controller.process_trace(trace, batch_size=None)
    return controller


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_crashed_shard_recovers_bit_identical(backend, trace, reference):
    sharded = _controller([_cms_task()])
    FAULTS.arm(SITE_SHARD_CRASH, hit=2)  # second shard dispatch fails
    report = run_sharded(sharded.groups, trace, workers=2, backend=backend)
    assert report.retries >= 1
    assert report.shard_events
    assert any(e["reason"] for e in report.shard_events)
    _assert_same_state(reference, sharded)


def test_killed_worker_process_recovers_bit_identical(trace, reference):
    """A worker killed mid-shard (os._exit) breaks the pool; every affected
    shard must be re-dispatched serially with an exact merge."""
    sharded = _controller([_cms_task()])
    FAULTS.arm(SITE_SHARD_CRASH, hit=2, arg="kill")
    report = run_sharded(sharded.groups, trace, workers=2, backend="process")
    assert report.retries >= 1
    _assert_same_state(reference, sharded)


def test_hung_shard_times_out_and_retries(monkeypatch, trace, reference):
    monkeypatch.setenv("FLYMON_SHARD_TIMEOUT", "0.2")
    sharded = _controller([_cms_task()])
    FAULTS.arm(SITE_SHARD_TIMEOUT, hit=1, arg="5.0")  # sleep >> deadline
    report = run_sharded(sharded.groups, trace, workers=2, backend="thread")
    assert report.timeouts >= 1
    assert report.retries >= 1
    assert any("timed out" in str(e["reason"]) for e in report.shard_events)
    _assert_same_state(reference, sharded)


# -- persistent-runtime recovery ---------------------------------------------
#
# The persistent pool keeps workers resident across runs, so recovery has
# two extra obligations the ephemeral runtime doesn't: a dead worker must
# be respawned (with its replica rebuilt) so the *next* run still works,
# and an in-worker exception must leave the surviving replica scrubbed
# (not half-updated).  Every scenario ends with a clean follow-up run to
# prove the pool healed.


def _pooled_run(controller, trace, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "process")
    return controller.process_trace_sharded(trace, runtime="persistent", **kwargs)


def test_pool_worker_crash_recovers_bit_identical(trace, reference):
    sharded = _controller([_cms_task()])
    try:
        FAULTS.arm(SITE_SHARD_CRASH, hit=2)  # raises inside a pool worker
        report = _pooled_run(sharded, trace)
        assert report.runtime == "persistent"
        assert report.retries >= 1
        assert report.shard_events
        _assert_same_state(reference, sharded)
        # The worker survived the exception (scrubbed, not dead) and the
        # next run through the same pool is clean; state keeps
        # accumulating in lockstep with the scalar reference.
        follow = _pooled_run(sharded, trace)
        assert follow.retries == 0
        reference.process_trace(trace, batch_size=None)
        _assert_same_state(reference, sharded)
    finally:
        sharded.close_shard_pool()


def test_pool_worker_killed_respawns_bit_identical(trace, reference):
    """os._exit in a resident worker: the shard retries serially AND the
    pool respawns the worker so the next run keeps its parallelism."""
    sharded = _controller([_cms_task()])
    try:
        FAULTS.arm(SITE_SHARD_CRASH, hit=2, arg="kill")
        report = _pooled_run(sharded, trace)
        assert report.runtime == "persistent"
        assert report.retries >= 1
        _assert_same_state(reference, sharded)
        pool = sharded._shard_pool
        pids = pool.pids()
        assert all(pid is not None for pid in pids)
        follow = _pooled_run(sharded, trace)
        assert follow.retries == 0
        reference.process_trace(trace, batch_size=None)
        _assert_same_state(reference, sharded)
    finally:
        sharded.close_shard_pool()


def test_pool_worker_hang_times_out_and_respawns(monkeypatch, trace, reference):
    monkeypatch.setenv("FLYMON_SHARD_TIMEOUT", "0.3")
    sharded = _controller([_cms_task()])
    try:
        FAULTS.arm(SITE_SHARD_TIMEOUT, hit=1, arg="5.0")
        report = _pooled_run(sharded, trace)
        assert report.runtime == "persistent"
        assert report.timeouts >= 1
        assert report.retries >= 1
        assert any(
            "timed out" in str(e["reason"]) for e in report.shard_events
        )
        _assert_same_state(reference, sharded)
        follow = _pooled_run(sharded, trace)
        assert follow.timeouts == 0
        reference.process_trace(trace, batch_size=None)
        _assert_same_state(reference, sharded)
    finally:
        sharded.close_shard_pool()


def test_pool_thread_mode_hang_recovers(monkeypatch, trace, reference):
    """Thread-mode pool (the fork-unavailable fallback) under a hang: the
    stale slot is rebuilt from the mirror and the next run is clean."""
    import multiprocessing

    monkeypatch.setattr(
        multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )
    monkeypatch.setenv("FLYMON_SHARD_TIMEOUT", "0.3")
    sharded = _controller([_cms_task()])
    try:
        FAULTS.arm(SITE_SHARD_TIMEOUT, hit=1, arg="5.0")
        report = _pooled_run(sharded, trace)
        assert report.runtime == "persistent"
        assert report.backend == "thread"
        assert report.timeouts >= 1
        _assert_same_state(reference, sharded)
        follow = _pooled_run(sharded, trace)
        assert follow.timeouts == 0
        reference.process_trace(trace, batch_size=None)
        _assert_same_state(reference, sharded)
    finally:
        sharded.close_shard_pool()


def test_persistent_crash_exhausts_retries(monkeypatch, trace):
    monkeypatch.setenv("FLYMON_SHARD_RETRIES", "2")
    sharded = _controller([_cms_task()])
    FAULTS.arm(SITE_SHARD_CRASH, prob=1.0)  # re-fires on every dispatch
    with pytest.raises(ShardingError, match="serial re-dispatch"):
        run_sharded(sharded.groups, trace, workers=2, backend="thread")


def test_shard_retry_telemetry(trace, reference):
    from repro import telemetry
    from repro.telemetry import EV_SHARD_RETRY

    sharded = _controller([_cms_task()])
    FAULTS.arm(SITE_SHARD_CRASH, hit=1)
    telemetry.reset()
    telemetry.enable()
    try:
        run_sharded(sharded.groups, trace, workers=2, backend="thread")
        assert telemetry.TELEMETRY.events.of_type(EV_SHARD_RETRY)
        assert "flymon_shard_retries_total" in telemetry.to_prometheus(
            telemetry.TELEMETRY.registry
        )
    finally:
        telemetry.disable()
        telemetry.reset()
    _assert_same_state(reference, sharded)


def test_no_faults_means_no_retries(trace, reference):
    sharded = _controller([_cms_task()])
    report = run_sharded(sharded.groups, trace, workers=2, backend="thread")
    assert report.retries == 0
    assert report.timeouts == 0
    assert report.shard_events == []
    _assert_same_state(reference, sharded)
