"""The ``repro verify`` CLI subcommand (the CI smoke job's entry point)."""

from repro.cli import build_parser, main


def test_verify_parses():
    args = build_parser().parse_args(["verify", "--rounds", "3", "--seed", "9"])
    assert args.command == "verify"
    assert args.rounds == 3
    assert args.seed == 9


def test_verify_passes_on_clean_tree(capsys):
    assert main(["verify", "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3 deployment integrity" in out
    assert "rollback atomicity" in out
    assert "checkpoint round-trip" in out
    assert "all invariants hold" in out


def test_verify_reads_schedule_from_env(monkeypatch, capsys):
    monkeypatch.setenv("FLYMON_FAULTS", "seed=7,rounds=2")
    assert main(["verify"]) == 0
    assert "2 rounds, seed 7" in capsys.readouterr().out


def test_verify_rejects_bad_fault_spec(monkeypatch, capsys):
    monkeypatch.setenv("FLYMON_FAULTS", "bogus_site@2")
    assert main(["verify"]) == 2
    assert "bad FLYMON_FAULTS" in capsys.readouterr().err
