"""Unit tests for the fault-injection registry (repro.faults)."""

import pytest

from repro.faults import (
    FAULT_SITES,
    FaultError,
    FaultInjector,
    FaultSpecError,
    SITE_ALLOC_EXHAUSTED,
    SITE_KEY_DENIED,
    SITE_RULE_APPLY,
    SITE_SHARD_CRASH,
    SITE_SHARD_TIMEOUT,
    parse_spec,
)


class TestParseSpec:
    def test_bare_site(self):
        arms, options = parse_spec("rule_apply")
        assert len(arms) == 1
        assert arms[0].site == SITE_RULE_APPLY
        assert arms[0].hit == 1
        assert arms[0].prob is None
        assert not options

    def test_hit_index_and_arg(self):
        arms, _ = parse_spec("shard_crash@2=kill")
        assert arms[0].site == SITE_SHARD_CRASH
        assert arms[0].hit == 2
        assert arms[0].arg == "kill"

    def test_probability(self):
        arms, _ = parse_spec("alloc_exhausted%0.25")
        assert arms[0].prob == 0.25

    def test_options_are_not_sites(self):
        arms, options = parse_spec("seed=2026,rounds=25")
        assert arms == []
        assert options == {"seed": "2026", "rounds": "25"}

    def test_mixed_spec(self):
        arms, options = parse_spec("seed=7,rule_apply@3,key_denied")
        assert {a.site for a in arms} == {SITE_RULE_APPLY, SITE_KEY_DENIED}
        assert options == {"seed": "7"}

    @pytest.mark.parametrize(
        "bad",
        ["no_such_site", "rule_apply@zero", "rule_apply@0", "rule_apply%2.0"],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)


class TestFaultInjector:
    def test_deterministic_arm_fires_once_at_hit(self):
        inj = FaultInjector()
        inj.arm(SITE_RULE_APPLY, hit=3)
        assert inj.trip(SITE_RULE_APPLY) is None
        assert inj.trip(SITE_RULE_APPLY) is None
        assert inj.trip(SITE_RULE_APPLY) is True
        # One-shot: the arm is consumed, later hits pass through.
        assert inj.trip(SITE_RULE_APPLY) is None
        assert inj.hit_count(SITE_RULE_APPLY) == 4
        assert len(inj.fired()) == 1

    def test_trip_returns_arg(self):
        inj = FaultInjector()
        inj.arm(SITE_SHARD_TIMEOUT, hit=1, arg="0.2")
        assert inj.trip(SITE_SHARD_TIMEOUT) == "0.2"

    def test_fire_raises_fault_error_with_context(self):
        inj = FaultInjector()
        inj.arm(SITE_RULE_APPLY, hit=1)
        with pytest.raises(FaultError) as excinfo:
            inj.fire(SITE_RULE_APPLY, target="cmug0/cmu0")
        assert excinfo.value.site == SITE_RULE_APPLY
        assert excinfo.value.context["target"] == "cmug0/cmu0"

    def test_probabilistic_arm_is_seeded_and_persistent(self):
        a = FaultInjector(seed=11)
        b = FaultInjector(seed=11)
        for inj in (a, b):
            inj.arm(SITE_ALLOC_EXHAUSTED, prob=0.5)
        outcomes_a = [a.trip(SITE_ALLOC_EXHAUSTED) for _ in range(50)]
        outcomes_b = [b.trip(SITE_ALLOC_EXHAUSTED) for _ in range(50)]
        assert outcomes_a == outcomes_b
        fired = [o for o in outcomes_a if o]
        assert fired, "p=0.5 over 50 trials must fire at least once"
        # Probabilistic arms are NOT one-shot.
        assert len(a.arms(SITE_ALLOC_EXHAUSTED)) == 1

    def test_disarm_and_reset(self):
        inj = FaultInjector()
        inj.arm(SITE_RULE_APPLY)
        inj.arm(SITE_KEY_DENIED)
        inj.disarm(SITE_RULE_APPLY)
        assert not inj.arms(SITE_RULE_APPLY)
        assert inj.arms(SITE_KEY_DENIED)
        inj.trip(SITE_KEY_DENIED)
        inj.reset()
        assert not inj.armed
        assert inj.hit_count(SITE_KEY_DENIED) == 0
        assert inj.fired() == []

    def test_configure_from_spec_arms_and_reseeds(self):
        inj = FaultInjector()
        inj.configure("seed=99,rule_apply@2")
        assert inj.options["seed"] == "99"
        assert inj.arms(SITE_RULE_APPLY)[0].hit == 2

    def test_unknown_site_rejected(self):
        inj = FaultInjector()
        with pytest.raises(FaultSpecError):
            inj.arm("bogus_site")
        assert "bogus_site" not in FAULT_SITES
