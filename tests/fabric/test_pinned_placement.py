"""Pinned placement primitives: exact allocation, pinned keys, round-trip.

The fabric's bit-identity guarantee rests on these: a member switch must
reproduce the canonical controller's layout *exactly* (same groups, hash
units and masks, CMUs, memory bases, task ids), because hash seeds depend
on the placement coordinates.
"""

import numpy as np
import pytest

from repro.core.compression import KeyExhaustedError
from repro.core.controller import FlyMonController, PlacementError
from repro.core.memory import BuddyAllocator, OutOfMemoryError
from repro.core.task import TaskFilter, reserve_task_id
from repro.faults import FAULTS, SITE_ALLOC_EXHAUSTED, SITE_KEY_DENIED
from repro.traffic import zipf_trace
from repro.traffic.flows import KEY_SRC_IP

from fabric_helpers import (
    bloom_task,
    fabric_trace,
    freq_task,
    hll_task,
    reset_task_ids,
)


@pytest.fixture(autouse=True)
def quiet_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


class TestAllocateExact:
    def test_reserves_the_requested_range(self):
        alloc = BuddyAllocator(1024)
        mem = alloc.allocate_exact(256, 128)
        assert (mem.base, mem.length) == (256, 128)
        assert alloc.free_buckets == 1024 - 128
        # the pinned range is really gone: a fresh exact claim fails
        with pytest.raises(OutOfMemoryError):
            alloc.allocate_exact(256, 128)

    def test_misaligned_or_out_of_range_rejected(self):
        alloc = BuddyAllocator(1024)
        with pytest.raises(ValueError):
            alloc.allocate_exact(192, 128)  # 192 % 128 != 0
        with pytest.raises(ValueError):
            alloc.allocate_exact(1024, 128)  # beyond the register

    def test_split_halves_stay_allocatable(self):
        alloc = BuddyAllocator(1024)
        alloc.allocate_exact(512, 128)
        # everything around the pin is still free, in buddy-sized pieces
        got = set()
        for _ in range(3):
            mem = alloc.allocate(256)
            got.add((mem.base, mem.length))
        assert alloc.free_buckets == 1024 - 128 - 3 * 256
        assert all(
            base + length <= 512 or base >= 640 for base, length in got
        )

    def test_free_then_full_coalesce(self):
        alloc = BuddyAllocator(1024)
        mem = alloc.allocate_exact(640, 128)
        alloc.free(mem)
        # buddies re-merge: the whole register is one block again
        whole = alloc.allocate(1024)
        assert (whole.base, whole.length) == (0, 1024)

    def test_mixed_with_ordinary_allocation(self):
        alloc = BuddyAllocator(1024)
        a = alloc.allocate(256)  # takes [0, 256)
        pinned = alloc.allocate_exact(512, 256)
        b = alloc.allocate(256)
        ranges = sorted(
            [(a.base, a.length), (pinned.base, pinned.length), (b.base, b.length)]
        )
        for (b1, l1), (b2, _) in zip(ranges, ranges[1:]):
            assert b1 + l1 <= b2  # pairwise disjoint


class TestAcquirePinned:
    def masks_of(self, group):
        return {
            unit: mask.as_dict()
            for unit, mask in group.keys.committed_masks().items()
            if mask is not None
        }

    def test_reuse_of_identical_committed_mask(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(freq_task())
        group = controller.groups[0]
        pin = controller.export_placement(handle)
        entry = pin["groups"][0]
        before = group.keys.refcounts()
        grant = group.keys.acquire_pinned(
            entry["key_units"], dict(entry["key_masks"])
        )
        after = group.keys.refcounts()
        for unit in entry["key_units"]:
            assert after[unit] == before[unit] + 1
        group.keys.release(grant.selector)

    def test_conflicting_mask_is_denied(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(freq_task())
        group = controller.groups[0]
        pin = controller.export_placement(handle)
        entry = pin["groups"][0]
        conflicting = {
            unit: {"dst_ip": 7} for unit in entry["key_units"]
        }
        with pytest.raises(KeyExhaustedError):
            group.keys.acquire_pinned(entry["key_units"], conflicting)

    def test_unknown_unit_rejected(self):
        controller = FlyMonController(num_groups=1)
        group = controller.groups[0]
        with pytest.raises(ValueError):
            group.keys.acquire_pinned([99], {99: {"src_ip": 32}})


class TestReserveTaskId:
    def test_reserve_advances_the_counter(self):
        from repro.core.task import next_task_id

        reserve_task_id(50)
        assert next_task_id() == 51


class TestPinnedRoundTrip:
    """add_task_pinned(export_placement(...)) reproduces add_task exactly."""

    def build_pair(self, tasks):
        reset_task_ids()
        origin = FlyMonController(num_groups=3, place_on_pipeline=False)
        handles = [origin.add_task(t) for t in tasks]
        mirror = FlyMonController(num_groups=3, place_on_pipeline=False)
        mirrored = [
            mirror.add_task_pinned(h.task, origin.export_placement(h))
            for h in handles
        ]
        return origin, handles, mirror, mirrored

    def registers_of(self, controller):
        out = {}
        for group in controller.groups:
            for cmu in group.cmus:
                out[(group.group_id, cmu.index)] = np.asarray(
                    cmu.register.snapshot_cells()
                )
        return out

    def test_same_coordinates_and_ids(self):
        origin, handles, mirror, mirrored = self.build_pair(
            [freq_task(), hll_task()]
        )
        for h, m in zip(handles, mirrored):
            assert m.task_id == h.task_id
            for hr, mr in zip(h.rows, m.rows):
                assert (hr.group.group_id, hr.cmu.index) == (
                    mr.group.group_id,
                    mr.cmu.index,
                )
                assert (hr.mem.base, hr.mem.length) == (mr.mem.base, mr.mem.length)

    def test_registers_bit_identical_after_traffic(self):
        origin, handles, mirror, mirrored = self.build_pair(
            [freq_task(), hll_task(), bloom_task()]
        )
        trace = fabric_trace(num_packets=5000, seed=3)
        origin.process_trace(trace)
        mirror.process_trace(trace)
        a, b = self.registers_of(origin), self.registers_of(mirror)
        assert a.keys() == b.keys()
        for key in a:
            assert np.array_equal(a[key], b[key]), key
        assert origin.control_digest() == mirror.control_digest()

    def test_queries_agree(self):
        origin, handles, mirror, mirrored = self.build_pair([freq_task()])
        trace = fabric_trace(num_packets=4000, seed=4)
        origin.process_trace(trace)
        mirror.process_trace(trace)
        for flow in list(trace.flow_sizes(KEY_SRC_IP))[:25]:
            assert handles[0].algorithm.query(flow) == mirrored[0].algorithm.query(
                flow
            )

    def test_remove_pinned_task_keeps_integrity(self):
        origin, handles, mirror, mirrored = self.build_pair(
            [freq_task(), hll_task()]
        )
        mirror.remove_task(mirrored[0])
        assert mirror.verify_integrity().ok
        # the freed range is reusable by an ordinary add
        again = mirror.add_task(freq_task())
        assert mirror.verify_integrity().ok

    def test_pinned_conflict_with_existing_occupant(self):
        reset_task_ids()
        origin = FlyMonController(num_groups=3, place_on_pipeline=False)
        handle = origin.add_task(freq_task())
        pin = origin.export_placement(handle)
        mirror = FlyMonController(num_groups=3, place_on_pipeline=False)
        reset_task_ids()  # mirror's own task takes the same coordinates
        mirror.add_task(freq_task())
        with pytest.raises(PlacementError):
            mirror.add_task_pinned(handle.task, pin)
        assert mirror.verify_integrity().ok

    def test_replay_history_reproduces_pinned_installs(self):
        origin, handles, mirror, mirrored = self.build_pair(
            [freq_task(), hll_task()]
        )
        state = mirror.checkpoint()
        assert any(e["op"] == "add_pinned" for e in state["history"])
        rebuilt = FlyMonController.from_checkpoint(state)
        assert rebuilt.control_digest() == mirror.control_digest()


class TestPinnedRollback:
    def snapshot(self, controller):
        return (
            controller.control_digest(),
            controller.free_buckets(),
            {g.group_id: g.keys.refcounts() for g in controller.groups},
            controller.runtime.deployments(),
        )

    @pytest.mark.parametrize(
        "site,hit",
        [(SITE_ALLOC_EXHAUSTED, 1), (SITE_ALLOC_EXHAUSTED, 2), (SITE_KEY_DENIED, 1)],
    )
    def test_pinned_install_rolls_back_bit_identically(self, site, hit):
        reset_task_ids()
        origin = FlyMonController(num_groups=3, place_on_pipeline=False)
        handle = origin.add_task(freq_task())
        pin = origin.export_placement(handle)
        mirror = FlyMonController(num_groups=3, place_on_pipeline=False)
        before = self.snapshot(mirror)
        FAULTS.arm(site, hit=hit)
        with pytest.raises((PlacementError, KeyExhaustedError, OutOfMemoryError)):
            mirror.add_task_pinned(handle.task, pin)
        assert FAULTS.fired()
        assert self.snapshot(mirror) == before
        assert mirror.verify_integrity().ok
        FAULTS.reset()
        # and the same install succeeds once the fault is gone
        mirror.add_task_pinned(handle.task, pin)
        assert mirror.verify_integrity().ok
