"""Fabric topology validation, partitioning, and covering-set search."""

import json

import numpy as np
import pytest

from repro.core.task import TaskFilter
from repro.fabric import (
    LAYER_AGG,
    LAYER_CORE,
    LAYER_EDGE,
    FabricTopology,
    SwitchSpec,
    TopologyError,
)


def two_tier():
    return FabricTopology(
        2,
        [
            SwitchSpec("e0", LAYER_EDGE, frozenset({0, 1})),
            SwitchSpec("e1", LAYER_EDGE, frozenset({2, 3})),
            SwitchSpec("a0", LAYER_AGG, frozenset({0, 1, 2, 3})),
            SwitchSpec("c0", LAYER_CORE, frozenset({0, 1, 2, 3})),
        ],
    )


class TestValidation:
    def test_within_layer_overlap_rejected(self):
        with pytest.raises(TopologyError, match="both own block"):
            FabricTopology(
                1,
                [
                    SwitchSpec("e0", LAYER_EDGE, frozenset({0, 1})),
                    SwitchSpec("e1", LAYER_EDGE, frozenset({1})),
                ],
            )

    def test_edge_layer_must_cover_every_block(self):
        with pytest.raises(TopologyError, match="ingress edge"):
            FabricTopology(
                2,
                [SwitchSpec("e0", LAYER_EDGE, frozenset({0, 1}))],
            )

    def test_unknown_layer_and_bad_blocks(self):
        with pytest.raises(TopologyError, match="unknown layer"):
            FabricTopology(1, [SwitchSpec("x", "spine", frozenset({0, 1}))])
        with pytest.raises(TopologyError, match="outside"):
            FabricTopology(1, [SwitchSpec("x", LAYER_EDGE, frozenset({7}))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError, match="duplicate"):
            FabricTopology(
                1,
                [
                    SwitchSpec("e0", LAYER_EDGE, frozenset({0})),
                    SwitchSpec("e0", LAYER_EDGE, frozenset({1})),
                ],
            )


class TestPreset:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_preset_edges_partition_all_blocks(self, n):
        topo = FabricTopology.preset(n)
        edges = topo.at_layer(LAYER_EDGE)
        assert len(edges) == n
        union = frozenset().union(*(e.blocks for e in edges))
        assert union == frozenset(range(topo.num_blocks))
        # the core spine sees everything
        (core,) = topo.at_layer(LAYER_CORE)
        assert core.blocks == frozenset(range(topo.num_blocks))

    def test_spec_round_trip(self, tmp_path):
        topo = two_tier()
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(topo.to_spec()))
        loaded = FabricTopology.load(str(path))
        assert loaded.to_spec() == topo.to_spec()

    def test_spec_switch_without_blocks_covers_everything(self):
        topo = FabricTopology.from_spec(
            {
                "partition_bits": 2,
                "switches": [
                    {"name": "e0", "blocks": [0, 1]},
                    {"name": "e1", "blocks": [2, 3]},
                    {"name": "c0", "layer": "core"},
                ],
            }
        )
        assert topo.switches["c0"].blocks == frozenset({0, 1, 2, 3})


class TestPartitioning:
    def test_block_column_uses_top_bits(self):
        topo = two_tier()
        src = np.array([0x0A000001, 0x50000001, 0x8C000001, 0xDC000001])
        assert list(topo.block_column(src)) == [0, 1, 2, 3]

    def test_domain_luts_partition_edges(self):
        topo = two_tier()
        e0, e1 = topo.domain_lut("e0"), topo.domain_lut("e1")
        assert not (e0 & e1).any()
        assert (e0 | e1).all()

    def test_blocks_for_filter_narrows_on_src_prefix(self):
        topo = two_tier()
        assert topo.blocks_for_filter(TaskFilter.match_all()) == frozenset(
            {0, 1, 2, 3}
        )
        # /8 inside block 1 (first byte 0x50 -> top two bits 01)
        f = TaskFilter.of(src_ip=(0x50000000, 8))
        assert topo.blocks_for_filter(f) == frozenset({1})
        # /1 spans the lower half of the space: blocks 0 and 1
        f = TaskFilter.of(src_ip=(0x00000000, 1))
        assert topo.blocks_for_filter(f) == frozenset({0, 1})
        # non-src_ip constraints cannot narrow blocks
        f = TaskFilter.of(dst_port=(443, 16))
        assert topo.blocks_for_filter(f) == frozenset({0, 1, 2, 3})


class TestCovering:
    def test_covering_sets_per_layer(self):
        topo = two_tier()
        full = frozenset({0, 1, 2, 3})
        sets = dict(topo.covering_sets(full))
        assert sets[LAYER_EDGE] == ("e0", "e1")
        assert sets[LAYER_AGG] == ("a0",)
        assert sets[LAYER_CORE] == ("c0",)

    def test_covering_sets_narrow_blocks_drop_uninvolved_edges(self):
        topo = two_tier()
        sets = dict(topo.covering_sets(frozenset({0})))
        assert sets[LAYER_EDGE] == ("e0",)

    def test_covering_switches_single_observers(self):
        topo = two_tier()
        assert set(topo.covering_switches(frozenset({0, 1, 2, 3}))) == {
            "a0",
            "c0",
        }
        assert set(topo.covering_switches(frozenset({0}))) == {"e0", "a0", "c0"}
