"""Fabric federation: bit-identity vs the single-switch union reference.

The acceptance property of the fabric subsystem: a 4-switch fabric answers
Frequency / Cardinality / Existence / HeavyHitter queries *bit-identical*
to one switch that observed the union of the traffic, per sealed epoch --
while collaborative placement provably hosts each task on fewer than all
switches.
"""

import numpy as np
import pytest

from repro.core.controller import FlyMonController
from repro.core.task import TaskFilter
from repro.fabric import FabricService, FabricTopology
from repro.faults import FAULTS, SITE_ALLOC_EXHAUSTED, SITE_MEMBER_SEAL
from repro.service.engine import MeasurementService, StaleEpochError, _split_trace
from repro.service.queries import (
    CardinalityQuery,
    EntropyQuery,
    ExistenceQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    InterArrivalQuery,
)
from repro.service.queries import resolve
from repro.traffic.flows import KEY_IP_PAIR, KEY_SRC_IP

from fabric_helpers import (
    bloom_task,
    fabric_trace,
    freq_task,
    hll_task,
    interarrival_task,
    mrac_task,
    reset_task_ids,
)

EPOCH = 4000
PARAMS = {"num_groups": 4}


def build_fabric(tasks, epoch_packets=EPOCH, switches=4):
    reset_task_ids()
    fabric = FabricService(
        FabricTopology.preset(switches),
        epoch_packets=epoch_packets,
        controller_params=dict(PARAMS),
    )
    handles = [fabric.deploy(t) for t in tasks]
    return fabric, handles


def build_reference(tasks):
    """One switch, same controller params, observing the union traffic."""
    reset_task_ids()
    service = MeasurementService(
        FlyMonController(place_on_pipeline=False, **PARAMS), retain=8
    )
    handles = [service.controller.add_task(t) for t in tasks]
    return service, handles


def drive_both(fabric, reference, trace, epoch_packets=EPOCH):
    fabric_epochs = fabric.ingest(trace)
    if fabric._epoch_fill:
        fabric_epochs.append(fabric.rotate())
    ref_epochs = []
    remaining = trace
    while len(remaining):
        window, remaining = _split_trace(remaining, epoch_packets)
        reference.ingest(window)
        ref_epochs.append(reference.rotate())
    assert len(fabric_epochs) == len(ref_epochs)
    return fabric_epochs, ref_epochs


class TestBitIdentity:
    def setup_method(self):
        tasks = [
            freq_task(name="freq"),
            hll_task(name="card"),
            bloom_task(name="exist"),
            freq_task(threshold=60, name="hh"),
        ]
        self.fabric, fh = build_fabric(tasks)
        self.reference, rh = build_reference(tasks)
        self.fh = dict(zip(("freq", "card", "exist", "hh"), fh))
        self.rh = dict(zip(("freq", "card", "exist", "hh"), rh))
        self.trace = fabric_trace(num_packets=9000, seed=7)
        self.fab_epochs, self.ref_epochs = drive_both(
            self.fabric, self.reference, self.trace
        )

    def teardown_method(self):
        self.fabric.stop()

    def test_merged_cells_bit_identical_per_epoch(self):
        for fs, rs in zip(self.fab_epochs, self.ref_epochs):
            for key, ref_cells in rs._cells.items():
                if key not in fs._cells:
                    continue  # no fabric task occupies this CMU
                assert np.array_equal(fs._cells[key], ref_cells), (
                    fs.index,
                    key,
                )

    def test_frequency_queries_bit_identical(self):
        flows = [(int(s),) for s in np.unique(self.trace.columns["src_ip"])[:40]]
        for fs, rs in zip(self.fab_epochs, self.ref_epochs):
            for flow in flows:
                assert resolve(
                    FrequencyQuery(self.fh["freq"], flow), fs
                ) == resolve(FrequencyQuery(self.rh["freq"], flow), rs)

    def test_cardinality_queries_bit_identical(self):
        for fs, rs in zip(self.fab_epochs, self.ref_epochs):
            assert resolve(CardinalityQuery(self.fh["card"]), fs) == resolve(
                CardinalityQuery(self.rh["card"]), rs
            )

    def test_existence_queries_bit_identical(self):
        cols = self.trace.columns
        flows = [
            (int(cols["src_ip"][i]), int(cols["dst_ip"][i])) for i in range(30)
        ]
        for fs, rs in zip(self.fab_epochs, self.ref_epochs):
            for flow in flows:
                assert resolve(
                    ExistenceQuery(self.fh["exist"], flow), fs
                ) == resolve(ExistenceQuery(self.rh["exist"], flow), rs)

    def test_heavy_hitter_candidates_bit_identical(self):
        sizes = self.trace.flow_sizes(KEY_SRC_IP)
        candidates = tuple(sorted(sizes, key=sizes.get, reverse=True)[:60])
        for fs, rs in zip(self.fab_epochs, self.ref_epochs):
            fab = resolve(
                HeavyHitterQuery(self.fh["hh"], threshold=40, candidates=candidates),
                fs,
            )
            ref = resolve(
                HeavyHitterQuery(self.rh["hh"], threshold=40, candidates=candidates),
                rs,
            )
            assert fab == ref

    def test_digest_heavy_hitters_sandwiched(self):
        # Digest union is the documented approximation: nothing outside the
        # solo digest set (union cells dominate per-host cells), and under
        # edge partitioning by src_ip -- each flow one ingress -- equality.
        for fs, rs in zip(self.fab_epochs, self.ref_epochs):
            fab = resolve(HeavyHitterQuery(self.fh["hh"]), fs)
            ref = resolve(HeavyHitterQuery(self.rh["hh"]), rs)
            assert fab == ref  # src_ip-partitioned traffic: exact


class TestEntropyFederation:
    def test_mrac_entropy_bit_identical(self):
        tasks = [mrac_task(name="entropy")]
        fabric, (fh,) = build_fabric(tasks)
        reference, (rh,) = build_reference(tasks)
        trace = fabric_trace(num_packets=8000, seed=11)
        fab_epochs, ref_epochs = drive_both(fabric, reference, trace)
        try:
            for fs, rs in zip(fab_epochs, ref_epochs):
                assert resolve(EntropyQuery(fh), fs) == resolve(
                    EntropyQuery(rh), rs
                )
        finally:
            fabric.stop()


class TestCollaborativePlacement:
    def test_mergeable_tasks_avoid_the_core(self):
        fabric, handles = build_fabric([freq_task(), hll_task()])
        try:
            total = len(fabric.topology.names)
            for handle in handles:
                assert len(handle.hosts) < total
        finally:
            fabric.stop()

    def test_filtered_task_lands_on_fewer_edges(self):
        # src 0x50/8 lives in block 1 only -> a single edge hosts it
        task = freq_task(filter=TaskFilter.of(src_ip=(0x50000000, 8)))
        fabric, (handle,) = build_fabric([task])
        try:
            assert len(handle.hosts) == 1
            assert handle.layer == "edge"
        finally:
            fabric.stop()

    def test_unmergeable_task_gets_single_covering_host(self):
        # max_interarrival needs the whole stream in order: replay law
        fabric, (handle,) = build_fabric([interarrival_task()])
        try:
            assert not handle.mergeable
            assert len(handle.hosts) == 1
            assert handle.hosts == ("core0",)
        finally:
            fabric.stop()

    def test_unmergeable_single_host_still_bit_identical(self):
        tasks = [interarrival_task(name="ia")]
        fabric, (fh,) = build_fabric(tasks)
        reference, (rh,) = build_reference(tasks)
        trace = fabric_trace(num_packets=6000, seed=13)
        fab_epochs, ref_epochs = drive_both(fabric, reference, trace)
        try:
            flows = [(int(s),) for s in np.unique(trace.columns["src_ip"])[:20]]
            for fs, rs in zip(fab_epochs, ref_epochs):
                for flow in flows:
                    assert resolve(InterArrivalQuery(fh, flow), fs) == resolve(
                        InterArrivalQuery(rh, flow), rs
                    )
        finally:
            fabric.stop()

    def test_load_spreads_to_least_loaded_covering_set(self):
        fabric, handles = build_fabric([freq_task(), freq_task()])
        try:
            # the first mergeable task saturates the edges' score; the
            # second should prefer the now-cheaper core covering set
            assert handles[0].hosts != handles[1].hosts
        finally:
            fabric.stop()


class TestTransactionalDeploy:
    def test_host_failure_rolls_back_every_service(self):
        fabric, _ = build_fabric([freq_task()])
        try:
            digests = {
                name: svc.controller.control_digest()
                for name, svc in fabric.members.items()
            }
            # The canonical unwinds by add-then-remove (two committed ops),
            # which legitimately advances its cumulative rule counter -- so
            # compare the measurement-relevant state, not control_digest.
            def canonical_state():
                return (
                    fabric.canonical.free_buckets(),
                    {
                        g.group_id: g.keys.refcounts()
                        for g in fabric.canonical.groups
                    },
                    fabric.canonical.runtime.deployments(),
                    sorted(h.task_id for h in fabric.canonical.tasks),
                )

            canonical_before = canonical_state()
            tasks_before = len(fabric.placements)
            # fire on a *later* host's pinned install: edge0 installs, then
            # the next host's allocation dies -> everything unwinds
            FAULTS.arm(SITE_ALLOC_EXHAUSTED, hit=5)
            with pytest.raises(Exception):
                fabric.deploy(freq_task())
            assert FAULTS.fired()
            FAULTS.reset()
            assert len(fabric.placements) == tasks_before
            assert canonical_state() == canonical_before
            assert fabric.canonical.verify_integrity().ok
            for name, svc in fabric.members.items():
                assert svc.controller.control_digest() == digests[name], name
                assert svc.controller.verify_integrity().ok
        finally:
            FAULTS.reset()
            fabric.stop()

    def test_fabric_usable_after_rollback(self):
        fabric, _ = build_fabric([freq_task()])
        try:
            FAULTS.arm(SITE_ALLOC_EXHAUSTED, hit=5)
            with pytest.raises(Exception):
                fabric.deploy(freq_task())
            FAULTS.reset()
            handle = fabric.deploy(freq_task())
            assert handle.task_id in {p.task_id for p in fabric.placements}
            trace = fabric_trace(num_packets=4000, seed=17)
            fabric.ingest(trace)
            sealed = fabric.rotate()
            assert sealed.packets == len(trace)
            assert sealed.has_task(handle.task_id)
        finally:
            FAULTS.reset()
            fabric.stop()


class TestDegradedMember:
    def test_degraded_host_excludes_its_tasks_only(self):
        tasks = [freq_task(name="edge_task"), interarrival_task(name="core_task")]
        fabric, (edge_handle, core_handle) = build_fabric(tasks)
        try:
            trace = fabric_trace(num_packets=EPOCH, seed=19)
            # edge1's sealer dies at the barrier
            original = fabric.members["edge1"].rotate
            fabric.members["edge1"].rotate = lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("sealer wedged")
            )
            fabric.ingest(trace)
            sealed = fabric.rotate()
            fabric.members["edge1"].rotate = original
            assert "edge1" in fabric.degraded_members
            # the edge-hosted task is excluded: queries refuse, loudly
            with pytest.raises(StaleEpochError):
                resolve(FrequencyQuery(edge_handle, (1,)), sealed)
            # the core-hosted task is unaffected
            resolve(InterArrivalQuery(core_handle, (1,)), sealed)
            assert fabric.status()["status"] == "degraded"
        finally:
            fabric.stop()

    def test_next_epoch_recovers(self):
        fabric, (handle,) = build_fabric([freq_task()])
        try:
            trace = fabric_trace(num_packets=EPOCH, seed=23)
            original = fabric.members["edge0"].rotate
            fabric.members["edge0"].rotate = lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("sealer wedged")
            )
            fabric.ingest(trace)
            fabric.rotate()
            fabric.members["edge0"].rotate = original
            # a failed member seal leaves its window open; the next barrier
            # folds it in, so the fabric keeps running (conservation below)
            trace2 = fabric_trace(num_packets=EPOCH, seed=29)
            fabric.ingest(trace2)
            sealed = fabric.rotate()
            assert not fabric.degraded_members
            resolve(FrequencyQuery(handle, (1,)), sealed)
        finally:
            fabric.stop()

    def test_member_seal_fault_site_degrades_one_member(self):
        """``FLYMON_FAULTS=member_seal@N`` knocks one switch's sealer out
        at the barrier; the fabric seals anyway and reports degraded."""
        fabric, (handle,) = build_fabric([freq_task()])
        try:
            FAULTS.reset()  # the hit counter is process-wide
            FAULTS.arm(SITE_MEMBER_SEAL, hit=1)
            fabric.ingest(fabric_trace(num_packets=EPOCH, seed=31))
            sealed = fabric.rotate()
            assert FAULTS.fired()
            assert list(fabric.degraded_members) == ["edge0"]
            assert fabric.status()["status"] == "degraded"
            with pytest.raises(StaleEpochError):
                resolve(FrequencyQuery(handle, (1,)), sealed)
            # one-shot arm: the next barrier is clean again
            fabric.ingest(fabric_trace(num_packets=EPOCH, seed=33))
            fabric.rotate()
            assert not fabric.degraded_members
        finally:
            FAULTS.reset()
            fabric.stop()


class TestDispatchConservation:
    def test_every_packet_dispatched_exactly_once_per_layer(self):
        fabric, handles = build_fabric(
            [freq_task(), interarrival_task()]
        )  # edges + core both active
        try:
            trace = fabric_trace(num_packets=EPOCH, seed=31)
            fabric.ingest(trace)
            stats = fabric.stats()
            edges = [n for n in fabric.topology.names if n.startswith("edge")]
            edge_total = sum(stats["member_packets"][n] for n in edges)
            assert edge_total == len(trace)  # edges partition the stream
            assert stats["member_packets"]["core0"] == len(trace)
            assert stats["packets_total"] == len(trace)  # counted once
        finally:
            fabric.stop()

    def test_inactive_switches_see_no_traffic(self):
        # only a single-edge filtered task -> other members stay idle
        task = freq_task(filter=TaskFilter.of(src_ip=(0x50000000, 8)))
        fabric, (handle,) = build_fabric([task])
        try:
            trace = fabric_trace(num_packets=EPOCH, seed=37)
            fabric.ingest(trace)
            stats = fabric.stats()
            (host,) = handle.hosts
            for name, count in stats["member_packets"].items():
                if name == host:
                    assert count > 0
                else:
                    assert count == 0
        finally:
            fabric.stop()
