"""Helpers shared by the fabric federation tests.

The bit-identity oracle compares a fabric against a *solo* controller that
observed the union traffic.  Both sides must issue the same task ids (ids
feed digest keys and deployment names), so builders reset the process-wide
id counter via :func:`reset_task_ids` before constructing each side.
"""

import itertools

import repro.core.task as task_module
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import Trace, zipf_trace
from repro.traffic.flows import KEY_IP_PAIR, KEY_SRC_IP


def reset_task_ids():
    task_module._task_ids = itertools.count(1)


def freq_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


def hll_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.distinct(KEY_IP_PAIR))
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 1)
    kwargs.setdefault("algorithm", "hll")
    return MeasurementTask(**kwargs)


def bloom_task(**kwargs):
    kwargs.setdefault("key", KEY_IP_PAIR)
    kwargs.setdefault("attribute", AttributeSpec.existence())
    kwargs.setdefault("memory", 4096)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "bloom")
    return MeasurementTask(**kwargs)


def mrac_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 8192)
    kwargs.setdefault("depth", 1)
    kwargs.setdefault("algorithm", "mrac")
    return MeasurementTask(**kwargs)


def interarrival_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.maximum("packet_interval"))
    kwargs.setdefault("memory", 2048)
    kwargs.setdefault("depth", 2)
    kwargs.setdefault("algorithm", "max_interarrival")
    return MeasurementTask(**kwargs)


#: /8 prefixes whose top two bits are 0, 1, 2, 3 -- one per preset(4) block.
BLOCK_PREFIXES = (0x0A000000, 0x50000000, 0x8C000000, 0xDC000000)


def fabric_trace(num_packets=8000, seed=0, blocks=4):
    """A trace spanning ``blocks`` partition blocks (top-2-bit spread)."""
    per = num_packets // blocks
    parts = [
        zipf_trace(
            num_flows=max(20, per // 12),
            num_packets=per,
            seed=seed * 101 + b,
            src_prefix=BLOCK_PREFIXES[b % len(BLOCK_PREFIXES)],
        )
        for b in range(blocks)
    ]
    return Trace.concatenate(parts).sorted_by_time()
